"""A Database Abstract: inferring answers from cached values (paper SS5.1).

"Neil Rowe of Stanford University proposed using a Database Abstract in
which some precomputed values of statistical functions will be stored.  A
set of inference rules will be used to calculate the results of other
functions, based on the values stored in the Database Abstract ...  it
attempts to provide the users with estimates as the results of queries."

:class:`DatabaseAbstract` layers inference rules over a
:class:`~repro.summary.summarydb.SummaryDatabase`: a query that misses the
cache may still be answered **exactly** (mean from sum and count), with
**bounds** (any quantile lies between cached neighbouring quantiles), or as
an **estimate** (the midrange for a missing median) — all without touching
the view's data.  Only fresh (non-stale) entries feed inference.
"""

from __future__ import annotations

import enum
import math
import re
from dataclasses import dataclass
from typing import Any, Callable

from repro.relational.types import is_na
from repro.summary.summarydb import SummaryDatabase


class InferenceKind(enum.Enum):
    """Strength of an inferred answer."""

    EXACT = "exact"
    BOUNDED = "bounded"
    ESTIMATE = "estimate"


@dataclass(frozen=True)
class Inference:
    """An answer produced without any data access."""

    function: str
    attribute: str
    kind: InferenceKind
    value: Any
    lo: Any = None
    hi: Any = None
    derivation: str = ""

    def __str__(self) -> str:
        bounds = (
            f" in [{self.lo:.6g}, {self.hi:.6g}]"
            if self.lo is not None and self.hi is not None
            else ""
        )
        return (
            f"{self.function}({self.attribute}) ~ {self.value!r}{bounds} "
            f"({self.kind.value}: {self.derivation})"
        )


_QUANTILE_RE = re.compile(r"^quantile_(\d{1,2})$")


class DatabaseAbstract:
    """Inference rules over one Summary Database."""

    def __init__(self, summary: SummaryDatabase) -> None:
        self.summary = summary
        self.inferences_served = 0

    # -- cached-value access ---------------------------------------------------

    def _fresh(self, function: str, attribute: str) -> Any | None:
        entry = self.summary.peek(function, attribute)
        if entry is None or entry.stale or entry.pending_updates > 0:
            return None
        if is_na(entry.result):
            return None
        return entry.result

    def _cached_quantiles(self, attribute: str) -> dict[float, float]:
        """Every fresh cached order statistic as {q: value}."""
        points: dict[float, float] = {}
        for entry in self.summary.entries_for_attribute(attribute):
            if entry.stale or entry.pending_updates > 0 or is_na(entry.result):
                continue
            name = entry.key.function
            match = _QUANTILE_RE.match(name)
            if match:
                points[int(match.group(1)) / 100.0] = float(entry.result)
            elif name == "median":
                points[0.5] = float(entry.result)
            elif name == "min":
                points[0.0] = float(entry.result)
            elif name == "max":
                points[1.0] = float(entry.result)
        return points

    # -- the rule set -------------------------------------------------------------

    def infer(self, function: str, attribute: str) -> Inference | None:
        """Try to answer (function, attribute) from cached values alone.

        Returns ``None`` when no rule applies; never touches the data.
        """
        for rule in (
            self._rule_identity,
            self._rule_mean_sum_count,
            self._rule_sum_mean_count,
            self._rule_var_std,
            self._rule_std_var,
            self._rule_cv,
            self._rule_rms,
            self._rule_iqr,
            self._rule_quantile_interpolation,
            self._rule_mean_bounds,
            self._rule_trimmed_mean_bounds,
        ):
            inference = rule(function, attribute)
            if inference is not None:
                self.inferences_served += 1
                return inference
        return None

    def _rule_identity(self, function: str, attribute: str) -> Inference | None:
        value = self._fresh(function, attribute)
        if value is None:
            return None
        return Inference(
            function, attribute, InferenceKind.EXACT, value, derivation="cached"
        )

    def _rule_mean_sum_count(self, function: str, attribute: str) -> Inference | None:
        if function not in ("mean", "avg"):
            return None
        total = self._fresh("sum", attribute)
        count = self._fresh("count", attribute)
        if total is None or not count:
            return None
        return Inference(
            function,
            attribute,
            InferenceKind.EXACT,
            float(total) / float(count),
            derivation="sum / count",
        )

    def _rule_sum_mean_count(self, function: str, attribute: str) -> Inference | None:
        if function != "sum":
            return None
        mean = self._fresh("mean", attribute)
        count = self._fresh("count", attribute)
        if mean is None or count is None:
            return None
        return Inference(
            function,
            attribute,
            InferenceKind.EXACT,
            float(mean) * float(count),
            derivation="mean * count",
        )

    def _rule_var_std(self, function: str, attribute: str) -> Inference | None:
        if function != "var":
            return None
        std = self._fresh("std", attribute)
        if std is None:
            return None
        return Inference(
            function, attribute, InferenceKind.EXACT, float(std) ** 2,
            derivation="std^2",
        )

    def _rule_std_var(self, function: str, attribute: str) -> Inference | None:
        if function != "std":
            return None
        var = self._fresh("var", attribute)
        if var is None or var < 0:
            return None
        return Inference(
            function, attribute, InferenceKind.EXACT, math.sqrt(float(var)),
            derivation="sqrt(var)",
        )

    def _rule_cv(self, function: str, attribute: str) -> Inference | None:
        if function != "cv":
            return None
        std = self._fresh("std", attribute)
        mean = self._fresh("mean", attribute)
        if std is None or not mean:
            return None
        return Inference(
            function, attribute, InferenceKind.EXACT, float(std) / float(mean),
            derivation="std / mean",
        )

    def _rule_rms(self, function: str, attribute: str) -> Inference | None:
        if function != "rms":
            return None
        mean = self._fresh("mean", attribute)
        var = self._fresh("var", attribute)
        if var is None:
            # Chain one step: var derives from a cached std.
            std = self._fresh("std", attribute)
            var = float(std) ** 2 if std is not None else None
        count = self._fresh("count", attribute)
        if mean is None or var is None or not count or count < 2:
            return None
        # E[x^2] = mean^2 + m2, with m2 = var * (n-1)/n (sample -> population).
        n = float(count)
        second_moment = float(mean) ** 2 + float(var) * (n - 1) / n
        if second_moment < 0:
            return None
        return Inference(
            function,
            attribute,
            InferenceKind.EXACT,
            math.sqrt(second_moment),
            derivation="sqrt(mean^2 + var*(n-1)/n)",
        )

    def _rule_iqr(self, function: str, attribute: str) -> Inference | None:
        if function != "iqr":
            return None
        q1 = self._fresh("quantile_25", attribute)
        q3 = self._fresh("quantile_75", attribute)
        if q1 is None or q3 is None:
            return None
        return Inference(
            function, attribute, InferenceKind.EXACT, float(q3) - float(q1),
            derivation="quantile_75 - quantile_25",
        )

    def _rule_quantile_interpolation(
        self, function: str, attribute: str
    ) -> Inference | None:
        match = _QUANTILE_RE.match(function)
        if match:
            q = int(match.group(1)) / 100.0
        elif function == "median":
            q = 0.5
        else:
            return None
        points = self._cached_quantiles(attribute)
        if q in points:
            return Inference(
                function,
                attribute,
                InferenceKind.EXACT,
                points[q],
                derivation=f"cached order statistic at q={q:g}",
            )
        below = [p for p in points if p < q]
        above = [p for p in points if p > q]
        if not below or not above:
            return None
        lo_q = max(below)
        hi_q = min(above)
        lo_v, hi_v = points[lo_q], points[hi_q]
        # Linear interpolation between the bracketing cached quantiles; the
        # truth is provably within [lo_v, hi_v].
        fraction = (q - lo_q) / (hi_q - lo_q)
        estimate = lo_v + fraction * (hi_v - lo_v)
        return Inference(
            function,
            attribute,
            InferenceKind.BOUNDED,
            estimate,
            lo=lo_v,
            hi=hi_v,
            derivation=f"between cached q{lo_q:.2f} and q{hi_q:.2f}",
        )

    def _rule_mean_bounds(self, function: str, attribute: str) -> Inference | None:
        if function not in ("mean", "avg"):
            return None
        lo = self._fresh("min", attribute)
        hi = self._fresh("max", attribute)
        median = self._fresh("median", attribute)
        if lo is None or hi is None:
            return None
        estimate = float(median) if median is not None else (float(lo) + float(hi)) / 2
        return Inference(
            function,
            attribute,
            InferenceKind.BOUNDED if median is None else InferenceKind.ESTIMATE,
            estimate,
            lo=float(lo),
            hi=float(hi),
            derivation="median (or midrange) within [min, max]",
        )

    def _rule_trimmed_mean_bounds(
        self, function: str, attribute: str
    ) -> Inference | None:
        if function != "trimmed_mean":
            return None
        lo = self._fresh("quantile_5", attribute)
        hi = self._fresh("quantile_95", attribute)
        median = self._fresh("median", attribute)
        if lo is None or hi is None:
            return None
        estimate = float(median) if median is not None else (float(lo) + float(hi)) / 2
        return Inference(
            function,
            attribute,
            InferenceKind.BOUNDED,
            estimate,
            lo=float(lo),
            hi=float(hi),
            derivation="trimmed mean lies within its own trim bounds",
        )
