"""Summary Database entries and result encoding.

An entry is one row of the paper's Figure 4 table: a function description,
the attribute(s) it was applied to, and the (varying-length) result.  The
result encoders serialize scalars, vectors, histograms, and (min, max)
pairs to bytes so the stored layout simulation can reason about entry
sizes — "implicit here is the fact that the values in the third column
will be of varying length" (SS3.2).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.errors import SummaryError
from repro.incremental.differencing import IncrementalComputation
from repro.relational.types import NA, is_na


@dataclass(frozen=True)
class SummaryKey:
    """The search argument of SS3.2: function name + attribute name(s)."""

    function: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.function:
            raise SummaryError("function name must be non-empty")
        if not self.attributes:
            raise SummaryError("at least one attribute is required")

    @property
    def primary_attribute(self) -> str:
        """The attribute entries cluster on (the first one)."""
        return self.attributes[0]

    def __str__(self) -> str:
        return f"{self.function}({', '.join(self.attributes)})"


@dataclass
class SummaryEntry:
    """One cached result plus its maintenance state."""

    key: SummaryKey
    result: Any
    stale: bool = False
    maintainer: IncrementalComputation | None = None
    computed_at_version: int = 0
    compute_cost_rows: int = 0
    hit_count: int = 0
    pending_updates: int = 0
    """Updates applied to the view since the result was last refreshed

    (used by periodic/tolerant consistency policies)."""

    kind: str = "exact"
    """``exact`` (scalar statistics), ``sketch`` (approximate mergeable
    summaries), or ``model`` (fitted statistical models)."""

    epsilon: float | None = None
    """Documented accuracy bound for sketch results (None = exact)."""

    observed_error: float | None = None
    """Last measured deviation from an exact recomputation, when known."""

    @property
    def size_bytes(self) -> int:
        """Approximate encoded size of the cached result."""
        return len(encode_result(self.result))

    def mark_fresh(self, version: int) -> None:
        """Record that the result now reflects the view at ``version``."""
        self.stale = False
        self.pending_updates = 0
        self.computed_at_version = version


# -- result encoding ----------------------------------------------------------
#
# Tagged, length-prefixed encoding for the "varying length" third column:
#   0x00 NA | 0x01 float64 | 0x02 int64 | 0x03 utf-8 string
#   0x04 vector of float64 (NA as NaN is not allowed; NA elements use a mask)
#   0x05 histogram (edges vector + counts vector)
#   0x06 pair of two encoded results
#   0x07 vector of strings
#   0x08 generic tuple of encoded results (cross tabulations etc.)

_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")


def encode_result(result: Any) -> bytes:
    """Serialize a cached result."""
    if is_na(result):
        return b"\x00"
    if isinstance(result, bool):
        return b"\x02" + _I64.pack(int(result))
    if isinstance(result, int):
        return b"\x02" + _I64.pack(result)
    if isinstance(result, float):
        return b"\x01" + _F64.pack(result)
    if isinstance(result, str):
        raw = result.encode("utf-8")
        return b"\x03" + _U32.pack(len(raw)) + raw
    if _is_histogram(result):
        edges, counts = _histogram_parts(result)
        return (
            b"\x05"
            + _U32.pack(len(edges))
            + b"".join(_F64.pack(float(e)) for e in edges)
            + _U32.pack(len(counts))
            + b"".join(_I64.pack(int(c)) for c in counts)
        )
    if isinstance(result, tuple) and len(result) == 2:
        a = encode_result(result[0])
        b = encode_result(result[1])
        return b"\x06" + _U32.pack(len(a)) + a + b
    if isinstance(result, tuple):
        parts = [encode_result(item) for item in result]
        return (
            b"\x08"
            + _U32.pack(len(parts))
            + b"".join(_U32.pack(len(p)) + p for p in parts)
        )
    if isinstance(result, list) and result and all(
        isinstance(v, str) for v in result
    ):
        encoded = [v.encode("utf-8") for v in result]
        return (
            b"\x07"
            + _U32.pack(len(encoded))
            + b"".join(_U32.pack(len(e)) + e for e in encoded)
        )
    if isinstance(result, (list, tuple)):
        mask = bytearray((len(result) + 7) // 8)
        parts = []
        for i, value in enumerate(result):
            if is_na(value):
                mask[i // 8] |= 1 << (i % 8)
                parts.append(_F64.pack(0.0))
            else:
                parts.append(_F64.pack(float(value)))
        return b"\x04" + _U32.pack(len(result)) + bytes(mask) + b"".join(parts)
    raise SummaryError(f"cannot encode result of type {type(result).__name__}")


def decode_result(buf: bytes) -> Any:
    """Inverse of :func:`encode_result`."""
    value, _ = _decode(buf, 0)
    return value


def _decode(buf: bytes, pos: int) -> tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == 0x00:
        return NA, pos
    if tag == 0x01:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == 0x02:
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == 0x03:
        (length,) = _U32.unpack_from(buf, pos)
        pos += 4
        return buf[pos : pos + length].decode("utf-8"), pos + length
    if tag == 0x04:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        mask_len = (n + 7) // 8
        mask = buf[pos : pos + mask_len]
        pos += mask_len
        values: list[Any] = []
        for i in range(n):
            raw = _F64.unpack_from(buf, pos)[0]
            pos += 8
            values.append(NA if mask[i // 8] & (1 << (i % 8)) else raw)
        return values, pos
    if tag == 0x05:
        (n_edges,) = _U32.unpack_from(buf, pos)
        pos += 4
        edges = []
        for _ in range(n_edges):
            edges.append(_F64.unpack_from(buf, pos)[0])
            pos += 8
        (n_counts,) = _U32.unpack_from(buf, pos)
        pos += 4
        counts = []
        for _ in range(n_counts):
            counts.append(_I64.unpack_from(buf, pos)[0])
            pos += 8
        return (edges, counts), pos
    if tag == 0x06:
        (a_len,) = _U32.unpack_from(buf, pos)
        pos += 4
        a, consumed = _decode(buf, pos)
        if consumed != pos + a_len:
            raise SummaryError("corrupt pair encoding")
        b, pos = _decode(buf, consumed)
        return (a, b), pos
    if tag == 0x07:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        strings: list[str] = []
        for _ in range(n):
            (length,) = _U32.unpack_from(buf, pos)
            pos += 4
            strings.append(buf[pos : pos + length].decode("utf-8"))
            pos += length
        return strings, pos
    if tag == 0x08:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        items: list[Any] = []
        for _ in range(n):
            (length,) = _U32.unpack_from(buf, pos)
            pos += 4
            item, consumed = _decode(buf, pos)
            if consumed != pos + length:
                raise SummaryError("corrupt tuple encoding")
            items.append(item)
            pos = consumed
        return tuple(items), pos
    raise SummaryError(f"unknown result tag 0x{tag:02x}")


def _is_histogram(result: Any) -> bool:
    if not (isinstance(result, tuple) and len(result) == 2):
        return False
    edges, counts = result
    if not isinstance(edges, (list, tuple)) or not isinstance(counts, (list, tuple)):
        return False
    return len(edges) == len(counts) + 1 and all(
        isinstance(c, int) for c in counts
    )


def _histogram_parts(result: Any) -> tuple[Sequence[float], Sequence[int]]:
    edges, counts = result
    return edges, counts
