"""Disk-resident Summary Database storage.

"To enhance access to the Summary Database (which may itself become
relatively large), we envision the use of a secondary index on function
name-attribute name.  Data will most likely be clustered on attribute name
to facilitate efficient access to all results on a given column" (SS3.2).

:class:`StoredSummaryStore` realizes that design on the real substrate:
entries are serialized (key + varying-length result) into a heap file in
attribute-clustered order, a B+-tree maps (attribute, function) to RIDs,
and attribute sweeps and exact lookups pay genuine page I/O — confirming
with measured block reads what the in-memory layout simulation of
:meth:`SummaryDatabase.pages_for_attribute` models.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import SummaryError
from repro.relational.types import DataType
from repro.storage.btree import BPlusTree
from repro.storage.heapfile import HeapFile
from repro.storage.pager import BufferPool
from repro.storage.records import RID
from repro.summary.entries import SummaryKey, decode_result, encode_result
from repro.summary.summarydb import SummaryDatabase

# Stored record: function | attributes (\x1f-joined) | encoded result hex.
_TYPES = [DataType.STR, DataType.STR, DataType.STR]
_SEP = "\x1f"


class StoredSummaryStore:
    """A Summary Database persisted to heap-file pages with a B+-tree index."""

    def __init__(self, pool: BufferPool, name: str = "summary_store") -> None:
        self.pool = pool
        self.heap = HeapFile(pool, _TYPES, name=name)
        self.index = BPlusTree(order=16)

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def page_count(self) -> int:
        """Pages the stored entries occupy."""
        return self.heap.page_count

    # -- writing ------------------------------------------------------------

    def save(self, summary: SummaryDatabase) -> int:
        """Persist every entry of an in-memory Summary Database.

        Entries are written in attribute-clustered (index) order so that
        one attribute's results sit on adjacent pages — the paper's layout.
        Returns the number of entries written.
        """
        if len(self.heap) > 0:
            raise SummaryError("store already holds a snapshot; use a fresh store")
        written = 0
        for entry in summary.entries():  # clustered order
            self._insert(entry.key, entry.result)
            written += 1
        self.pool.flush_all()
        return written

    def insert_entry(self, key: SummaryKey, result: object) -> RID:
        """Append one entry (unclustered position: end of file)."""
        return self._insert(key, result)

    def _insert(self, key: SummaryKey, result: object) -> RID:
        payload = encode_result(result).hex()
        rid = self.heap.insert(
            (key.function, _SEP.join(key.attributes), payload)
        )
        self.index.insert((key.primary_attribute, key.function), rid)
        return rid

    # -- reading -------------------------------------------------------------

    def lookup(self, function: str, attributes: tuple[str, ...] | str) -> object:
        """Exact (function, attribute) search via the secondary index."""
        if isinstance(attributes, str):
            attributes = (attributes,)
        rids = self.index.search((attributes[0], function))
        for rid in rids:
            record = self.heap.get(rid)
            if record[0] == function and tuple(record[1].split(_SEP)) == attributes:
                return decode_result(bytes.fromhex(record[2]))
        raise SummaryError(f"no stored entry for {function}({', '.join(attributes)})")

    def entries_for_attribute(self, attribute: str) -> Iterator[tuple[SummaryKey, object]]:
        """The clustered attribute sweep of SS4.1, against real pages."""
        for _, rid in self.index.prefix_scan((attribute,)):
            record = self.heap.get(rid)
            key = SummaryKey(record[0], tuple(record[1].split(_SEP)))
            yield key, decode_result(bytes.fromhex(record[2]))

    def restore(self) -> SummaryDatabase:
        """Rebuild an in-memory Summary Database from the stored snapshot."""
        summary = SummaryDatabase(view_name="restored")
        for _, record in self.heap.scan():
            key = SummaryKey(record[0], tuple(record[1].split(_SEP)))
            summary.insert(
                key.function, key.attributes, decode_result(bytes.fromhex(record[2]))
            )
        return summary
