"""Multi-version concurrency control: immutable published view versions.

The lock-based read path serialized exactly the traffic a statistical
database should serve lock-free: BENCH_e19 showed throughput collapsing
past 4 analysts because every ``query``/``columns``/``history`` request
took the view's SHARED lock and then mutated the Summary Database under
its latch.  This module replaces that with MVCC:

* **Writers publish, readers pin.**  A :class:`VersionChain` holds, per
  view, a chain of frozen :class:`ViewVersion` records — the history
  high-water mark, a summary-entry snapshot, and the per-attribute
  column-chunk epochs.  The writer path publishes a new version at the
  end of each write transaction *while still holding the EXCLUSIVE view
  lock* (the publication point); readers pin the latest version and never
  touch the view lock or the summary latch again.
* **Copy-on-write columns.**  Publication captures column values per
  attribute, but shares the frozen chunk with the predecessor version
  whenever the attribute's epoch (:attr:`ConcreteView.epochs`) is
  unchanged — an update touching one attribute copies one column, not
  the whole view.
* **Bounded reclamation.**  Versions are reference-counted by reader
  pins; publication and unpinning garbage-collect every version that is
  neither pinned nor latest, so a burst of writes cannot accumulate
  unbounded history.
* **Replica workers.**  A :class:`ReplicaPool` gives the wire server a
  dedicated read executor: each worker thread keeps a thread-sticky pin
  per view and re-pins only when the chain has advanced past the pool's
  staleness bound (``max_lag``, default 0 — read-your-writes, since the
  writer publishes before its response is sent).
* **Demand-driven warming.**  A reader that misses a version's summary
  snapshot and computes the result itself registers the key on the chain
  (:meth:`VersionChain.note_demand`).  The next write transaction warms
  every demanded key through the live Summary Database at the
  publication point — so the consistency-policy machinery (SS4.2 update
  rules, incremental where possible) maintains it from then on, and
  every subsequent published version carries the fresh value in its
  snapshot.  Steady-state reads of previously-seen statistics therefore
  never compute: they hit the snapshot (the wire server serves them
  inline on its event loop).

Mutating a published :class:`ViewVersion` outside this module — or
writing the Summary Database's cache structures around its sanctioned
APIs — is flagged statically by lint rule REPRO-C206.

Observability counters (REPRO-A107 — tracers are injected, never
constructed here): ``mvcc.publish``, ``mvcc.publish_noop``, ``mvcc.pin``,
``mvcc.unpin``, ``mvcc.reclaim``, ``mvcc.release_all``,
``mvcc.cow_shared``, ``mvcc.cow_copied``, ``mvcc.memo_hit``,
``mvcc.repin``, ``mvcc.warm``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable

from repro.concurrency.tracing import make_latch
from repro.core.errors import FunctionError, SchemaError, SnapshotError
from repro.core.session import PAIR_FUNCTIONS
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.views.view import ConcreteView

if TYPE_CHECKING:  # pragma: no cover - import cycle: transactions imports us
    from repro.concurrency.transactions import TransactionCoordinator
    from repro.metadata.management import ManagementDatabase


class ViewVersion:
    """One frozen published state of a concrete view.

    Everything a read-only operation needs, captured at the publication
    point: frozen column chunks (shared copy-on-write with the
    predecessor), the history operations up to the high-water mark, the
    Summary Database's fresh results, and the attribute metadata for
    applicability checks.  Instances are immutable after publication —
    the only sanctioned post-publication mutation is the internal result
    memo, which is guarded by its own latch and invisible to callers.
    """

    __slots__ = (
        "view_name",
        "seq",
        "view_version",
        "history_len",
        "row_count",
        "columns",
        "epochs",
        "history_ops",
        "summary",
        "attributes",
        "_memo",
        "_memo_latch",
    )

    def __init__(
        self,
        view_name: str,
        seq: int,
        view_version: int,
        history_len: int,
        row_count: int,
        columns: dict[str, tuple[Any, ...]],
        epochs: dict[str, int],
        history_ops: tuple[Any, ...],
        summary: dict[tuple[str, tuple[str, ...]], Any],
        attributes: dict[str, Any],
    ) -> None:
        self.view_name = view_name
        self.seq = seq
        self.view_version = view_version
        self.history_len = history_len
        self.row_count = row_count
        self.columns = columns
        self.epochs = epochs
        self.history_ops = history_ops
        self.summary = summary
        self.attributes = attributes
        self._memo: dict[tuple[str, tuple[str, ...]], Any] = {}
        self._memo_latch = make_latch("ViewVersion._memo_latch")

    def cached(self, key: tuple[str, tuple[str, ...]]) -> tuple[bool, Any]:
        """(hit, value) from the publication snapshot or the local memo.

        Both dicts are read bare: the summary snapshot is frozen at
        publication, and the memo only ever grows under ``_memo_latch``
        (a racing reader at worst misses and recomputes the same value).
        """
        summary = self.summary
        if key in summary:
            return True, summary[key]
        memo = self._memo
        if key in memo:
            return True, memo[key]
        return False, None

    def memoize(self, key: tuple[str, tuple[str, ...]], value: Any) -> Any:
        """Remember a result computed against this frozen version."""
        with self._memo_latch:
            self._memo[key] = value
        return value

    def __repr__(self) -> str:
        return (
            f"ViewVersion({self.view_name!r}, seq={self.seq}, "
            f"v{self.view_version}, {self.row_count} rows)"
        )


def _capture_parts(
    view: ConcreteView, prev: ViewVersion | None, tracer: AbstractTracer
) -> dict[str, Any]:
    """Freeze the view's current state into :class:`ViewVersion` fields.

    Caller must hold the view's EXCLUSIVE lock (or otherwise guarantee no
    writer is mid-flight, as the bootstrap's SHARED lock does).  Column
    chunks whose copy-on-write epoch matches the predecessor's are shared
    by reference instead of re-copied.
    """
    names = list(view.schema.names)
    epochs = {name: view.epochs.get(name, 0) for name in names}
    columns: dict[str, tuple[Any, ...]] = {}
    row_count = len(view)
    shared = copied = 0
    for name in names:
        if (
            prev is not None
            and prev.epochs.get(name) == epochs[name]
            and name in prev.columns
            and len(prev.columns[name]) == row_count
        ):
            columns[name] = prev.columns[name]
            shared += 1
        else:
            columns[name] = tuple(view.column(name))
            copied += 1
    if tracer.enabled:
        if shared:
            tracer.add("mvcc.cow_shared", shared)
        if copied:
            tracer.add("mvcc.cow_copied", copied)
    return {
        "view_version": view.version,
        "history_len": len(view.history),
        "row_count": row_count,
        "columns": columns,
        "epochs": epochs,
        "history_ops": tuple(view.history.operations_upto(view.version)),
        "summary": view.summary.snapshot_fresh(),
        "attributes": {name: view.schema.attribute(name) for name in names},
    }


class VersionChain:
    """The per-view chain of published versions, with pin refcounts.

    The latch guards the chain structure (append, pins, reclamation)
    only; state capture happens outside it, and :attr:`seq` may be read
    bare as a staleness hint (it is a monotonically increasing int — a
    torn read is impossible and a stale one merely delays a re-pin by one
    request).
    """

    def __init__(self, view_name: str, tracer: AbstractTracer | None = None) -> None:
        self.view_name = view_name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._latch = make_latch("VersionChain._latch")
        self._seq = 0
        self._versions: list[ViewVersion] = []
        self._pins: dict[int, dict[str, int]] = {}
        # Reader-demanded summary keys, drained by the writer at the
        # publication point.  Bounded by the number of distinct
        # (function, attributes) combinations ever queried; written under
        # the latch, but only on memo *misses* — never on the hit path.
        self._demand: dict[tuple[str, tuple[str, ...]], bool] = {}

    @property
    def seq(self) -> int:
        """Latest published sequence number (0 = never published)."""
        return self._seq

    def latest(self) -> ViewVersion | None:
        """The newest published version, if any."""
        with self._latch:
            return self._versions[-1] if self._versions else None

    def head(self) -> ViewVersion | None:
        """The newest published version via a bare read — no latch.

        Safe because versions are immutable, :meth:`publish_version`
        appends before it reclaims, and ``_reclaim_locked`` rebinds
        ``_versions`` to a new list that still ends with the head — a
        bare reader sees either list, both consistent.  This is the
        event-loop-safe accessor (REPRO-C205): the wire server's inline
        read path uses it to answer memoized queries without pinning.
        A reference obtained here stays readable after reclamation for
        the same reason the one-shot pin/unpin path does — reclamation
        only drops the *chain's* reference to a version.
        """
        versions = self._versions
        return versions[-1] if versions else None

    def live(self) -> list[ViewVersion]:
        """Snapshot of the retained chain, oldest first (for tests/obs)."""
        with self._latch:
            return list(self._versions)

    def pins(self) -> dict[int, dict[str, int]]:
        """Snapshot of the pin table: seq -> sid -> refcount."""
        with self._latch:
            return {seq: dict(holders) for seq, holders in self._pins.items()}

    # -- demand registration -------------------------------------------------

    def note_demand(self, key: tuple[str, tuple[str, ...]]) -> None:
        """Record that a reader had to compute ``key`` itself (memo miss).

        Duplicate registrations collapse; the writer warms demanded keys
        through the live Summary Database at the publication point, so
        later versions publish them pre-computed.  Only ever called on a
        miss, so the latch never burdens the steady-state hit path.
        """
        with self._latch:
            self._demand[key] = True

    def demanded(self) -> list[tuple[str, tuple[str, ...]]]:
        """The summary keys readers have missed on, for writer warming."""
        with self._latch:
            return list(self._demand)

    def drop_demand(self, key: tuple[str, tuple[str, ...]]) -> None:
        """Stop warming ``key`` (it proved uncomputable — e.g. the
        function is inapplicable to the attribute's role)."""
        with self._latch:
            self._demand.pop(key, None)

    # -- publication -------------------------------------------------------

    def publish_version(self, view: ConcreteView) -> ViewVersion:
        """Publish the view's current state; the MVCC publication point.

        Caller must hold the view's EXCLUSIVE lock (writer exit) or its
        SHARED lock (first-read bootstrap — no writer can be mid-flight,
        so concurrent bootstraps capture identical state and the second
        one collapses into a no-op).  Unchanged state — detected by the
        ``(version high-water mark, history length)`` pair, since undo
        shortens the history without lowering the monotonic version —
        returns the existing head.  A *regressed* high-water mark can
        only mean a writer replaced view state around the coordinator:
        that is the re-verification the old read path did at exit, moved
        here to the publication point.
        """
        with self._latch:
            prev = self._versions[-1] if self._versions else None
        if prev is not None:
            if view.version < prev.view_version:
                self.tracer.add("txn.snapshot_violation")
                raise SnapshotError(
                    f"view {self.view_name!r} regressed from "
                    f"v{prev.view_version} to v{view.version} at the "
                    "publication point — a writer bypassed the coordinator"
                )
            if (
                prev.view_version == view.version
                and prev.history_len == len(view.history)
            ):
                self.tracer.add("mvcc.publish_noop")
                return prev
        parts = _capture_parts(view, prev, self.tracer)
        reclaimed = 0
        with self._latch:
            head = self._versions[-1] if self._versions else None
            if (
                head is not None
                and head.view_version == parts["view_version"]
                and head.history_len == parts["history_len"]
            ):
                # A concurrent bootstrap published this same state first.
                return head
            self._seq += 1
            version = ViewVersion(view_name=self.view_name, seq=self._seq, **parts)
            self._versions.append(version)
            reclaimed = self._reclaim_locked()
        self.tracer.add("mvcc.publish")
        if reclaimed:
            self.tracer.add("mvcc.reclaim", reclaimed)
        return version

    # -- pinning -----------------------------------------------------------

    def pin(self, sid: str) -> ViewVersion:
        """Pin and return the latest version for reader ``sid``."""
        with self._latch:
            if not self._versions:
                raise SnapshotError(
                    f"view {self.view_name!r} has no published version to pin"
                )
            version = self._versions[-1]
            holders = self._pins.setdefault(version.seq, {})
            holders[sid] = holders.get(sid, 0) + 1
            # Charged under the latch for write-consistency (C204); with a
            # span open on the calling thread this touches no shared state.
            self.tracer.add("mvcc.pin")
        return version

    def unpin(self, sid: str, version: ViewVersion) -> None:
        """Release one pin.  Idempotent: a pin already dropped by
        :meth:`release_all` (disconnect teardown racing an in-flight
        read's cleanup) is a no-op."""
        with self._latch:
            holders = self._pins.get(version.seq)
            if holders is not None and sid in holders:
                if holders[sid] <= 1:
                    del holders[sid]
                    if not holders:
                        del self._pins[version.seq]
                else:
                    holders[sid] -= 1
                reclaimed = self._reclaim_locked()
                if reclaimed:
                    self.tracer.add("mvcc.reclaim", reclaimed)
            self.tracer.add("mvcc.unpin")

    def release_all(self, sid: str) -> int:
        """Disconnect cleanup: drop every pin ``sid`` still holds."""
        dropped = 0
        with self._latch:
            for seq in list(self._pins):
                holders = self._pins[seq]
                if sid in holders:
                    dropped += holders.pop(sid)
                    if not holders:
                        del self._pins[seq]
            if dropped:
                reclaimed = self._reclaim_locked()
                self.tracer.add("mvcc.release_all", dropped)
                if reclaimed:
                    self.tracer.add("mvcc.reclaim", reclaimed)
        return dropped

    def _reclaim_locked(self) -> int:
        """Drop versions nobody pins, keeping the head (latch held)."""
        if len(self._versions) <= 1:
            return 0
        kept = [v for v in self._versions[:-1] if self._pins.get(v.seq)]
        reclaimed = len(self._versions) - 1 - len(kept)
        if reclaimed:
            kept.append(self._versions[-1])
            self._versions = kept
        return reclaimed

    def __repr__(self) -> str:
        with self._latch:
            return (
                f"VersionChain({self.view_name!r}, seq={self._seq}, "
                f"{len(self._versions)} live, {len(self._pins)} pinned)"
            )


class SnapshotReader:
    """Read-only operations against one pinned :class:`ViewVersion`.

    The MVCC replacement for the lock-holding ``ReadSnapshot``: computes
    run against the version's frozen columns and publication-time summary
    snapshot, never the live view — no view lock, no summary latch, no
    cache mutation.  Results computed here are memoized on the version
    itself, so repeated queries against the same published state hit the
    per-version memo instead of rescanning.
    """

    __slots__ = ("pinned", "_management", "_tracer", "_on_miss")

    def __init__(
        self,
        pinned: ViewVersion,
        management: "ManagementDatabase",
        tracer: AbstractTracer | None = None,
        on_miss: "Callable[[tuple[str, tuple[str, ...]]], None] | None" = None,
    ) -> None:
        self.pinned = pinned
        self._management = management
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: Demand hook: called with the summary key whenever this reader
        #: computes a result itself instead of finding it published
        #: (:meth:`VersionChain.note_demand` — writers warm these).
        self._on_miss = on_miss

    @property
    def version(self) -> int:
        """The pinned history high-water mark (wire-visible version)."""
        return self.pinned.view_version

    def operations(self) -> list[Any]:
        """The view's history as of the pinned version."""
        return list(self.pinned.history_ops)

    def column(self, attribute: str) -> list[Any]:
        """One frozen column's values."""
        try:
            return list(self.pinned.columns[attribute])
        except KeyError:
            raise SchemaError(
                f"view {self.pinned.view_name!r} has no attribute "
                f"{attribute!r} in the pinned version"
            ) from None

    def compute(self, function: str, attribute: str) -> Any:
        """Compute (or fetch) one function over one frozen column."""
        key = (function, (attribute,))
        hit, value = self.pinned.cached(key)
        if hit:
            self._tracer.add("mvcc.memo_hit")
            return value
        fn = self._management.functions.get(function)
        attr = self.pinned.attributes.get(attribute)
        if attr is None:
            raise SchemaError(
                f"view {self.pinned.view_name!r} has no attribute "
                f"{attribute!r} in the pinned version"
            )
        if not fn.applicable_to(attr):
            raise FunctionError(
                f"{function!r} on {attribute!r} is not meaningful: the "
                f"attribute is a {attr.role.value} "
                "(paper SS3.2: summary values of encoded categories make no sense)"
            )
        values = list(self.pinned.columns[attribute])
        if self._on_miss is not None:
            self._on_miss(key)
        return self.pinned.memoize(key, fn.compute(values))

    def compute_pair(self, function: str, a: str, b: str) -> Any:
        """Compute (or fetch) a two-column function over frozen columns."""
        key = (function, (a, b))
        hit, value = self.pinned.cached(key)
        if hit:
            self._tracer.add("mvcc.memo_hit")
            return value
        try:
            fn = PAIR_FUNCTIONS[function]
        except KeyError:
            raise FunctionError(
                f"unknown pair function {function!r}; "
                f"choose from {sorted(PAIR_FUNCTIONS)}"
            ) from None
        if self._on_miss is not None:
            self._on_miss(key)
        return self.pinned.memoize(key, fn(self.column(a), self.column(b)))

    def __repr__(self) -> str:
        return f"SnapshotReader({self.pinned!r})"


class ReplicaPool:
    """Copy-on-write snapshot replicas: N reader workers, one writer path.

    The wire server routes read-only ops (``query``/``columns``/
    ``history``) to this pool's executor; writes stay on the coordinator's
    worker pool with the unchanged propagator/WAL/group-commit pipeline.
    Each worker thread keeps a *thread-sticky* pin per view — its private
    copy-on-write replica — and hands off to a newer version only when
    the chain has advanced more than ``max_lag`` publications past it
    (bounded staleness; 0 preserves read-your-writes because the writer
    publishes before its response is sent).
    """

    def __init__(
        self,
        coordinator: "TransactionCoordinator",
        workers: int = 4,
        max_lag: int = 0,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.coordinator = coordinator
        self.workers = workers
        self.max_lag = max_lag
        self.tracer = tracer if tracer is not None else coordinator.tracer
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-replica"
        )
        self._local = threading.local()

    def _sid(self) -> str:
        """The calling worker thread's replica session id."""
        return f"__replica:{threading.current_thread().name}__"

    def _pinned_map(self) -> dict[str, ViewVersion]:
        pinned = getattr(self._local, "pinned", None)
        if pinned is None:
            pinned = {}
            self._local.pinned = pinned
        return pinned

    def reader(
        self, view_name: str, timeout_s: float | None = None
    ) -> SnapshotReader:
        """A reader against this worker's replica of ``view_name``.

        Steady state acquires no locks at all: the staleness check is a
        bare read of the chain's sequence counter.  Only when the pinned
        version lags the head by more than ``max_lag`` does the worker
        re-pin (one chain latch) and release its old replica.
        ``timeout_s`` bounds the one-time bootstrap lock acquisition.
        """
        sid = self._sid()
        chain = self.coordinator.chain(sid, view_name, timeout_s)
        pinned = self._pinned_map()
        version = pinned.get(view_name)
        if version is None or chain.seq - version.seq > self.max_lag:
            fresh = chain.pin(sid)
            if version is not None:
                chain.unpin(sid, version)
                self.tracer.add("mvcc.repin")
            pinned[view_name] = fresh
            version = fresh
        return SnapshotReader(
            version,
            self.coordinator.dbms.management,
            tracer=self.tracer,
            on_miss=chain.note_demand,
        )

    def close(self) -> None:
        """Shut the worker pool down without blocking.

        Deliberately latch-free (callable from the event loop's ``stop``
        path): worker threads' sticky pins are simply abandoned — there
        are at most ``workers × views`` of them, and they die with the
        chain when the coordinator is dropped.
        """
        self.executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:
        return f"ReplicaPool({self.workers} workers, max_lag={self.max_lag})"
