"""Concurrency control for multi-analyst operation (``repro.concurrency``).

The paper's architecture is multi-analyst by construction (SS2.3, SS3.2):
several private concrete views share one Management Database, published
edit histories, and — behind the wire server — one process.  This package
is the only place in the codebase allowed to *construct* locks (lint rule
REPRO-A109); everything else either acquires them through the
:class:`LockManager` or holds an injected latch.

Layers:

* :mod:`repro.concurrency.locks` — per-view reader/writer locks with
  wait-for-graph deadlock detection and acquisition timeouts.
* :mod:`repro.concurrency.mvcc` — multi-version concurrency control:
  per-view :class:`VersionChain` of immutable published
  :class:`ViewVersion` records (copy-on-write column chunks, frozen
  summary snapshots), lock-free :class:`SnapshotReader`, and the
  :class:`ReplicaPool` of reader workers with bounded-staleness handoff.
* :mod:`repro.concurrency.transactions` — the
  :class:`TransactionCoordinator`: lock-free MVCC snapshot reads (pinned
  published versions), per-view serialized writes that publish at exit,
  quiesced checkpoints.
* :mod:`repro.concurrency.groupcommit` — :class:`GroupCommitter`, batching
  concurrent sessions' WAL transactions into one fsync.
* :mod:`repro.concurrency.tracing` — :class:`ConcurrentTracer` (per-thread
  span stacks) and the latch factory for structures like the Summary
  Database.
* :mod:`repro.concurrency.sanitizer` — :class:`LockOrderSanitizer`, the
  runtime half of the ``REPRO-C2xx`` concurrency analysis: records actual
  acquisition order/stacks and cross-checks them against the static
  lock-order graph.
"""

from repro.concurrency.groupcommit import GroupCommitter
from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.mvcc import (
    ReplicaPool,
    SnapshotReader,
    VersionChain,
    ViewVersion,
)
from repro.concurrency.sanitizer import (
    LockOrderSanitizer,
    SanitizedLatch,
    current_sanitizer,
    install_sanitizer,
)
from repro.concurrency.tracing import ConcurrentTracer, make_latch
from repro.concurrency.transactions import TransactionCoordinator

__all__ = [
    "ConcurrentTracer",
    "GroupCommitter",
    "LockManager",
    "LockMode",
    "LockOrderSanitizer",
    "ReplicaPool",
    "SanitizedLatch",
    "SnapshotReader",
    "TransactionCoordinator",
    "VersionChain",
    "ViewVersion",
    "current_sanitizer",
    "install_sanitizer",
    "make_latch",
]
