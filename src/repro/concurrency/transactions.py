"""The transaction coordinator: snapshot reads, serialized writes.

One :class:`TransactionCoordinator` fronts one
:class:`~repro.core.dbms.StatisticalDBMS` for any number of concurrent
analyst sessions (the wire server's connections, or plain threads in
tests).  It enforces the two-level discipline the service layer needs:

* **Reads are snapshot-consistent.**  ``with coordinator.read(sid, view)``
  takes the view's SHARED lock and pins the history's version high-water
  mark.  Because a writer needs the EXCLUSIVE lock to touch the view, a
  reader can never observe a half-applied multi-attribute update; the
  pinned mark additionally scopes history reads
  (:meth:`~repro.views.history.UpdateHistory.operations_upto`) and is
  re-verified at exit — a changed version under a held read lock means
  the locking protocol itself was bypassed, and raises
  :class:`~repro.core.errors.SnapshotError`.
* **Writes serialize per view.**  ``with coordinator.write(sid, view)``
  takes the EXCLUSIVE lock; the update/undo then flows through the
  existing :class:`~repro.core.propagation.UpdatePropagator` and WAL
  unchanged.  Group commit (installed automatically when the DBMS is
  durable) batches concurrent commits into shared fsyncs.
* **Registry mutations** (create/publish/adopt/drop) serialize through a
  reserved resource name, :data:`REGISTRY_RESOURCE`, since they touch
  shared structures no per-view lock covers.
* **Checkpoints quiesce.**  :meth:`checkpoint` takes the registry lock
  plus every view's EXCLUSIVE lock in sorted name order (lock ordering —
  no cycles possible among checkpointers), so the snapshot observes no
  in-flight transaction.

Sessions are cached per ``(sid, view)`` so a connection's repeated
requests hit the same Summary Database bookkeeping; ``release(sid)`` drops
the cache and any locks the connection still holds.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.concurrency.groupcommit import GroupCommitter
from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.tracing import make_latch
from repro.core.dbms import StatisticalDBMS
from repro.core.errors import SnapshotError
from repro.core.session import AnalystSession
from repro.obs.tracer import NULL_TRACER, AbstractTracer

#: Reserved lock resource guarding registry-level mutations.  Real view
#: names come from ``ViewDefinition.name`` which never uses this form.
REGISTRY_RESOURCE = "__registry__"


class ReadSnapshot:
    """What a read transaction sees: a session plus a pinned version."""

    __slots__ = ("session", "version")

    def __init__(self, session: AnalystSession, version: int) -> None:
        self.session = session
        self.version = version

    def operations(self) -> list[Any]:
        """The view's history as of the pinned version."""
        return self.session.view.history.operations_upto(self.version)

    def compute(self, function: str, attribute: str, **kwargs: Any) -> Any:
        """Cached compute under the snapshot (shared lock held)."""
        return self.session.compute(function, attribute, **kwargs)


class TransactionCoordinator:
    """Concurrency control for one DBMS shared by many sessions."""

    def __init__(
        self,
        dbms: StatisticalDBMS,
        locks: LockManager | None = None,
        tracer: AbstractTracer | None = None,
        timeout_s: float = 10.0,
    ) -> None:
        self.dbms = dbms
        self.tracer = tracer if tracer is not None else (
            dbms.tracer if dbms.tracer.enabled else NULL_TRACER
        )
        self.locks = locks or LockManager(timeout_s=timeout_s, tracer=self.tracer)
        self._sessions: dict[tuple[str, str], AnalystSession] = {}
        self._sessions_latch = make_latch("TransactionCoordinator._sessions_latch")
        if dbms.durability is not None and dbms.durability.group_commit is None:
            dbms.durability.group_commit = GroupCommitter(
                dbms.durability.wal, tracer=self.tracer
            )

    # -- session cache -----------------------------------------------------

    def session(
        self, sid: str, view_name: str, analyst: str | None = None
    ) -> AnalystSession:
        """The cached analyst session of ``sid`` against one view."""
        key = (sid, view_name)
        with self._sessions_latch:
            session = self._sessions.get(key)
            if session is None:
                session = self.dbms.session(
                    view_name, analyst=analyst or sid, session_id=sid
                )
                # The view's Summary Database is shared by every connection
                # that opens this view: give it a real latch (constructed
                # here — REPRO-A109) so concurrent cache fills cannot
                # corrupt its index.  install_latch is idempotent — other
                # connections' reader threads may already be inside the
                # first latch, so it must never be swapped out.
                session.view.summary.install_latch(
                    make_latch("SummaryDatabase.latch")
                )
                self._sessions[key] = session
        return session

    def release(self, sid: str) -> int:
        """Disconnect cleanup: drop cached sessions, free held locks."""
        with self._sessions_latch:
            for key in [k for k in self._sessions if k[0] == sid]:
                del self._sessions[key]
        return self.locks.release_all(sid)

    # -- transactions ------------------------------------------------------

    @contextmanager
    def read(
        self,
        sid: str,
        view_name: str,
        analyst: str | None = None,
        timeout_s: float | None = None,
    ) -> Iterator[ReadSnapshot]:
        """A snapshot-consistent read transaction (SHARED lock + pin)."""
        with self.locks.shared(sid, view_name, timeout_s):
            session = self.session(sid, view_name, analyst)
            pinned = session.view.version
            yield ReadSnapshot(session, pinned)
            current = session.view.version
            if current != pinned:
                self.tracer.add("txn.snapshot_violation")
                raise SnapshotError(
                    f"view {view_name!r} moved from v{pinned} to v{current} "
                    f"during {sid!r}'s read transaction — a writer bypassed "
                    "the lock manager"
                )

    @contextmanager
    def write(
        self,
        sid: str,
        view_name: str,
        analyst: str | None = None,
        timeout_s: float | None = None,
    ) -> Iterator[AnalystSession]:
        """A serialized write transaction (EXCLUSIVE lock)."""
        with self.locks.exclusive(sid, view_name, timeout_s):
            yield self.session(sid, view_name, analyst)

    @contextmanager
    def registry_write(
        self, sid: str, timeout_s: float | None = None
    ) -> Iterator[StatisticalDBMS]:
        """Serialize a registry-level mutation (create/publish/adopt/drop)."""
        with self.locks.exclusive(sid, REGISTRY_RESOURCE, timeout_s):
            yield self.dbms

    def registry_names(self, sid: str, timeout_s: float | None = None) -> list[str]:
        """Snapshot the registry's view names under the SHARED registry lock.

        Handshake/stats use this instead of reading ``registry.names()``
        bare, so the read cannot observe a registry mid-mutation
        (publish/adopt hold the EXCLUSIVE registry lock).
        """
        with self.locks.shared(sid, REGISTRY_RESOURCE, timeout_s):
            return self.dbms.registry.names()

    # -- quiesced checkpoints ----------------------------------------------

    @contextmanager
    def quiesce(self, sid: str, timeout_s: float | None = None) -> Iterator[None]:
        """Hold every lock (registry first, then views in sorted order).

        Sorted acquisition is a total lock order, so two quiescers cannot
        deadlock each other; the registry lock also blocks view
        creation/drop while the view list is being walked.  ``timeout_s``
        bounds *each* acquisition (``None`` means the lock manager's
        default) — a checkpoint triggered from a request handler passes
        the request's remaining deadline so it cannot outwait it.
        """
        held: list[str] = []
        try:
            self.locks.acquire(
                sid, REGISTRY_RESOURCE, LockMode.EXCLUSIVE, timeout_s
            )
            held.append(REGISTRY_RESOURCE)
            for name in sorted(self.dbms.registry.names()):
                # Same-class (view-lock) nesting is sanctioned here: the
                # sorted resource names are an explicit total order, so two
                # quiescers cannot meet in opposite directions.
                self.locks.acquire(  # repro-lint: disable=REPRO-C201
                    sid, name, LockMode.EXCLUSIVE, timeout_s
                )
                held.append(name)
            yield
        finally:
            for name in reversed(held):
                self.locks.release(sid, name)

    def checkpoint(
        self, sid: str = "__checkpoint__", timeout_s: float | None = None
    ) -> Any:
        """Quiesce the system and snapshot it atomically."""
        with self.quiesce(sid, timeout_s):
            with self.tracer.span("checkpoint.quiesced"):
                return self.dbms.checkpoint()

    def __repr__(self) -> str:
        with self._sessions_latch:
            cached = len(self._sessions)
        return f"TransactionCoordinator({cached} cached session(s), {self.locks!r})"
