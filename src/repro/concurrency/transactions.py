"""The transaction coordinator: MVCC snapshot reads, serialized writes.

One :class:`TransactionCoordinator` fronts one
:class:`~repro.core.dbms.StatisticalDBMS` for any number of concurrent
analyst sessions (the wire server's connections, or plain threads in
tests).  It enforces the two-level discipline the service layer needs:

* **Reads are lock-free snapshots (MVCC).**  ``with coordinator.read(sid,
  view)`` pins the latest published :class:`~repro.concurrency.mvcc.ViewVersion`
  on the view's :class:`~repro.concurrency.mvcc.VersionChain` and yields a
  :class:`~repro.concurrency.mvcc.SnapshotReader` over its frozen state —
  no view lock, no summary latch.  A reader can never observe a
  half-applied multi-attribute update because versions are only published
  at write-transaction exit.  The only lock a read path ever takes is the
  one-time per-view *bootstrap* (:meth:`chain`): the first reader of a
  never-published view briefly holds the SHARED lock so its initial
  capture cannot race a writer.
* **Writes serialize per view and publish at exit.**  ``with
  coordinator.write(sid, view)`` takes the EXCLUSIVE lock; the
  update/undo flows through the existing
  :class:`~repro.core.propagation.UpdatePropagator` and WAL unchanged,
  and on successful exit — still under the lock — the new state is
  published to the version chain (the *publication point*; the exit-time
  ``SnapshotError`` re-verification the old read path did lives there
  now).  A write body that raises publishes nothing: readers keep the
  last consistent version.  Group commit (installed automatically when
  the DBMS is durable) batches concurrent commits into shared fsyncs.
* **Registry mutations** (create/publish/adopt/drop) serialize through a
  reserved resource name, :data:`REGISTRY_RESOURCE`, since they touch
  shared structures no per-view lock covers.
* **Checkpoints quiesce.**  :meth:`checkpoint` takes the registry lock
  plus every view's EXCLUSIVE lock in sorted name order (lock ordering —
  no cycles possible among checkpointers), so the snapshot observes no
  in-flight transaction.

Sessions are cached per ``(sid, view)`` so a connection's repeated
requests hit the same Summary Database bookkeeping; ``release(sid)`` drops
the cache, any locks the connection still holds, and any version pins it
left behind (disconnect-mid-read teardown).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.concurrency.groupcommit import GroupCommitter
from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.mvcc import SnapshotReader, VersionChain, ViewVersion
from repro.concurrency.tracing import make_latch
from repro.core.dbms import StatisticalDBMS
from repro.core.errors import ReproError
from repro.core.session import AnalystSession
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.views.view import ConcreteView

#: Reserved lock resource guarding registry-level mutations.  Real view
#: names come from ``ViewDefinition.name`` which never uses this form.
REGISTRY_RESOURCE = "__registry__"


class TransactionCoordinator:
    """Concurrency control for one DBMS shared by many sessions."""

    def __init__(
        self,
        dbms: StatisticalDBMS,
        locks: LockManager | None = None,
        tracer: AbstractTracer | None = None,
        timeout_s: float = 10.0,
    ) -> None:
        self.dbms = dbms
        self.tracer = tracer if tracer is not None else (
            dbms.tracer if dbms.tracer.enabled else NULL_TRACER
        )
        self.locks = locks or LockManager(timeout_s=timeout_s, tracer=self.tracer)
        self._sessions: dict[tuple[str, str], AnalystSession] = {}
        self._sessions_latch = make_latch("TransactionCoordinator._sessions_latch")
        self._chains: dict[str, VersionChain] = {}
        self._chains_latch = make_latch("TransactionCoordinator._chains_latch")
        if dbms.durability is not None and dbms.durability.group_commit is None:
            dbms.durability.group_commit = GroupCommitter(
                dbms.durability.wal, tracer=self.tracer
            )

    # -- session cache -----------------------------------------------------

    def session(
        self, sid: str, view_name: str, analyst: str | None = None
    ) -> AnalystSession:
        """The cached analyst session of ``sid`` against one view."""
        key = (sid, view_name)
        with self._sessions_latch:
            session = self._sessions.get(key)
            if session is None:
                session = self.dbms.session(
                    view_name, analyst=analyst or sid, session_id=sid
                )
                # The view's Summary Database is shared by every connection
                # that opens this view: give it a real latch (constructed
                # here — REPRO-A109) so concurrent cache fills cannot
                # corrupt its index.  install_latch is idempotent — other
                # connections' reader threads may already be inside the
                # first latch, so it must never be swapped out.
                session.view.summary.install_latch(
                    make_latch("SummaryDatabase.latch")
                )
                self._sessions[key] = session
        return session

    def release(self, sid: str) -> int:
        """Disconnect cleanup: drop cached sessions, locks, version pins.

        This is the server's teardown path: a reader that disconnects
        mid-read leaves its pin here, and dropping it lets the chain
        reclaim the version once no other reader holds it (the in-flight
        read's own ``unpin`` then finds nothing and is a no-op).
        """
        with self._sessions_latch:
            for key in [k for k in self._sessions if k[0] == sid]:
                del self._sessions[key]
        with self._chains_latch:
            chains = list(self._chains.values())
        for chain in chains:
            chain.release_all(sid)
        return self.locks.release_all(sid)

    # -- version chains ----------------------------------------------------

    def chain(
        self, sid: str, view_name: str, timeout_s: float | None = None
    ) -> VersionChain:
        """The view's version chain, bootstrapping the first publication.

        Steady state is latch-light: a bare dict read finds the chain and
        its published head.  Only a never-published view pays for locking
        — the bootstrap takes the view's SHARED lock (bounded by
        ``timeout_s``) so the initial capture cannot observe a writer
        mid-flight; racing bootstraps publish identical state and
        collapse into one version.
        """
        chain = self._chains.get(view_name)
        if chain is None:
            self.dbms.view(view_name)  # raise ViewError before caching
            with self._chains_latch:
                chain = self._chains.setdefault(
                    view_name, VersionChain(view_name, tracer=self.tracer)
                )
        if chain.seq == 0:
            with self.locks.shared(sid, view_name, timeout_s):
                chain.publish_version(self.dbms.view(view_name))
        return chain

    def chain_if_published(self, view_name: str) -> VersionChain | None:
        """The view's chain *only* if it already has a published head.

        Strictly non-blocking (two bare reads, no lock, no latch), so the
        wire server's event loop may call it to decide whether a read can
        be served inline; ``None`` means the caller must take the
        bootstrapping :meth:`chain` path on a worker thread instead.
        """
        chain = self._chains.get(view_name)
        if chain is not None and chain.seq > 0:
            return chain
        return None

    def publish_view(
        self, view_name: str, view: ConcreteView | None = None
    ) -> ViewVersion:
        """Publish ``view``'s current state (the MVCC publication point).

        Caller must hold the view's EXCLUSIVE lock, or otherwise
        guarantee no writer is mid-flight.
        """
        if view is None:
            view = self.dbms.view(view_name)
        with self._chains_latch:
            chain = self._chains.setdefault(
                view_name, VersionChain(view_name, tracer=self.tracer)
            )
        return chain.publish_version(view)

    # -- transactions ------------------------------------------------------

    @contextmanager
    def read(
        self,
        sid: str,
        view_name: str,
        analyst: str | None = None,
        timeout_s: float | None = None,
    ) -> Iterator[SnapshotReader]:
        """A lock-free snapshot read: pin the latest published version.

        ``analyst`` is accepted for signature compatibility with
        :meth:`write`; reads no longer materialize a session at all.
        """
        del analyst  # reads never touch the live session/cache anymore
        chain = self.chain(sid, view_name, timeout_s)
        pinned = chain.pin(sid)
        try:
            yield SnapshotReader(
                pinned,
                self.dbms.management,
                tracer=self.tracer,
                on_miss=chain.note_demand,
            )
        finally:
            chain.unpin(sid, pinned)

    @contextmanager
    def write(
        self,
        sid: str,
        view_name: str,
        analyst: str | None = None,
        timeout_s: float | None = None,
    ) -> Iterator[AnalystSession]:
        """A serialized write transaction (EXCLUSIVE lock).

        On successful exit — still under the lock — the new view state is
        published to the version chain; a body that raises publishes
        nothing, so readers keep the last consistent version.

        Early lock release: WAL transactions logged by the body are
        *staged* (their log order fixed under the lock) but their group
        -commit fsyncs are awaited only after the lock is released, so
        the sync never serializes the next writer and same-view writers
        share fsync batches.  This call still returns only once every
        staged transaction is durable — the caller's acknowledgement
        keeps the classic guarantee; the window where a concurrent
        reader may pin the published-but-not-yet-synced version is the
        documented durability lag of the MVCC read path.
        """
        durability = self.dbms.durability
        deferred = durability is not None and durability.defer_syncs()
        try:
            with self.locks.exclusive(sid, view_name, timeout_s):
                session = self.session(sid, view_name, analyst)
                yield session
                self._warm_summaries(view_name, session)
                self.publish_view(view_name, session.view)
        finally:
            if deferred:
                durability.drain_syncs()

    def _warm_summaries(self, view_name: str, session: AnalystSession) -> None:
        """Warm reader-demanded summary keys at the publication point.

        Caller holds the view's EXCLUSIVE lock.  Every key a snapshot
        reader ever had to compute itself (:meth:`VersionChain.
        note_demand`) is computed through the live session here, so the
        Summary Database's consistency policy maintains it across
        updates — incrementally where an update rule allows — and the
        version published next carries it fresh in its snapshot.  Keys
        the session cannot compute (inapplicable function, dropped
        attribute) are dropped from the demand set for good.  Cost per
        write is one cache lookup per demanded key once warm; the set is
        bounded by the distinct statistics ever queried on the view.
        """
        chain = self._chains.get(view_name)
        if chain is None:
            return
        for key in chain.demanded():
            function, attrs = key
            try:
                if len(attrs) == 1:
                    session.compute(function, attrs[0])
                elif len(attrs) == 2:
                    session.compute_pair(function, attrs[0], attrs[1])
                else:
                    chain.drop_demand(key)
                    continue
            except ReproError:
                chain.drop_demand(key)
                continue
            self.tracer.add("mvcc.warm")

    @contextmanager
    def registry_write(
        self, sid: str, timeout_s: float | None = None
    ) -> Iterator[StatisticalDBMS]:
        """Serialize a registry-level mutation (create/publish/adopt/drop)."""
        with self.locks.exclusive(sid, REGISTRY_RESOURCE, timeout_s):
            yield self.dbms

    def registry_names(self, sid: str, timeout_s: float | None = None) -> list[str]:
        """Snapshot the registry's view names under the SHARED registry lock.

        Handshake/stats use this instead of reading ``registry.names()``
        bare, so the read cannot observe a registry mid-mutation
        (publish/adopt hold the EXCLUSIVE registry lock).
        """
        with self.locks.shared(sid, REGISTRY_RESOURCE, timeout_s):
            return self.dbms.registry.names()

    # -- quiesced checkpoints ----------------------------------------------

    @contextmanager
    def quiesce(self, sid: str, timeout_s: float | None = None) -> Iterator[None]:
        """Hold every lock (registry first, then views in sorted order).

        Sorted acquisition is a total lock order, so two quiescers cannot
        deadlock each other; the registry lock also blocks view
        creation/drop while the view list is being walked.  ``timeout_s``
        bounds *each* acquisition (``None`` means the lock manager's
        default) — a checkpoint triggered from a request handler passes
        the request's remaining deadline so it cannot outwait it.
        """
        held: list[str] = []
        try:
            self.locks.acquire(
                sid, REGISTRY_RESOURCE, LockMode.EXCLUSIVE, timeout_s
            )
            held.append(REGISTRY_RESOURCE)
            for name in sorted(self.dbms.registry.names()):
                # Same-class (view-lock) nesting is sanctioned here: the
                # sorted resource names are an explicit total order, so two
                # quiescers cannot meet in opposite directions.
                self.locks.acquire(  # repro-lint: disable=REPRO-C201
                    sid, name, LockMode.EXCLUSIVE, timeout_s
                )
                held.append(name)
            yield
        finally:
            for name in reversed(held):
                self.locks.release(sid, name)

    def checkpoint(
        self, sid: str = "__checkpoint__", timeout_s: float | None = None
    ) -> Any:
        """Quiesce the system and snapshot it atomically."""
        with self.quiesce(sid, timeout_s):
            with self.tracer.span("checkpoint.quiesced"):
                return self.dbms.checkpoint()

    def __repr__(self) -> str:
        with self._sessions_latch:
            cached = len(self._sessions)
        return f"TransactionCoordinator({cached} cached session(s), {self.locks!r})"
