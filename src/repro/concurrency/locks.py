"""Per-view reader/writer locks with deadlock detection and timeouts.

The paper's architecture is multi-analyst by construction — "we envision
several concrete views over a single raw database.  Each view is private to
a single user" (SS3.2) — but private *views* still share the Management
Database, published histories, and (in this reproduction) the per-view
Summary Database a wire server hands to many connections.  The
:class:`LockManager` is the single piece of code allowed to arbitrate that
sharing: every other module acquires locks through it (lint rule
REPRO-A109 forbids raw ``threading.Lock`` / ``asyncio.Lock`` construction
outside ``repro.concurrency`` and ``repro.server``).

Design:

* **Resources are names** (view names, plus reserved names like the
  registry), not objects — the manager never imports the things it guards.
* **Two modes.**  SHARED admits any number of readers; EXCLUSIVE admits one
  writer and nobody else.  Same-session re-acquisition is reentrant (a
  count per holder); a sole SHARED holder may upgrade to EXCLUSIVE in
  place.
* **Writer priority.**  A SHARED request blocks while an EXCLUSIVE request
  is queued on the same resource, so a stream of readers cannot starve a
  writer.
* **Deadlock detection** runs on the wait-for graph at every blocking
  acquisition: an edge runs from each waiting session to each current
  holder of the resource it wants (and, transitively, through holders that
  are themselves waiting).  A request that would close a cycle raises
  :class:`~repro.core.errors.DeadlockError` immediately — the requester is
  the victim and keeps everything it already held.
* **Timeouts.**  Every acquisition carries a deadline (default from the
  manager); expiry raises :class:`~repro.core.errors.LockTimeoutError`.

Counter names (charged to the injected tracer): ``lock.grant``,
``lock.wait``, ``lock.deadlock``, ``lock.timeout``, ``lock.wait_s``.
"""

from __future__ import annotations

import enum
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.concurrency.sanitizer import (
    LockOrderSanitizer,
    classify_resource,
    current_sanitizer,
)
from repro.core.errors import ConcurrencyError, DeadlockError, LockTimeoutError
from repro.obs.tracer import NULL_TRACER, AbstractTracer


class LockMode(enum.Enum):
    """How a session wants to hold a resource."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _Hold:
    """One session's (reentrant) hold on one resource.

    ``upgraded_at`` remembers the acquisition level at which a sole-holder
    SHARED->EXCLUSIVE upgrade happened, so releasing back below that level
    downgrades the hold to SHARED again — the outer scopes only ever asked
    for a read lock, and other readers must not stay blocked on them.
    """

    mode: LockMode
    count: int
    upgraded_at: int | None = None


@dataclass
class _ResourceLock:
    """One resource's holder table."""

    holders: dict[str, _Hold] = field(default_factory=dict)

    def mode_of(self, session: str) -> LockMode | None:
        held = self.holders.get(session)
        return held.mode if held else None

    @property
    def exclusive_holder(self) -> str | None:
        for session, hold in self.holders.items():
            if hold.mode is LockMode.EXCLUSIVE:
                return session
        return None


class LockManager:
    """Reader/writer locks over named resources, for analyst sessions.

    Parameters
    ----------
    timeout_s:
        Default acquisition timeout; ``acquire`` may override per call.
    tracer:
        Counter sink (``lock.*``).  Injected, never constructed here
        (REPRO-A107 discipline applies to this module too).
    sanitizer:
        Optional :class:`~repro.concurrency.sanitizer.LockOrderSanitizer`
        notified on every grant/release.  Defaults to whatever
        :func:`~repro.concurrency.sanitizer.current_sanitizer` says at
        construction time — ``None`` in production, so the per-grant cost
        is a single branch.
    """

    def __init__(
        self,
        timeout_s: float = 10.0,
        tracer: AbstractTracer | None = None,
        sanitizer: LockOrderSanitizer | None = None,
    ) -> None:
        self.timeout_s = timeout_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._sanitizer = sanitizer if sanitizer is not None else current_sanitizer()
        self._mutex = threading.Lock()
        self._granted = threading.Condition(self._mutex)
        self._locks: dict[str, _ResourceLock] = {}
        #: session -> (resource, mode) it is currently blocked on.
        self._waits: dict[str, tuple[str, LockMode]] = {}

    # -- acquisition -------------------------------------------------------

    def acquire(
        self,
        session: str,
        resource: str,
        mode: LockMode,
        timeout_s: float | None = None,
    ) -> None:
        """Block until ``session`` holds ``resource`` in ``mode``.

        Raises :class:`DeadlockError` when granting would require waiting
        on a cycle, :class:`LockTimeoutError` on deadline expiry, and
        :class:`ConcurrencyError` on an unsupported upgrade (a shared
        holder upgrading while other holders remain *waits*; two such
        upgraders deadlock and one is chosen as victim).
        """
        deadline = time.monotonic() + (
            self.timeout_s if timeout_s is None else timeout_s
        )
        waited = False
        start = time.monotonic()
        with self._granted:
            while True:
                # Re-fetched every iteration: release() drops a resource's
                # entry when its last holder leaves, so a woken waiter must
                # not grant itself on a stale _ResourceLock object.
                lock = self._locks.setdefault(resource, _ResourceLock())
                if self._grantable(lock, session, resource, mode):
                    self._grant(lock, session, mode)
                    self._waits.pop(session, None)
                    self.tracer.add("lock.grant")
                    if waited:
                        self.tracer.add("lock.wait_s", time.monotonic() - start)
                    break  # notify the sanitizer outside the mutex
                if not waited:
                    waited = True
                    self.tracer.add("lock.wait")
                self._waits[session] = (resource, mode)
                victim_cycle = self._find_cycle(session)
                if victim_cycle:
                    self._waits.pop(session, None)
                    self._granted.notify_all()
                    self.tracer.add("lock.deadlock")
                    raise DeadlockError(
                        f"session {session!r} waiting for {mode.value} on "
                        f"{resource!r} closes a wait-for cycle: "
                        f"{' -> '.join(victim_cycle)}"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._granted.wait(remaining):
                    self._waits.pop(session, None)
                    self._granted.notify_all()
                    self.tracer.add("lock.timeout")
                    raise LockTimeoutError(
                        f"session {session!r} timed out waiting for "
                        f"{mode.value} lock on {resource!r} "
                        f"(held by {sorted(lock.holders)})"
                    )
        if self._sanitizer is not None:
            self._sanitizer.note_acquire(
                f"res:{resource}", classify_resource(resource)
            )

    def release(self, session: str, resource: str) -> None:
        """Release one level of ``session``'s hold on ``resource``."""
        with self._granted:
            lock = self._locks.get(resource)
            held = lock.holders.get(session) if lock else None
            if lock is None or held is None:
                raise ConcurrencyError(
                    f"session {session!r} does not hold {resource!r}"
                )
            if held.count > 1:
                held.count -= 1
                if held.upgraded_at is not None and held.count < held.upgraded_at:
                    # The exclusive scope is gone; the remaining outer
                    # holds were acquired SHARED, so downgrade in place
                    # and let blocked readers back in.
                    held.mode = LockMode.SHARED
                    held.upgraded_at = None
            else:
                del lock.holders[session]
                if not lock.holders:
                    del self._locks[resource]
            self._granted.notify_all()
        if self._sanitizer is not None:
            self._sanitizer.note_release(f"res:{resource}")

    def release_all(self, session: str) -> int:
        """Drop every lock ``session`` holds (connection teardown).

        Returns the number of resources released.  Also clears any wait
        registration the session left behind (a thread killed mid-wait).
        """
        released = 0
        dropped: list[str] = []
        with self._granted:
            self._waits.pop(session, None)
            for resource in list(self._locks):
                lock = self._locks[resource]
                if session in lock.holders:
                    del lock.holders[session]
                    released += 1
                    dropped.append(resource)
                    if not lock.holders:
                        del self._locks[resource]
            if released:
                self._granted.notify_all()
        if self._sanitizer is not None:
            # Usually a foreign-thread teardown; note_release tolerates
            # releasing keys this thread never acquired.
            for resource in dropped:
                self._sanitizer.note_release(f"res:{resource}")
        return released

    @contextmanager
    def shared(
        self, session: str, resource: str, timeout_s: float | None = None
    ) -> Iterator[None]:
        """``with locks.shared(sid, view):`` — scoped read lock."""
        self.acquire(session, resource, LockMode.SHARED, timeout_s)
        try:
            yield
        finally:
            self.release(session, resource)

    @contextmanager
    def exclusive(
        self, session: str, resource: str, timeout_s: float | None = None
    ) -> Iterator[None]:
        """``with locks.exclusive(sid, view):`` — scoped write lock."""
        self.acquire(session, resource, LockMode.EXCLUSIVE, timeout_s)
        try:
            yield
        finally:
            self.release(session, resource)

    # -- introspection -----------------------------------------------------

    def holders(self, resource: str) -> dict[str, LockMode]:
        """Who currently holds ``resource`` (empty when free)."""
        with self._mutex:
            lock = self._locks.get(resource)
            if lock is None:
                return {}
            return {s: hold.mode for s, hold in lock.holders.items()}

    def held_by(self, session: str) -> list[str]:
        """Resources ``session`` currently holds, sorted."""
        with self._mutex:
            return sorted(
                resource
                for resource, lock in self._locks.items()
                if session in lock.holders
            )

    def __repr__(self) -> str:
        with self._mutex:
            return (
                f"LockManager({len(self._locks)} locked resource(s), "
                f"{len(self._waits)} waiter(s))"
            )

    # -- internals (call with self._mutex held) ----------------------------

    def _grantable(
        self, lock: _ResourceLock, session: str, resource: str, mode: LockMode
    ) -> bool:
        held = lock.mode_of(session)
        if mode is LockMode.SHARED:
            if held is not None:
                return True  # reentrant (EXCLUSIVE covers SHARED)
            exclusive = lock.exclusive_holder
            if exclusive is not None:
                return False
            # Writer priority: queued EXCLUSIVE waiters block new readers.
            return not self._exclusive_waiter(resource, session)
        # EXCLUSIVE
        if held is LockMode.EXCLUSIVE:
            return True  # reentrant
        others = [s for s in lock.holders if s != session]
        return not others  # free, or a sole-holder upgrade

    def _grant(self, lock: _ResourceLock, session: str, mode: LockMode) -> None:
        held = lock.holders.get(session)
        if held is None:
            lock.holders[session] = _Hold(mode, 1)
        elif mode is LockMode.EXCLUSIVE and held.mode is LockMode.SHARED:
            # Sole-holder upgrade: the hold becomes exclusive in place,
            # remembering the level so release() can downgrade it back.
            held.count += 1
            held.mode = LockMode.EXCLUSIVE
            held.upgraded_at = held.count
        else:
            held.count += 1

    def _exclusive_waiter(self, resource: str, exclude: str) -> bool:
        return any(
            wanted == resource and mode is LockMode.EXCLUSIVE
            for waiter, (wanted, mode) in self._waits.items()
            if waiter != exclude
        )

    def _find_cycle(self, start: str) -> list[str]:
        """A wait-for cycle through ``start``, or [] when none exists.

        Edges: a waiting session points at every *other* current holder of
        the resource it wants; holders that are themselves waiting extend
        the walk.  Returns the session names along the cycle for the error
        message.
        """
        path: list[str] = []
        seen: set[str] = set()

        def walk(session: str) -> list[str]:
            if session in seen:
                return []
            seen.add(session)
            waiting_on = self._waits.get(session)
            if waiting_on is None:
                return []
            resource, _ = waiting_on
            lock = self._locks.get(resource)
            if lock is None:
                return []
            path.append(session)
            for holder in lock.holders:
                if holder == session:
                    continue
                if holder == start:
                    return path + [holder]
                cycle = walk(holder)
                if cycle:
                    return cycle
            path.pop()
            return []

        return walk(start)
