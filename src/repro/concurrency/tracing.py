"""Thread-aware tracing and latch construction for the service layer.

Two small pieces that exist here — and only here — because lint rule
REPRO-A109 confines lock construction to ``repro.concurrency`` and
``repro.server``:

* :class:`ConcurrentTracer` — a :class:`~repro.obs.tracer.Tracer` whose
  open-span stack is per-thread, so worker-pool requests each build their
  own span chains; roots and tracer-level counters are latched.
* :func:`make_latch` — hands out a plain mutex for injection into
  structures that *hold* a latch but must not construct one (e.g.
  :attr:`repro.summary.summarydb.SummaryDatabase.latch`).
"""

from __future__ import annotations

import threading
from typing import ContextManager

from repro.concurrency.sanitizer import SanitizedLatch, current_sanitizer
from repro.obs.tracer import Span, Tracer


def make_latch(name: str | None = None) -> ContextManager[object]:
    """A fresh mutex for injection into latch-holding structures.

    ``name`` identifies the latch to an installed
    :class:`~repro.concurrency.sanitizer.LockOrderSanitizer` (use the
    static analyzer's key form, ``Class.attr``); unnamed latches — and
    all latches when no sanitizer is installed — stay plain mutexes.
    """
    sanitizer = current_sanitizer()
    if sanitizer is not None and name is not None:
        return SanitizedLatch(name, sanitizer)
    return threading.Lock()


class ConcurrentTracer(Tracer):
    """A recording tracer safe for multi-threaded request execution.

    Each thread gets its own open-span stack (so a span opened by one
    worker never becomes the parent of another worker's span), while the
    shared structures — the root list and the tracer-level counters — are
    guarded by a mutex.  Finished spans are only *read* after their
    threads complete, so per-span counter writes need no locking.
    """

    def __init__(self) -> None:
        super().__init__()
        self._local = threading.local()
        self._latch = make_latch("ConcurrentTracer._latch")

    def _current_stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _link_root(self, span: Span) -> None:
        with self._latch:
            self.roots.append(span)

    def add(self, counter: str, value: float = 1) -> None:
        stack = self._current_stack()
        if stack:
            stack[-1].add(counter, value)
        else:
            with self._latch:
                self.counters[counter] = self.counters.get(counter, 0) + value

    def reset(self) -> None:
        """Drop recorded spans/counters (this thread must have none open)."""
        with self._latch:
            if self._current_stack():
                raise_open = [s.name for s in self._current_stack()]
                from repro.core.errors import ObsError

                raise ObsError(f"cannot reset with open spans: {raise_open}")
            self.roots = []
            self.counters = {}
