"""Runtime lock-order sanitizer: the dynamic half of the C2xx analysis.

The static analyzer (:mod:`repro.lint.concurrency`) predicts a lock-order
graph from source; this module *observes* the real one.  A
:class:`LockOrderSanitizer`, once installed, is notified by the
:class:`~repro.concurrency.locks.LockManager` and by every named
:func:`~repro.concurrency.tracing.make_latch` latch on each successful
acquisition and release.  It keeps per-thread hold stacks (reentrancy
counted, never double-edged) and accumulates:

* **raw edges** — ``resource A was held by this thread when it acquired
  resource B``, at real resource granularity (``res:census``,
  ``latch:SummaryDatabase.latch``);
* **class edges** — the same edges normalized to the static analyzer's
  key space (every concrete view collapses to ``lock:<view>``), so the
  two graphs can be compared;
* **coverage frames** — ``(file basename, function name)`` pairs from the
  acquisition stacks, matched against the static model's
  :meth:`~repro.lint.concurrency.ConcurrencyModel.instrumented_sites`.

Reports:

* :meth:`LockOrderSanitizer.inversions` — raw edge pairs observed in
  *both* directions: a real deadlock candidate even if no deadlock fired
  during the run.
* :meth:`LockOrderSanitizer.static_violations` — observed class edges
  whose reverse is reachable in the static graph's transitive closure:
  runtime behaviour contradicting the predicted order.
* :meth:`LockOrderSanitizer.coverage` — which statically-extracted
  acquisition sites the run actually exercised.

Zero-overhead default (REPRO-A107 discipline): nothing is installed
unless a test calls :func:`install_sanitizer`; the lock manager's only
cost is then one ``is None`` branch per acquisition, and ``make_latch``
keeps returning plain mutexes.  Install *before* constructing the server
stack — latches consult :func:`current_sanitizer` at construction time.

Cross-thread releases (``release_all`` from a teardown executor against
locks a worker thread acquired) are tolerated: a release of a key this
thread does not hold is a no-op for the hold stack, so stacks never
underflow — at worst a killed thread's stale hold stops generating edges
when its thread dies.
"""

from __future__ import annotations

import sys
import threading
from types import TracebackType
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (lint model)
    from repro.lint.concurrency import LockSite

#: Frames never useful for site coverage: the notification plumbing itself.
_PLUMBING_FILES = frozenset({"sanitizer.py"})

#: How deep an acquisition stack is walked for coverage frames.
_STACK_DEPTH = 20


def classify_resource(resource: str) -> str:
    """A lock-manager resource name as a static-analyzer class key.

    Reserved resources (``__registry__``-style dunder names) keep their
    identity; every concrete view name collapses to ``lock:<view>``,
    matching how the static analyzer keys dynamically-named resources.
    """
    if resource.startswith("__") and resource.endswith("__"):
        return f"lock:{resource}"
    return "lock:<view>"


class LockOrderSanitizer:
    """Records actual lock acquisition order and stacks, per thread."""

    def __init__(self) -> None:
        self._latch = threading.Lock()  # guards the shared aggregates
        self._local = threading.local()
        #: raw edge -> corresponding class edge
        self._edges: dict[tuple[str, str], tuple[str, str]] = {}
        #: raw key -> class key, for every key ever acquired
        self._keys: dict[str, str] = {}
        #: (file basename, function name) pairs seen in acquisition stacks
        self._frames: set[tuple[str, str]] = set()
        self.acquisitions = 0

    # -- notification hooks (hot path) -------------------------------------

    def note_acquire(self, raw_key: str, class_key: str) -> None:
        """One successful acquisition by the current thread."""
        held, counts = self._thread_state()
        frames = self._capture_frames()
        with self._latch:
            self.acquisitions += 1
            self._keys.setdefault(raw_key, class_key)
            self._frames.update(frames)
            if counts.get(raw_key, 0) == 0:
                # First (non-reentrant) acquisition: every distinct key
                # already held orders before this one.
                for prior in held:
                    if prior != raw_key:
                        self._edges.setdefault(
                            (prior, raw_key),
                            (self._keys.get(prior, prior), class_key),
                        )
        if counts.get(raw_key, 0) == 0:
            held.append(raw_key)
        counts[raw_key] = counts.get(raw_key, 0) + 1

    def note_release(self, raw_key: str) -> None:
        """One release by the current thread; foreign keys are ignored."""
        held, counts = self._thread_state()
        count = counts.get(raw_key, 0)
        if count == 0:
            return  # released by another thread (release_all teardown)
        if count == 1:
            del counts[raw_key]
            # Remove the most recent occurrence; hold stacks are small.
            for i in range(len(held) - 1, -1, -1):
                if held[i] == raw_key:
                    del held[i]
                    break
        else:
            counts[raw_key] = count - 1

    def _thread_state(self) -> tuple[list[str], dict[str, int]]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = []
            self._local.held = held
            self._local.counts = {}
        return held, self._local.counts

    def _capture_frames(self) -> list[tuple[str, str]]:
        frames: list[tuple[str, str]] = []
        frame = sys._getframe(2)  # skip note_acquire + its caller shim
        depth = 0
        while frame is not None and depth < _STACK_DEPTH:
            code = frame.f_code
            basename = code.co_filename.rsplit("/", 1)[-1]
            if basename not in _PLUMBING_FILES:
                frames.append((basename, code.co_name))
            frame = frame.f_back
            depth += 1
        return frames

    # -- reports (cold path) ------------------------------------------------

    def observed_edges(self) -> set[tuple[str, str]]:
        """Raw resource-granularity order edges seen this run."""
        with self._latch:
            return set(self._edges)

    def class_edges(self) -> set[tuple[str, str]]:
        """Observed edges in the static analyzer's key space."""
        with self._latch:
            return set(self._edges.values())

    def observed_keys(self) -> dict[str, str]:
        """Every raw key acquired at least once, with its class key."""
        with self._latch:
            return dict(self._keys)

    def inversions(self) -> list[tuple[str, str]]:
        """Raw edges observed in both directions (deadlock candidates).

        Each inverted pair is reported once, ordered lexicographically.
        """
        edges = self.observed_edges()
        return sorted(
            (a, b) for (a, b) in edges if a < b and (b, a) in edges
        )

    def static_violations(
        self, static_edges: Iterable[tuple[str, str]]
    ) -> list[tuple[str, str]]:
        """Observed class edges whose reverse the static graph implies.

        An observed ``A -> B`` violates the static model when ``B`` can
        reach ``A`` through static edges — runtime took an order the
        analysis proved (transitively) to run the other way.  Same-class
        self-edges are excluded: the static model sanctions them only
        under an explicit total order, which raw-edge :meth:`inversions`
        checks at real resource granularity instead.
        """
        closure = _transitive_closure(set(static_edges))
        violations = []
        for a, b in sorted(self.class_edges()):
            if a != b and (b, a) in closure:
                violations.append((a, b))
        return violations

    def coverage(
        self, sites: Iterable["LockSite"]
    ) -> tuple[list["LockSite"], list["LockSite"]]:
        """Split static sites into (exercised, unexercised) by this run.

        A site counts as exercised when any acquisition stack passed
        through its file and function — line-exact matching would be
        defeated by decorators and contextmanager rewrapping.
        """
        with self._latch:
            frames = set(self._frames)
        hit: list[LockSite] = []
        missed: list[LockSite] = []
        for site in sites:
            basename = site.path.replace("\\", "/").rsplit("/", 1)[-1]
            function = site.function.rsplit(".", 1)[-1]
            if (basename, function) in frames:
                hit.append(site)
            else:
                missed.append(site)
        return hit, missed


def _transitive_closure(edges: set[tuple[str, str]]) -> set[tuple[str, str]]:
    reach: dict[str, set[str]] = {}
    for a, b in edges:
        reach.setdefault(a, set()).add(b)
        reach.setdefault(b, set())
    changed = True
    while changed:
        changed = False
        for node, direct in reach.items():
            expanded = set(direct)
            for nxt in direct:
                expanded |= reach.get(nxt, set())
            if expanded != direct:
                reach[node] = expanded
                changed = True
    return {(a, b) for a, targets in reach.items() for b in targets}


class SanitizedLatch:
    """A named mutex that reports its acquisitions to a sanitizer.

    Drop-in for the plain :class:`threading.Lock` handed out by
    :func:`~repro.concurrency.tracing.make_latch`: supports both the
    context-manager protocol and explicit ``acquire``/``release``.
    """

    __slots__ = ("name", "_lock", "_sanitizer")

    def __init__(self, name: str, sanitizer: LockOrderSanitizer) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._sanitizer = sanitizer

    @property
    def key(self) -> str:
        return f"latch:{self.name}"

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._sanitizer.note_acquire(self.key, self.key)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._sanitizer.note_release(self.key)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "SanitizedLatch":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"SanitizedLatch({self.name!r})"


_ACTIVE: LockOrderSanitizer | None = None


def install_sanitizer(
    sanitizer: LockOrderSanitizer | None,
) -> LockOrderSanitizer | None:
    """Make ``sanitizer`` the process-wide active one (``None`` uninstalls).

    Install *before* constructing lock managers and latches: both consult
    :func:`current_sanitizer` at construction time, so the no-sanitizer
    default stays zero-overhead.
    """
    global _ACTIVE
    _ACTIVE = sanitizer
    return sanitizer


def current_sanitizer() -> LockOrderSanitizer | None:
    """The installed sanitizer, or ``None`` (the production default)."""
    return _ACTIVE
