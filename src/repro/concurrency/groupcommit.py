"""Group commit: many sessions' transactions, one fsync.

The WAL's durability point is the fsync after each transaction's commit
frame.  With N concurrent analysts that is N fsyncs for N commits — and
fsync dominates small-transaction latency.  Group commit is the classic
fix: a committing session enqueues its frames as a *ticket* and one
session (the **leader**) drains every ticket queued so far, appends all
their frames back-to-back, and pays a single fsync for the whole batch.
Followers just wait on their ticket.

Correctness notes:

* Only the leader touches the WAL, so frame interleaving is impossible —
  each transaction's begin/op/commit frames stay contiguous in the log.
* A ticket is only marked done *after* the sync that covered it, so a
  session returning from :meth:`commit` has the same guarantee the
  unbatched path gave: its commit frame is on disk.
* An append/sync failure (e.g. an injected fault) is propagated to every
  ticket in the failed batch — all of them were promised durability by
  that sync.

**Early lock release.**  :meth:`commit` is really two steps —
:meth:`stage` (enqueue the ticket; cheap, establishes WAL order) and
:meth:`wait` (block until a sync covered it).  A writer that stages
while holding its view's EXCLUSIVE lock but waits *after* releasing it
keeps the fsync off the lock hold entirely: the next writer's
transaction overlaps this one's sync, so same-view writers — which the
per-view lock otherwise serializes into batches of one — finally share
fsyncs.  WAL order still matches publication order because staging
happens under the lock.

Counters: ``wal.group_commit.batches`` (one per leader drain) and
``wal.group_commit.txns`` (tickets per drain, so txns/batches is the
achieved batching factor).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.concurrency.tracing import make_latch
from repro.durability.wal import WriteAheadLog
from repro.obs.tracer import NULL_TRACER, AbstractTracer


class _Ticket:
    """One session's pending commit."""

    __slots__ = ("frames", "done", "error")

    def __init__(self, frames: list[dict]) -> None:
        self.frames = frames
        self.done = threading.Event()
        self.error: BaseException | None = None


class GroupCommitter:
    """Batches concurrent WAL transactions into shared fsyncs.

    Install on a :class:`~repro.durability.manager.DurabilityManager` as
    ``manager.group_commit = GroupCommitter(manager.wal)``; the manager
    then routes every transaction's frames through :meth:`commit`.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        tracer: AbstractTracer | None = None,
    ) -> None:
        self.wal = wal
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._queue_latch = make_latch("GroupCommitter._queue_latch")
        self._pending: list[_Ticket] = []
        self._leader = make_latch("GroupCommitter._leader")

    def stage(self, frames: list[dict]) -> _Ticket:
        """Enqueue one transaction's frames; their WAL position is now
        fixed by queue order, but nothing is durable until a sync covers
        the returned ticket (:meth:`wait`)."""
        ticket = _Ticket(frames)
        with self._queue_latch:
            self._pending.append(ticket)
        return ticket

    def commit(self, frames: list[dict]) -> None:
        """Make one transaction's frames durable (possibly batched).

        Blocks until a sync covering the frames has completed; raises
        whatever the WAL raised if that sync failed.
        """
        self.wait(self.stage(frames))

    def wait(self, ticket: _Ticket) -> None:
        """Block until a sync covered ``ticket``; raise its sync error."""
        while not ticket.done.is_set():
            # Whoever gets the leader mutex drains the queue; everyone
            # else blocks here and finds their ticket done when the
            # leader that included it finishes.
            with self._leader:
                if ticket.done.is_set():
                    break
                self._drain()
        if ticket.error is not None:
            raise ticket.error

    def _drain(self) -> None:
        """Leader body: flush every queued ticket with one sync."""
        with self._queue_latch:
            batch = self._pending
            self._pending = []
        if not batch:
            return
        error: BaseException | None = None
        try:
            all_frames: list[dict] = []
            for ticket in batch:
                all_frames.extend(ticket.frames)
            self.wal.append_many(all_frames, sync=True)
        except BaseException as exc:  # propagate to every promised ticket
            error = exc
        self.tracer.add("wal.group_commit.batches")
        self.tracer.add("wal.group_commit.txns", len(batch))
        for ticket in batch:
            ticket.error = error
            ticket.done.set()

    def __repr__(self) -> str:
        with self._queue_latch:
            return f"GroupCommitter({len(self._pending)} pending)"


def install(manager: Any, tracer: AbstractTracer | None = None) -> GroupCommitter:
    """Attach a fresh committer to a durability manager and return it."""
    committer = GroupCommitter(manager.wal, tracer=tracer)
    manager.group_commit = committer
    return committer
