"""Code books: decoding encoded category values (paper Figure 2).

"In order to reduce storage space, data values, such as age in Figure 1,
are frequently encoded.  Thus, a table such as that found in Figure 2 must
be used to interpret the values" (SS2.1).  A :class:`CodeBook` maps small
integer codes to labels, converts to a relation so decoding is a join
(SS2.4), and detects the cross-edition inconsistencies the paper warns
about ("different code values are used, for example in the 1970 and 1980
census").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import CodebookError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, AttributeRole, Schema
from repro.relational.types import DataType, is_na


@dataclass(frozen=True)
class CodeConflict:
    """One discrepancy between two code book editions."""

    code: int
    kind: str  # "relabeled" | "only_in_first" | "only_in_second"
    first_label: str | None
    second_label: str | None


class CodeBook:
    """An edition of one attribute's code -> label mapping."""

    def __init__(self, name: str, mapping: dict[int, str], edition: str = "1") -> None:
        if not mapping:
            raise CodebookError(f"code book {name!r} has no codes")
        for code, label in mapping.items():
            if not isinstance(code, int):
                raise CodebookError(f"code {code!r} is not an integer")
            if not isinstance(label, str) or not label:
                raise CodebookError(f"label {label!r} for code {code} is invalid")
        self.name = name
        self.mapping = dict(mapping)
        self.edition = edition
        self._reverse = {label: code for code, label in mapping.items()}
        if len(self._reverse) != len(mapping):
            raise CodebookError(f"code book {name!r} has duplicate labels")

    # -- decode/encode --------------------------------------------------------

    def decode(self, code: int) -> str:
        """Label for one code."""
        if is_na(code):
            raise CodebookError("cannot decode NA")
        try:
            return self.mapping[code]
        except KeyError:
            raise CodebookError(
                f"code {code} not in code book {self.name!r} "
                f"(edition {self.edition})"
            ) from None

    def encode(self, label: str) -> int:
        """Code for one label."""
        try:
            return self._reverse[label]
        except KeyError:
            raise CodebookError(
                f"label {label!r} not in code book {self.name!r}"
            ) from None

    def decode_column(self, codes: Iterable[int]) -> list[str]:
        """Decode a whole column (the manual 'look up' the paper derides)."""
        return [self.decode(code) for code in codes]

    def __len__(self) -> int:
        return len(self.mapping)

    def __repr__(self) -> str:
        return f"CodeBook({self.name!r}, edition={self.edition!r}, {len(self)} codes)"

    # -- relational form ---------------------------------------------------------

    def to_relation(self, code_attr: str = "CATEGORY", label_attr: str = "VALUE") -> Relation:
        """The Figure 2 relation, ready to join against the data set."""
        schema = Schema(
            [
                Attribute(code_attr, DataType.CATEGORY, AttributeRole.CATEGORY),
                Attribute(label_attr, DataType.STR, AttributeRole.MEASURE),
            ]
        )
        rows = sorted(self.mapping.items())
        return Relation(f"codebook_{self.name}_{self.edition}", schema, rows)


def detect_inconsistencies(first: CodeBook, second: CodeBook) -> list[CodeConflict]:
    """Conflicts between two editions of the same code book.

    The 1970-vs-1980-census problem: the same code meaning different
    things, or codes present in only one edition.
    """
    if first.name != second.name:
        raise CodebookError(
            f"comparing different code books: {first.name!r} vs {second.name!r}"
        )
    conflicts: list[CodeConflict] = []
    for code in sorted(set(first.mapping) | set(second.mapping)):
        a = first.mapping.get(code)
        b = second.mapping.get(code)
        if a is None:
            conflicts.append(CodeConflict(code, "only_in_second", None, b))
        elif b is None:
            conflicts.append(CodeConflict(code, "only_in_first", a, None))
        elif a != b:
            conflicts.append(CodeConflict(code, "relabeled", a, b))
    return conflicts


class CodeBookRegistry:
    """All code books known to the Management Database, by name+edition."""

    def __init__(self) -> None:
        self._books: dict[tuple[str, str], CodeBook] = {}

    def register(self, book: CodeBook) -> None:
        """Add one edition."""
        key = (book.name, book.edition)
        if key in self._books:
            raise CodebookError(
                f"code book {book.name!r} edition {book.edition!r} already registered"
            )
        self._books[key] = book

    def get(self, name: str, edition: str | None = None) -> CodeBook:
        """Fetch an edition (latest by string comparison when omitted)."""
        if edition is not None:
            try:
                return self._books[(name, edition)]
            except KeyError:
                raise CodebookError(
                    f"no code book {name!r} edition {edition!r}"
                ) from None
        editions = [key for key in self._books if key[0] == name]
        if not editions:
            raise CodebookError(f"no code book {name!r}")
        return self._books[max(editions)]

    def editions_of(self, name: str) -> list[str]:
        """All registered editions of a code book."""
        return sorted(e for n, e in self._books if n == name)

    def names(self) -> list[str]:
        """Distinct code book names."""
        return sorted({n for n, _ in self._books})
