"""Update rules for cached results (the Management Database's rule store).

"In addition to rules defining how a function is to be recomputed we
propose to store rules that describe how derived data is to be updated"
(SS3.2).  A rule says what happens to one Summary Database entry when the
attribute it summarizes changes:

* :class:`IncrementalRule` — apply the finite-differencing delta to the
  entry's live maintainer (SS4.2);
* :class:`RegenerateRule` — recompute from the data immediately;
* :class:`InvalidateRule` — the SS4.3 fallback: "after each update
  operation all the values associated with the updated attribute will be
  marked as invalid.  When required they will be regenerated using the
  original algorithm."

:class:`RuleRepository` wires function names to rule kinds, defaulting to
incremental where the registry offers a maintainer and invalidation
otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.errors import RuleError
from repro.incremental.differencing import Delta
from repro.metadata.functions import FunctionRegistry, StatFunction

if TYPE_CHECKING:  # runtime import would cycle through repro.summary
    from repro.summary.entries import SummaryEntry

#: Zero-argument provider of an attribute's current values.
ValuesProvider = Callable[[], Iterable[Any]]


class RuleKind(enum.Enum):
    """How a cached result reacts to an update of its inputs."""

    INCREMENTAL = "incremental"
    REGENERATE = "regenerate"
    INVALIDATE = "invalidate"


@dataclass
class RuleOutcome:
    """What applying a rule to one entry actually did."""

    kind: RuleKind
    recomputed: bool = False
    incremental_changes: int = 0
    marked_stale: bool = False


class UpdateRule:
    """Base class: reaction of one cached entry to a delta."""

    kind: RuleKind

    def apply(self, entry: "SummaryEntry", delta: Delta, values_provider: ValuesProvider) -> RuleOutcome:
        """Bring ``entry`` in line with ``delta`` (or mark it stale)."""
        raise NotImplementedError


class IncrementalRule(UpdateRule):
    """Maintain via the entry's live incremental computation."""

    kind = RuleKind.INCREMENTAL

    def __init__(self, function: StatFunction) -> None:
        if not function.is_incremental:
            raise RuleError(
                f"function {function.name!r} has no incremental form; "
                "use RegenerateRule or InvalidateRule"
            )
        self.function = function

    def apply(self, entry: "SummaryEntry", delta: Delta, values_provider: ValuesProvider) -> RuleOutcome:
        if entry.maintainer is None:
            # make_maintainer returns an initialized (or lazily
            # self-initializing) computation reflecting the *current* data,
            # which already includes this delta — do not apply it twice.
            entry.maintainer = self.function.make_maintainer(values_provider)
            entry.result = entry.maintainer.value
            entry.stale = False
            return RuleOutcome(kind=self.kind, recomputed=True)
        # Route through apply_batch so maintainers with true batch math
        # (sums, counts, moments) use it even for a single coalesced delta.
        entry.maintainer.apply_batch((delta,))
        entry.result = entry.maintainer.value
        entry.stale = False
        return RuleOutcome(kind=self.kind, incremental_changes=delta.size)


class RegenerateRule(UpdateRule):
    """Recompute the result from the data immediately."""

    kind = RuleKind.REGENERATE

    def __init__(self, function: StatFunction) -> None:
        self.function = function

    def apply(self, entry: "SummaryEntry", delta: Delta, values_provider: ValuesProvider) -> RuleOutcome:
        entry.result = self.function.compute(list(values_provider()))
        entry.stale = False
        return RuleOutcome(kind=self.kind, recomputed=True)


class InvalidateRule(UpdateRule):
    """Mark the entry stale; recomputation happens lazily on next lookup."""

    kind = RuleKind.INVALIDATE

    def __init__(self, function: StatFunction) -> None:
        self.function = function

    def apply(self, entry: "SummaryEntry", delta: Delta, values_provider: ValuesProvider) -> RuleOutcome:
        entry.stale = True
        return RuleOutcome(kind=self.kind, marked_stale=True)


class RuleRepository:
    """function name -> rule, with sensible defaults.

    The default wiring realizes the paper's architecture: functions with an
    incremental form (including the median's manual window scheme) get
    :class:`IncrementalRule`; everything else gets :class:`InvalidateRule`
    (the SS4.3 fallback).  ``force_mode`` overrides everything — benchmark
    E9 uses it to compare the three designs.
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        force_mode: RuleKind | None = None,
    ) -> None:
        self.registry = registry
        self.force_mode = force_mode
        self._overrides: dict[str, RuleKind] = {}

    def set_rule(self, function_name: str, kind: RuleKind) -> None:
        """Pin a specific rule kind for one function."""
        self.registry.get(function_name)  # validate
        self._overrides[function_name] = kind

    def rule_for(self, function_name: str) -> UpdateRule:
        """The rule governing entries of this function."""
        function = self.registry.get(function_name)
        kind = self.force_mode or self._overrides.get(function_name)
        if kind is None:
            kind = (
                RuleKind.INCREMENTAL
                if function.is_incremental
                else RuleKind.INVALIDATE
            )
        if kind is RuleKind.INCREMENTAL:
            if not function.is_incremental:
                # Forcing incremental on a non-differencable function falls
                # back to regeneration (the paper's alternative).
                return RegenerateRule(function)
            return IncrementalRule(function)
        if kind is RuleKind.REGENERATE:
            return RegenerateRule(function)
        return InvalidateRule(function)

    def describe(self) -> dict[str, str]:
        """function -> rule-kind table (what the Management DB would list)."""
        return {
            name: self.rule_for(name).kind.value for name in self.registry.names()
        }
