"""Meta-data layer: function registry, update rules, code books, SUBJECT

navigation, and the Management Database that ties them together (SS3.2)."""

from repro.metadata.codebook import (
    CodeBook,
    CodeBookRegistry,
    CodeConflict,
    detect_inconsistencies,
)
from repro.metadata.functions import FunctionRegistry, ResultKind, StatFunction
from repro.metadata.management import ManagementDatabase
from repro.metadata.rules import (
    IncrementalRule,
    InvalidateRule,
    RegenerateRule,
    RuleKind,
    RuleOutcome,
    RuleRepository,
    UpdateRule,
)
from repro.metadata.subject import ROOT, MetaGraph, NavigationSession, ViewRequest

__all__ = [
    "CodeBook",
    "CodeBookRegistry",
    "CodeConflict",
    "FunctionRegistry",
    "IncrementalRule",
    "InvalidateRule",
    "ManagementDatabase",
    "MetaGraph",
    "NavigationSession",
    "RegenerateRule",
    "ResultKind",
    "ROOT",
    "RuleKind",
    "RuleOutcome",
    "RuleRepository",
    "StatFunction",
    "UpdateRule",
    "ViewRequest",
    "detect_inconsistencies",
]
