"""The statistical function registry.

The Management Database holds "the functions that are applied to [the
data]" (SS3.2).  A :class:`StatFunction` descriptor records how to compute
a function over a column, what kind of result it produces (the Summary
Database stores "results of significantly different types"), whether an
incremental form exists (and how to build it), and which attribute roles it
is meaningful for — "computing the median (or any summary values) of the
AGE_GROUP attribute in Figure 1 does not make sense.  Thus, the system will
have to rely on meta-data to decide for which attributes summary
information should be computed" (SS3.2).

Parameterized quantiles resolve dynamically: ``quantile_95`` is the 95th
percentile, with a :class:`repro.incremental.order_stats.QuantileWindow`
maintainer.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import FunctionError
from repro.incremental.aggregates import (
    IncrementalCount,
    IncrementalMax,
    IncrementalMean,
    IncrementalMin,
    IncrementalStd,
    IncrementalSum,
    IncrementalVariance,
)
from repro.incremental.differencing import IncrementalComputation
from repro.incremental.frequency import IncrementalFrequency
from repro.incremental.histogram import MaintainedHistogram
from repro.incremental.order_stats import MedianWindow, QuantileWindow
from repro.incremental.sketches import (
    EPSILON_CM,
    EPSILON_HLL,
    EPSILON_TDIGEST,
    HeavyHitterSketch,
    HyperLogLog,
    ReservoirSample,
    TDigest,
)
from repro.relational.schema import Attribute, AttributeRole
from repro.relational.types import is_na
from repro.stats import descriptive as desc
from repro.stats.histogram import build_histogram


class ResultKind(enum.Enum):
    """Shape of a cached result (SS3.2: results of varying type/length)."""

    SCALAR = "scalar"
    PAIR = "pair"
    VECTOR = "vector"
    HISTOGRAM = "histogram"
    TABLE = "table"


ValuesProvider = Callable[[], Iterable[Any]]
MaintainerFactory = Callable[[ValuesProvider], IncrementalComputation]


@dataclass(frozen=True)
class StatFunction:
    """Descriptor of one cacheable statistical function."""

    name: str
    compute: Callable[[Sequence[Any]], Any]
    result_kind: ResultKind
    maintainer_factory: MaintainerFactory | None = None
    numeric_only: bool = True
    """Meaningless on encoded CATEGORY attributes when True (SS3.2)."""

    summary_kind: str = "exact"
    """Summary-entry kind: ``exact``, ``sketch``, or ``model``."""

    epsilon: float | None = None
    """Documented accuracy bound for ``sketch`` results (None = exact)."""

    @property
    def is_incremental(self) -> bool:
        """Whether finite differencing (or a manual scheme) maintains it."""
        return self.maintainer_factory is not None

    def make_maintainer(self, provider: ValuesProvider) -> IncrementalComputation:
        """Build and initialize the incremental form for current data."""
        if self.maintainer_factory is None:
            raise FunctionError(f"function {self.name!r} has no incremental form")
        maintainer = self.maintainer_factory(provider)
        return maintainer

    def applicable_to(self, attribute: Attribute) -> bool:
        """Whether summary information of this function makes sense for

        the attribute (category-encoded columns reject numeric stats)."""
        if not self.numeric_only:
            return True
        if attribute.role is AttributeRole.CATEGORY:
            # Count-like statistics remain fine on categories.
            return False
        return True


def _initialized(maintainer: IncrementalComputation, provider: ValuesProvider) -> IncrementalComputation:
    maintainer.initialize(provider())
    return maintainer


def _window_factory(cls: Any, *args: Any) -> MaintainerFactory:
    def factory(provider: ValuesProvider) -> IncrementalComputation:
        return cls(*args, provider) if args else cls(provider)

    return factory


def _simple_factory(cls: Any) -> MaintainerFactory:
    def factory(provider: ValuesProvider) -> IncrementalComputation:
        return _initialized(cls(), provider)

    return factory


def _algebraic_factory(definition_name: str) -> MaintainerFactory:
    """A maintainer built by finite differencing from the high-level

    definition in :data:`repro.incremental.differencing.DEFINITIONS`."""
    from repro.incremental.differencing import derive_incremental

    def factory(provider: ValuesProvider) -> IncrementalComputation:
        return _initialized(derive_incremental(definition_name), provider)

    return factory


def _histogram_factory(provider: ValuesProvider) -> IncrementalComputation:
    values = [float(v) for v in provider() if not is_na(v)]
    if values:
        lo, hi = min(values), max(values)
    else:
        lo, hi = 0.0, 1.0
    if hi == lo:
        hi = lo + 1.0
    maintained = MaintainedHistogram(
        lo, hi + 1e-9 * (abs(hi) + 1), bins=20, values_provider=provider
    )
    maintained.initialize(values)
    return maintained


def _histogram_two_vectors(values: Sequence[Any]) -> tuple[list[float], list[int]]:
    """The paper's two-vector histogram form: (edges, counts)."""
    built = build_histogram(values)
    return (list(built.edges), list(built.counts))


_QUANTILE_RE = re.compile(r"^quantile_(\d{1,2})$")
_HEAVY_HITTERS_RE = re.compile(r"^heavy_hitters_(\d{1,3})$")


def _heavy_hitters_exact(values: Sequence[Any], k: int) -> tuple[tuple[Any, float], ...]:
    """One-shot exact top-k, with the sketch's tie-break (count descending,
    then ``repr``) so a cache miss and a warm entry agree on rankings."""
    counts: dict[Any, int] = {}
    for value in values:
        if not is_na(value):
            counts[value] = counts.get(value, 0) + 1
    ranked = sorted(counts.items(), key=lambda pair: (-pair[1], repr(pair[0])))
    return tuple((value, float(count)) for value, count in ranked[:k])


def _heavy_hitters_function(name: str, k: int) -> StatFunction:
    return StatFunction(
        name=name,
        compute=lambda values, k=k: _heavy_hitters_exact(values, k),
        result_kind=ResultKind.VECTOR,
        maintainer_factory=lambda provider, k=k: _initialized(
            HeavyHitterSketch(k=k), provider
        ),
        numeric_only=False,
        summary_kind="sketch",
        epsilon=EPSILON_CM,
    )


class FunctionRegistry:
    """Name -> :class:`StatFunction` resolution with quantile synthesis."""

    def __init__(self) -> None:
        self._functions: dict[str, StatFunction] = {}
        for function in _default_functions():
            self._functions[function.name] = function

    def register(self, function: StatFunction) -> None:
        """Add or replace a function definition."""
        self._functions[function.name] = function

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
            return True
        except FunctionError:
            return False

    def names(self) -> list[str]:
        """Registered (non-synthesized) function names."""
        return sorted(self._functions)

    def get(self, name: str) -> StatFunction:
        """Resolve a function, synthesizing quantile_XX on demand."""
        found = self._functions.get(name)
        if found is not None:
            return found
        match = _QUANTILE_RE.match(name)
        if match:
            q = int(match.group(1)) / 100.0
            function = StatFunction(
                name=name,
                compute=lambda values, q=q: desc.quantile(values, q),
                result_kind=ResultKind.SCALAR,
                maintainer_factory=lambda provider, q=q: QuantileWindow(q, provider),
            )
            self._functions[name] = function
            return function
        match = _HEAVY_HITTERS_RE.match(name)
        if match and int(match.group(1)) >= 1:
            function = _heavy_hitters_function(name, int(match.group(1)))
            self._functions[name] = function
            return function
        raise FunctionError(
            f"unknown statistical function {name!r}; known: {self.names()}"
        )


def _default_functions() -> list[StatFunction]:
    return [
        StatFunction(
            "count",
            lambda values: float(len([v for v in values if not is_na(v)])),
            ResultKind.SCALAR,
            _simple_factory(IncrementalCount),
            numeric_only=False,
        ),
        StatFunction(
            "na_count",
            lambda values: float(desc.na_count(values)),
            ResultKind.SCALAR,
            lambda provider: _initialized(_NACounter(), provider),
            numeric_only=False,
        ),
        StatFunction("sum", desc.vsum, ResultKind.SCALAR, _simple_factory(IncrementalSum)),
        StatFunction("mean", desc.mean, ResultKind.SCALAR, _simple_factory(IncrementalMean)),
        StatFunction("var", desc.variance, ResultKind.SCALAR, _simple_factory(IncrementalVariance)),
        StatFunction("std", desc.std, ResultKind.SCALAR, _simple_factory(IncrementalStd)),
        StatFunction("min", desc.vmin, ResultKind.SCALAR, _simple_factory(IncrementalMin)),
        StatFunction("max", desc.vmax, ResultKind.SCALAR, _simple_factory(IncrementalMax)),
        StatFunction(
            "median",
            desc.median,
            ResultKind.SCALAR,
            lambda provider: MedianWindow(provider),
        ),
        StatFunction(
            "mode",
            desc.mode,
            ResultKind.SCALAR,
            _simple_factory(IncrementalFrequency),
            numeric_only=False,
        ),
        StatFunction(
            "unique_count",
            lambda values: float(desc.unique_count(values)),
            ResultKind.SCALAR,
            lambda provider: _initialized(_UniqueCounter(), provider),
            numeric_only=False,
        ),
        StatFunction(
            "histogram",
            _histogram_two_vectors,
            ResultKind.HISTOGRAM,
            _histogram_factory,
        ),
        StatFunction(
            "trimmed_mean",
            lambda values: desc.trimmed_mean(values),
            ResultKind.SCALAR,
            None,  # depends on order statistics; fallback is invalidation
        ),
        StatFunction("iqr", desc.iqr, ResultKind.SCALAR, None),
        StatFunction("mad", desc.mad, ResultKind.SCALAR, None),
        StatFunction("rms", desc.rms, ResultKind.SCALAR, _algebraic_factory("rms")),
        StatFunction(
            "skewness",
            desc.skewness,
            ResultKind.SCALAR,
            _algebraic_factory("skewness"),
        ),
        StatFunction(
            "kurtosis_excess",
            desc.kurtosis_excess,
            ResultKind.SCALAR,
            _algebraic_factory("kurtosis_excess"),
        ),
        StatFunction("cv", desc.cv, ResultKind.SCALAR, _algebraic_factory("cv")),
        StatFunction(
            "geometric_mean",
            desc.geometric_mean,
            ResultKind.SCALAR,
            _algebraic_factory("geometric_mean"),
        ),
        # -- mergeable sketch summaries (MADlib direction, ROADMAP item 3) --
        StatFunction(
            "approx_median",
            desc.median,
            ResultKind.SCALAR,
            lambda provider: _initialized(TDigest(), provider),
            summary_kind="sketch",
            epsilon=EPSILON_TDIGEST,
        ),
        StatFunction(
            "approx_distinct",
            lambda values: float(desc.unique_count(values)),
            ResultKind.SCALAR,
            lambda provider: _initialized(
                HyperLogLog(values_provider=provider), provider
            ),
            numeric_only=False,
            summary_kind="sketch",
            epsilon=EPSILON_HLL,
        ),
        StatFunction(
            "reservoir",
            _reservoir_compute,
            ResultKind.VECTOR,
            lambda provider: _initialized(ReservoirSample(), provider),
            summary_kind="sketch",
        ),
        _heavy_hitters_function("heavy_hitters", 10),
    ]


def _reservoir_compute(values: Sequence[Any]) -> tuple[Any, ...]:
    """One-shot reservoir sample (same seed as the maintained form, so a
    cache miss and a warm entry agree on identical streams)."""
    sketch = ReservoirSample()
    sketch.initialize(values)
    return sketch.value


class _NACounter(IncrementalCount):
    """Incremental NA count (reuses IncrementalCount's NA tracking)."""

    @property
    def value(self) -> int:
        return self.na_count


class _UniqueCounter(IncrementalFrequency):
    """Incremental distinct-value count."""

    @property
    def value(self) -> int:
        return self.unique_count
