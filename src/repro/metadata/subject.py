"""SUBJECT-style meta-data navigation (paper SS2.3, citing CHAN81).

"A user views the meta-data as a graph in which nodes represent
attributes.  Additional, 'higher-level', nodes represent generalizations of
lower-level nodes.  A user enters the system at a fairly high 'level',
navigating his way through the meta-database down to the level of desired
detail.  SUBJECT keeps track of the path followed by the user and at the
end of the session can generate requests to the DBMS for the view described
by his path."

:class:`MetaGraph` is that graph (a :mod:`networkx` DAG of generalization
nodes over attribute leaves); :class:`NavigationSession` records a user's
descent and emits the (dataset, attributes) view request their path
describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.core.errors import MetadataError

ROOT = "__root__"


@dataclass(frozen=True)
class ViewRequest:
    """What a navigation session asks the DBMS to materialize."""

    dataset: str
    attributes: tuple[str, ...]

    def to_definition(self, name: str) -> "ViewDefinition":
        """The materializable :class:`~repro.views.materialize.ViewDefinition`

        this request describes — SUBJECT "can generate requests to the
        DBMS for the view described by his path" (SS2.3), and this is that
        request, ready for :meth:`StatisticalDBMS.create_view`.
        """
        from repro.views.materialize import ProjectNode, SourceNode, ViewDefinition

        return ViewDefinition(
            name, ProjectNode(SourceNode(self.dataset), tuple(self.attributes))
        )


class MetaGraph:
    """A generalization hierarchy over the attributes of the database.

    Leaf nodes are concrete attributes tagged with the dataset that holds
    them; internal nodes are topic generalizations ("demographics",
    "economics", ...).  Edges point from general to specific.
    """

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self.graph.add_node(ROOT, kind="topic", label="(root)")

    # -- construction ----------------------------------------------------------

    def add_topic(self, name: str, parent: str = ROOT, label: str | None = None) -> None:
        """Add a generalization node under ``parent``."""
        self._check_absent(name)
        self._check_topic(parent)
        self.graph.add_node(name, kind="topic", label=label or name)
        self.graph.add_edge(parent, name)
        self._check_acyclic()

    def add_attribute(self, name: str, dataset: str, parent: str, label: str | None = None) -> None:
        """Add a concrete attribute leaf under a topic."""
        self._check_absent(name)
        self._check_topic(parent)
        self.graph.add_node(
            name, kind="attribute", dataset=dataset, label=label or name
        )
        self.graph.add_edge(parent, name)

    def link(self, parent: str, child: str) -> None:
        """Add an extra generalization edge (the graph is a DAG, not a tree)."""
        self._check_topic(parent)
        if child not in self.graph:
            raise MetadataError(f"no node {child!r}")
        self.graph.add_edge(parent, child)
        self._check_acyclic()

    def remove_node(self, name: str) -> None:
        """Remove a node (SUBJECT's 'primitive operations ... for updating

        the graph')."""
        if name == ROOT:
            raise MetadataError("cannot remove the root")
        if name not in self.graph:
            raise MetadataError(f"no node {name!r}")
        self.graph.remove_node(name)

    # -- queries ----------------------------------------------------------------

    def children(self, name: str) -> list[str]:
        """Immediate specializations of a node."""
        if name not in self.graph:
            raise MetadataError(f"no node {name!r}")
        return sorted(self.graph.successors(name))

    def is_attribute(self, name: str) -> bool:
        """Whether ``name`` is a leaf attribute."""
        return (
            name in self.graph and self.graph.nodes[name].get("kind") == "attribute"
        )

    def dataset_of(self, name: str) -> str:
        """Dataset holding a leaf attribute."""
        if not self.is_attribute(name):
            raise MetadataError(f"{name!r} is not an attribute node")
        return self.graph.nodes[name]["dataset"]

    def attributes_under(self, name: str) -> list[str]:
        """All leaf attributes reachable from a node."""
        if name not in self.graph:
            raise MetadataError(f"no node {name!r}")
        reachable = nx.descendants(self.graph, name) | {name}
        return sorted(n for n in reachable if self.is_attribute(n))

    def _check_absent(self, name: str) -> None:
        if name in self.graph:
            raise MetadataError(f"node {name!r} already exists")

    def _check_topic(self, name: str) -> None:
        if name not in self.graph or self.graph.nodes[name].get("kind") != "topic":
            raise MetadataError(f"{name!r} is not a topic node")

    def _check_acyclic(self) -> None:
        if not nx.is_directed_acyclic_graph(self.graph):
            raise MetadataError("generalization graph must stay acyclic")


@dataclass
class NavigationSession:
    """One user's descent through the meta-graph.

    The session starts at the root; :meth:`descend` moves to a child,
    :meth:`select` marks an attribute (or every attribute under a topic)
    for the eventual view; :meth:`view_requests` generates the DBMS
    requests the path describes — one per dataset touched.
    """

    graph: MetaGraph
    position: str = ROOT
    path: list[str] = field(default_factory=lambda: [ROOT])
    selected: list[str] = field(default_factory=list)

    def descend(self, child: str) -> None:
        """Move one level down."""
        if child not in self.graph.children(self.position):
            raise MetadataError(
                f"{child!r} is not a child of {self.position!r}; "
                f"children are {self.graph.children(self.position)}"
            )
        self.position = child
        self.path.append(child)

    def ascend(self) -> None:
        """Move one level back up the recorded path."""
        if len(self.path) < 2:
            raise MetadataError("already at the root")
        self.path.pop()
        self.position = self.path[-1]

    def select(self, name: str | None = None) -> list[str]:
        """Mark an attribute (default: everything under the current node).

        Returns the attributes newly added to the selection."""
        target = name or self.position
        if self.graph.is_attribute(target):
            added = [target]
        else:
            added = self.graph.attributes_under(target)
        new = [a for a in added if a not in self.selected]
        self.selected.extend(new)
        return new

    def view_requests(self) -> list[ViewRequest]:
        """The view(s) this session's path describes, one per dataset."""
        by_dataset: dict[str, list[str]] = {}
        for attr in self.selected:
            by_dataset.setdefault(self.graph.dataset_of(attr), []).append(attr)
        return [
            ViewRequest(dataset=dataset, attributes=tuple(attrs))
            for dataset, attrs in sorted(by_dataset.items())
        ]
