"""Serialization of the Management Database's control information.

An analysis "can mean a lengthy period of time — as long as a few months"
(paper SS2.3), so the Management Database's contents — view definitions,
update histories, rule overrides, code books, accuracy preferences, the
meta-data graph — must outlive any one process.  This module round-trips
all of it through plain JSON-able dictionaries:

* expression trees (:mod:`repro.relational.expressions`),
* view-definition trees (:mod:`repro.views.materialize`),
* update histories with NA-aware cell values,
* code books, policies, rule overrides, and the SUBJECT graph.

Functions themselves are code; only *names* are persisted and resolved
against the registry on load (custom functions must be re-registered by
the application before loading, mirroring how 1982 systems reloaded
procedure libraries).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.errors import MetadataError
from repro.metadata.codebook import CodeBook
from repro.metadata.management import ManagementDatabase
from repro.metadata.rules import RuleKind
from repro.metadata.subject import ROOT
from repro.relational import expressions as ex
from repro.relational.aggregates import AggregateSpec
from repro.relational.types import NA, is_na
from repro.summary.policies import (
    ConsistencyPolicy,
    InvalidatePolicy,
    PeriodicPolicy,
    PrecisePolicy,
    TolerantPolicy,
)
from repro.views.materialize import (
    AggregateNode,
    DefNode,
    JoinNode,
    ProjectNode,
    SelectNode,
    SourceNode,
    ViewDefinition,
)
from repro.views.history import CellChange, OpKind, Operation, UpdateHistory

# -- scalar values (NA-aware) ---------------------------------------------------


def value_to_jsonable(value: Any) -> Any:
    """Encode a cell value, representing NA explicitly."""
    if is_na(value):
        return {"__na__": True}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise MetadataError(f"cannot persist value of type {type(value).__name__}")


def value_from_jsonable(data: Any) -> Any:
    """Inverse of :func:`value_to_jsonable`."""
    if isinstance(data, dict) and data.get("__na__"):
        return NA
    return data


def result_to_jsonable(value: Any) -> Any:
    """Encode a *statistic result*: scalars plus the vector shapes.

    Query answers are richer than cell values — histograms are pairs of
    vectors, reservoir samples and heavy-hitter rankings are tuples —
    so sequences encode recursively (as JSON arrays).  Cell persistence
    keeps using :func:`value_to_jsonable` directly, where a non-scalar
    is a bug worth raising on.
    """
    if isinstance(value, (tuple, list)):
        return [result_to_jsonable(item) for item in value]
    return value_to_jsonable(value)


# -- expressions -------------------------------------------------------------------


def expr_to_dict(expr: ex.Expr) -> dict:
    """Serialize an expression tree."""
    if isinstance(expr, ex.Col):
        return {"node": "col", "name": expr.name}
    if isinstance(expr, ex.Const):
        return {"node": "const", "value": value_to_jsonable(expr.value)}
    if isinstance(expr, ex.Arith):
        return {
            "node": "arith",
            "op": expr.op,
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, ex.Func):
        return {"node": "func", "name": expr.name, "arg": expr_to_dict(expr.arg)}
    if isinstance(expr, ex.Compare):
        return {
            "node": "compare",
            "op": expr.op,
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, ex.And):
        return {
            "node": "and",
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, ex.Or):
        return {
            "node": "or",
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, ex.Not):
        return {"node": "not", "child": expr_to_dict(expr.child)}
    if isinstance(expr, ex.In):
        return {
            "node": "in",
            "child": expr_to_dict(expr.child),
            "options": [value_to_jsonable(v) for v in expr.options],
        }
    if isinstance(expr, ex.Between):
        return {
            "node": "between",
            "child": expr_to_dict(expr.child),
            "lo": value_to_jsonable(expr.lo),
            "hi": value_to_jsonable(expr.hi),
        }
    if isinstance(expr, ex.IsNA):
        return {"node": "isna", "child": expr_to_dict(expr.child)}
    raise MetadataError(f"cannot persist expression node {type(expr).__name__}")


def expr_from_dict(data: dict) -> ex.Expr:
    """Inverse of :func:`expr_to_dict`."""
    kind = data.get("node")
    if kind == "col":
        return ex.Col(data["name"])
    if kind == "const":
        return ex.Const(value_from_jsonable(data["value"]))
    if kind == "arith":
        return ex.Arith(data["op"], expr_from_dict(data["left"]), expr_from_dict(data["right"]))
    if kind == "func":
        return ex.Func(data["name"], expr_from_dict(data["arg"]))
    if kind == "compare":
        return ex.Compare(data["op"], expr_from_dict(data["left"]), expr_from_dict(data["right"]))
    if kind == "and":
        return ex.And(expr_from_dict(data["left"]), expr_from_dict(data["right"]))
    if kind == "or":
        return ex.Or(expr_from_dict(data["left"]), expr_from_dict(data["right"]))
    if kind == "not":
        return ex.Not(expr_from_dict(data["child"]))
    if kind == "in":
        return ex.In(
            expr_from_dict(data["child"]),
            tuple(value_from_jsonable(v) for v in data["options"]),
        )
    if kind == "between":
        return ex.Between(
            expr_from_dict(data["child"]),
            value_from_jsonable(data["lo"]),
            value_from_jsonable(data["hi"]),
        )
    if kind == "isna":
        return ex.IsNA(expr_from_dict(data["child"]))
    raise MetadataError(f"unknown expression node kind {kind!r}")


# -- view definitions ------------------------------------------------------------------


def defnode_to_dict(node: DefNode) -> dict:
    """Serialize a view-definition tree."""
    if isinstance(node, SourceNode):
        return {"node": "source", "dataset": node.dataset}
    if isinstance(node, SelectNode):
        return {
            "node": "select",
            "child": defnode_to_dict(node.child),
            "predicate": expr_to_dict(node.predicate),
        }
    if isinstance(node, ProjectNode):
        return {
            "node": "project",
            "child": defnode_to_dict(node.child),
            "attributes": list(node.attributes),
        }
    if isinstance(node, JoinNode):
        return {
            "node": "join",
            "left": defnode_to_dict(node.left),
            "right": defnode_to_dict(node.right),
            "left_keys": list(node.left_keys),
            "right_keys": list(node.right_keys),
        }
    if isinstance(node, AggregateNode):
        return {
            "node": "aggregate",
            "child": defnode_to_dict(node.child),
            "keys": list(node.keys),
            "specs": [
                {
                    "func": s.func,
                    "attr": s.attr,
                    "alias": s.alias,
                    "weight": s.weight,
                }
                for s in node.specs
            ],
        }
    raise MetadataError(f"cannot persist definition node {type(node).__name__}")


def defnode_from_dict(data: dict) -> DefNode:
    """Inverse of :func:`defnode_to_dict`."""
    kind = data.get("node")
    if kind == "source":
        return SourceNode(data["dataset"])
    if kind == "select":
        return SelectNode(
            defnode_from_dict(data["child"]), expr_from_dict(data["predicate"])
        )
    if kind == "project":
        return ProjectNode(
            defnode_from_dict(data["child"]), tuple(data["attributes"])
        )
    if kind == "join":
        return JoinNode(
            defnode_from_dict(data["left"]),
            defnode_from_dict(data["right"]),
            tuple(data["left_keys"]),
            tuple(data["right_keys"]),
        )
    if kind == "aggregate":
        return AggregateNode(
            defnode_from_dict(data["child"]),
            tuple(data["keys"]),
            tuple(
                AggregateSpec(
                    func=s["func"], attr=s["attr"], alias=s["alias"], weight=s["weight"]
                )
                for s in data["specs"]
            ),
        )
    raise MetadataError(f"unknown definition node kind {kind!r}")


def definition_to_dict(definition: ViewDefinition) -> dict:
    """Serialize a named view definition."""
    return {"name": definition.name, "root": defnode_to_dict(definition.root)}


def definition_from_dict(data: dict) -> ViewDefinition:
    """Inverse of :func:`definition_to_dict`."""
    return ViewDefinition(data["name"], defnode_from_dict(data["root"]))


# -- histories -------------------------------------------------------------------------


def operation_to_dict(op: Operation) -> dict:
    """Serialize one logged operation (cell values NA-aware).

    Shared by history snapshots and the write-ahead log
    (:mod:`repro.durability`), so both speak the same record schema.
    """
    return {
        "version": op.version,
        "kind": op.kind.value,
        "attribute": op.attribute,
        "description": op.description,
        "changes": [
            {
                "row": c.row,
                "old": value_to_jsonable(c.old),
                "new": value_to_jsonable(c.new),
            }
            for c in op.changes
        ],
    }


def operation_from_dict(data: dict) -> Operation:
    """Inverse of :func:`operation_to_dict`."""
    return Operation(
        version=data["version"],
        kind=OpKind(data["kind"]),
        attribute=data["attribute"],
        description=data.get("description", ""),
        changes=tuple(
            CellChange(
                row=c["row"],
                old=value_from_jsonable(c["old"]),
                new=value_from_jsonable(c["new"]),
            )
            for c in data["changes"]
        ),
    )


def history_to_dict(history: UpdateHistory) -> dict:
    """Serialize an update history (values NA-aware).

    ``next_version`` preserves the monotonic high-water mark: undone
    operations burn their version numbers (see
    :meth:`~repro.views.history.UpdateHistory.undo_last`), so the mark can
    exceed the last recorded operation's version + 1.
    """
    return {
        "view_name": history.view_name,
        "next_version": history._next_version,
        "operations": [operation_to_dict(op) for op in history.operations()],
    }


def history_from_dict(data: dict) -> UpdateHistory:
    """Inverse of :func:`history_to_dict`.

    Snapshots written before the high-water mark was persisted lack
    ``next_version``; for those the mark is derived from the last
    operation, which is exact whenever nothing was ever undone.
    """
    history = UpdateHistory(data["view_name"])
    for op in data["operations"]:
        restored = operation_from_dict(op)
        history._operations.append(restored)
        history._next_version = restored.version + 1
    history._next_version = max(
        history._next_version, data.get("next_version", history._next_version)
    )
    return history


# -- policies ---------------------------------------------------------------------------


def policy_to_dict(policy: ConsistencyPolicy) -> dict:
    """Serialize a consistency policy."""
    if isinstance(policy, PeriodicPolicy):
        return {"name": "periodic", "period": policy.period}
    if isinstance(policy, TolerantPolicy):
        return {"name": "tolerant", "max_staleness": policy.max_staleness}
    if isinstance(policy, InvalidatePolicy):
        return {"name": "invalidate"}
    if isinstance(policy, PrecisePolicy):
        return {"name": "precise"}
    raise MetadataError(f"cannot persist policy {type(policy).__name__}")


def policy_from_dict(data: dict) -> ConsistencyPolicy:
    """Inverse of :func:`policy_to_dict`."""
    name = data["name"]
    if name == "periodic":
        return PeriodicPolicy(period=data["period"])
    if name == "tolerant":
        return TolerantPolicy(max_staleness=data["max_staleness"])
    if name == "invalidate":
        return InvalidatePolicy()
    if name == "precise":
        return PrecisePolicy()
    raise MetadataError(f"unknown policy {name!r}")


# -- the whole Management Database ----------------------------------------------------------


def management_to_dict(management: ManagementDatabase) -> dict:
    """Snapshot everything the Management Database holds."""
    graph = management.metagraph.graph
    return {
        "rule_overrides": {
            name: kind.value for name, kind in management.rules._overrides.items()
        },
        "force_rule_mode": (
            management.rules.force_mode.value if management.rules.force_mode else None
        ),
        "codebooks": [
            {
                "name": book.name,
                "edition": book.edition,
                "mapping": {str(code): label for code, label in book.mapping.items()},
            }
            for key in sorted(management.codebooks._books)
            for book in [management.codebooks._books[key]]
        ],
        "views": [
            definition_to_dict(management.view_definition(name))
            for name in management.view_names()
        ],
        "histories": [
            history_to_dict(management.view_history(name))
            for name in management.view_names()
        ],
        "policies": [
            {
                "analyst": analyst,
                "view": view,
                "policy": policy_to_dict(policy),
            }
            for (analyst, view), policy in sorted(management._policies.items())
        ],
        "publications": [
            {
                "view": record.view_name,
                "publisher": record.publisher,
                "version": record.version,
            }
            for _, record in sorted(management.publications().items())
        ],
        "metagraph": {
            "nodes": [
                {"name": n, **graph.nodes[n]}
                for n in graph.nodes
                if n != ROOT
            ],
            "edges": [[u, v] for u, v in graph.edges],
        },
    }


def management_from_dict(data: dict) -> ManagementDatabase:
    """Rebuild a Management Database from a snapshot.

    Built-in functions come from a fresh registry; rule overrides, code
    books, views, histories, policies, and the SUBJECT graph are restored.
    """
    force = data.get("force_rule_mode")
    management = ManagementDatabase(
        force_rule_mode=RuleKind(force) if force else None
    )
    for name, kind in data.get("rule_overrides", {}).items():
        management.rules.set_rule(name, RuleKind(kind))
    for book in data.get("codebooks", []):
        management.codebooks.register(
            CodeBook(
                book["name"],
                {int(code): label for code, label in book["mapping"].items()},
                edition=book["edition"],
            )
        )
    histories = {
        h["view_name"]: history_from_dict(h) for h in data.get("histories", [])
    }
    for view_data in data.get("views", []):
        definition = definition_from_dict(view_data)
        # An explicit None check: an empty history is falsy (__len__ == 0)
        # yet may still carry a burned high-water mark (next_version > 1)
        # that `or` would silently throw away.
        history = histories.get(definition.name)
        if history is None:
            history = UpdateHistory(definition.name)
        management.register_view(definition, history)
    for item in data.get("policies", []):
        management.set_policy(
            item["analyst"], item["view"], policy_from_dict(item["policy"])
        )
    for item in data.get("publications", []):
        management.record_publication(
            item["view"], publisher=item["publisher"], version=item["version"]
        )
    graph_data = data.get("metagraph", {"nodes": [], "edges": []})
    graph = management.metagraph.graph
    for node in graph_data["nodes"]:
        attrs = {k: v for k, v in node.items() if k != "name"}
        graph.add_node(node["name"], **attrs)
    for u, v in graph_data["edges"]:
        if u in graph and v in graph:
            graph.add_edge(u, v)
    return management


def dump_management(management: ManagementDatabase, path: str) -> None:
    """Write a Management Database snapshot to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(management_to_dict(management), handle, indent=2)


def load_management(path: str) -> ManagementDatabase:
    """Read a Management Database snapshot from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return management_from_dict(json.load(handle))
