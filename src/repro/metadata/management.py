"""The Management Database (paper SS3.2).

"One Management Database is associated with the DBMS.  [Its] purpose is to
serve as a repository for information that describes the organization of
the data, the functions that are applied to it, rules for manipulating
information in the Summary Databases, view definitions, update histories of
the views, and other control information."

:class:`ManagementDatabase` aggregates:

* the :class:`~repro.metadata.functions.FunctionRegistry` (function defs),
* the :class:`~repro.metadata.rules.RuleRepository` (update rules),
* the :class:`~repro.metadata.codebook.CodeBookRegistry` (Figure 2 tables),
* the :class:`~repro.metadata.subject.MetaGraph` (SUBJECT navigation),
* view definitions and references to per-view update histories, and
* per-(analyst, view) accuracy preferences (consistency policies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.errors import MetadataError
from repro.metadata.codebook import CodeBookRegistry
from repro.metadata.functions import FunctionRegistry
from repro.metadata.rules import RuleKind, RuleRepository
from repro.metadata.subject import MetaGraph

if TYPE_CHECKING:  # avoid import cycle; views import summary import rules
    from repro.summary.policies import ConsistencyPolicy
    from repro.views.history import UpdateHistory
    from repro.views.materialize import ViewDefinition


@dataclass(frozen=True)
class PublicationRecord:
    """Who published a view, and at which history version.

    The Management Database keeps this control record alongside the
    registry's :class:`~repro.views.sharing.PublishedEdits` snapshot;
    adoption (paper SS3.2 — reusing a predecessor's data checking)
    cross-checks the two so an analyst never builds on a snapshot whose
    claimed provenance the control information does not corroborate.
    """

    view_name: str
    publisher: str
    version: int


class ManagementDatabase:
    """The single per-DBMS repository of control information."""

    def __init__(
        self,
        functions: FunctionRegistry | None = None,
        force_rule_mode: RuleKind | None = None,
    ) -> None:
        self.functions = functions or FunctionRegistry()
        self.rules = RuleRepository(self.functions, force_mode=force_rule_mode)
        self.codebooks = CodeBookRegistry()
        self.metagraph = MetaGraph()
        self._view_definitions: dict[str, "ViewDefinition"] = {}
        self._histories: dict[str, "UpdateHistory"] = {}
        self._policies: dict[tuple[str, str], "ConsistencyPolicy"] = {}
        self._default_policy: "ConsistencyPolicy | None" = None
        self._publications: dict[str, PublicationRecord] = {}

    # -- view definitions -------------------------------------------------------

    def register_view(self, definition: "ViewDefinition", history: "UpdateHistory") -> None:
        """Record a new view's definition and history reference."""
        if definition.name in self._view_definitions:
            raise MetadataError(f"view {definition.name!r} already registered")
        self._view_definitions[definition.name] = definition
        self._histories[definition.name] = history

    def drop_view(self, name: str) -> None:
        """Forget a view's control information."""
        self._view_definitions.pop(name, None)
        self._histories.pop(name, None)
        self._publications.pop(name, None)
        for key in [k for k in self._policies if k[1] == name]:
            del self._policies[key]

    def view_definition(self, name: str) -> "ViewDefinition":
        """The stored definition of a view."""
        try:
            return self._view_definitions[name]
        except KeyError:
            raise MetadataError(f"no view definition for {name!r}") from None

    def view_history(self, name: str) -> "UpdateHistory":
        """The update history of a view."""
        try:
            return self._histories[name]
        except KeyError:
            raise MetadataError(f"no update history for view {name!r}") from None

    def view_names(self) -> list[str]:
        """Views with registered definitions."""
        return sorted(self._view_definitions)

    # -- publication provenance (SS2.3's "made public") ----------------------------

    def record_publication(
        self, view_name: str, publisher: str, version: int
    ) -> PublicationRecord:
        """Record who published a view and at which history version.

        Re-publishing overwrites: the latest record is the authoritative
        provenance (the registry snapshot it describes is also replaced).
        """
        record = PublicationRecord(
            view_name=view_name, publisher=publisher, version=version
        )
        self._publications[view_name] = record
        return record

    def publication(self, view_name: str) -> PublicationRecord:
        """The provenance record of a published view."""
        try:
            return self._publications[view_name]
        except KeyError:
            raise MetadataError(
                f"no publication record for view {view_name!r}"
            ) from None

    def publications(self) -> dict[str, PublicationRecord]:
        """All publication records, keyed by view name."""
        return dict(self._publications)

    # -- accuracy preferences (SS3.2's "user's wishes") ----------------------------

    def set_policy(self, analyst: str, view: str, policy: "ConsistencyPolicy") -> None:
        """Record an analyst's accuracy preference for one view."""
        self._policies[(analyst, view)] = policy

    def set_default_policy(self, policy: "ConsistencyPolicy") -> None:
        """Policy used when no specific preference exists."""
        self._default_policy = policy

    def policy_for(self, analyst: str, view: str) -> "ConsistencyPolicy":
        """The effective consistency policy for (analyst, view)."""
        found = self._policies.get((analyst, view))
        if found is not None:
            return found
        if self._default_policy is None:
            from repro.summary.policies import PrecisePolicy

            self._default_policy = PrecisePolicy()
        return self._default_policy

    # -- convenience --------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """A human-readable inventory of the control information."""
        return {
            "functions": self.functions.names(),
            "rules": self.rules.describe(),
            "codebooks": self.codebooks.names(),
            "views": self.view_names(),
            "policies": {
                f"{analyst}/{view}": policy.name
                for (analyst, view), policy in sorted(self._policies.items())
            },
            "publications": {
                name: f"{record.publisher}@v{record.version}"
                for name, record in sorted(self._publications.items())
            },
        }
