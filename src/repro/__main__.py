"""``python -m repro`` starts the interactive analyst shell."""

from repro.core.shell import main

if __name__ == "__main__":
    main()
