"""The wire service layer (``repro.server``).

An asyncio TCP server (:mod:`repro.server.server`) speaking a
length-prefixed JSON frame protocol (:mod:`repro.server.protocol`), with a
blocking test/benchmark client (:mod:`repro.server.client`).  Concurrency
control — per-view reader/writer locks, snapshot reads, group commit —
lives in :mod:`repro.concurrency`; this package owns the network edge:
framing, admission control, worker-pool dispatch, per-connection session
lifecycle.
"""

from repro.server.client import ServerClient
from repro.server.server import AnalystServer, ServerThread

__all__ = ["AnalystServer", "ServerClient", "ServerThread"]
