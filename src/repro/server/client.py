"""A small blocking client for the wire protocol.

Used by the tests and the load benchmark (and the shell's ``connect``
command): one socket, synchronous request/response, errors surfaced as
:class:`~repro.core.errors.ServerError` with the server's error code.

    with ServerClient("127.0.0.1", port) as client:
        client.handshake("alice")
        client.open_view("census")
        mean = client.query("census", "mean", "INCOME")["value"]
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Sequence

from repro.core.errors import ProtocolError, ServerError
from repro.server.protocol import read_frame_sync, write_frame_sync


class ServerClient:
    """One blocking connection to an :class:`~repro.server.server.AnalystServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout_s: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.sid: str | None = None
        self._ids = itertools.count(1)
        self._sock = socket.create_connection((host, port), timeout=timeout_s)

    # -- plumbing ----------------------------------------------------------

    def call(self, op: str, **params: Any) -> dict[str, Any]:
        """One request/response round trip; returns the ``result`` object.

        Raises :class:`ServerError` (carrying the server's error code) on
        an error response, :class:`ProtocolError` if the connection drops.
        """
        request = {"op": op, "id": next(self._ids), **params}
        write_frame_sync(self._sock, request)
        response = read_frame_sync(self._sock)
        if response is None:
            raise ProtocolError(f"server closed the connection during {op!r}")
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error", {})
        raise ServerError(
            str(error.get("code", "unknown")),
            str(error.get("message", "unspecified server error")),
        )

    def close(self) -> None:
        """Polite close (server releases this session's locks)."""
        try:
            self.call("close")
        except (OSError, ProtocolError, ServerError):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- operations --------------------------------------------------------

    def handshake(self, analyst: str) -> dict[str, Any]:
        result = self.call("handshake", analyst=analyst)
        self.sid = result.get("sid")
        return result

    def open_view(self, view: str) -> dict[str, Any]:
        return self.call("open_view", view=view)

    def query(
        self,
        view: str,
        function: str,
        attribute: str | None = None,
        attributes: Sequence[str] | None = None,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"view": view, "function": function}
        if attribute is not None:
            params["attribute"] = attribute
        if attributes is not None:
            params["attributes"] = list(attributes)
        if timeout_s is not None:
            params["timeout_s"] = timeout_s
        return self.call("query", **params)

    def columns(self, view: str, attributes: Sequence[str]) -> dict[str, Any]:
        return self.call("columns", view=view, attributes=list(attributes))

    def update(
        self,
        view: str,
        assignments: dict[str, Any],
        where: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        return self.call("update", view=view, assignments=assignments, where=where)

    def undo(self, view: str, count: int = 1) -> dict[str, Any]:
        return self.call("undo", view=view, count=count)

    def publish(self, view: str) -> dict[str, Any]:
        return self.call("publish", view=view)

    def adopt(self, view: str, new_name: str) -> dict[str, Any]:
        return self.call("adopt", view=view, new_name=new_name)

    def history(self, view: str) -> dict[str, Any]:
        return self.call("history", view=view)

    def stats(self, prefix: str = "") -> dict[str, Any]:
        return self.call("stats", prefix=prefix)

    def checkpoint(self) -> dict[str, Any]:
        return self.call("checkpoint")
