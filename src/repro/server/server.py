"""The asyncio wire server: many analysts, one statistical DBMS.

The event loop owns accepting connections and framing; actual DBMS work
runs on a bounded :class:`~concurrent.futures.ThreadPoolExecutor` so a
slow scan never stalls the loop.  Between the two sits admission control:

* at most ``max_inflight`` requests execute concurrently (a semaphore
  whose slot is returned only when the worker thread actually finishes —
  threads cannot be cancelled, so a timed-out request keeps its slot
  until its thread yields and ``max_inflight`` bounds *real* concurrent
  executions);
* at most ``max_queue`` more may wait for a slot — beyond that the server
  answers ``busy`` immediately (queue-depth rejection, counter
  ``server.reject``) instead of building an unbounded backlog;
* every admitted request carries a deadline (``request_timeout_s``,
  covering queue wait + execution); expiry answers ``timeout`` (counter
  ``server.timeout``).  A ``timeout`` response leaves the operation's
  outcome *ambiguous*: the worker thread may still commit afterwards, so
  clients must verify the view version before retrying a write.  Workers
  mitigate the window by refusing to start past their deadline (counter
  ``server.expired_skip``) and bounding their lock waits by the time
  remaining.

Concurrency control is delegated to a
:class:`~repro.concurrency.transactions.TransactionCoordinator`.  Reads
and writes take different paths (MVCC):

* **Read ops** (``query``/``columns``/``history``) are routed to a
  :class:`~repro.concurrency.mvcc.ReplicaPool` — ``read_workers``
  dedicated threads, each holding a thread-sticky pin on the latest
  published :class:`~repro.concurrency.mvcc.ViewVersion` (its private
  copy-on-write replica).  They acquire no view lock and no summary
  latch; ``max_staleness`` bounds how many publications a replica may
  lag before re-pinning (0 = read-your-writes).  ``stats`` — the fourth
  read-only op — stays on the inline executor so it answers even when
  the pools are saturated.
* **Memoized scalar queries take an inline fast path.**  A ``query``
  whose answer already sits in the head version's publication-time
  summary snapshot or per-version memo is answered directly on the
  event loop (counter ``server.read_inline``) — three bare reads, no
  lock, no latch, no pin, so it cannot stall framing (REPRO-C205).
  The loop never *computes*: a memo miss goes to a replica worker,
  which computes once and memoizes on the immutable version, making
  every subsequent identical query against that version an inline hit.
  This removes two executor hops (~0.5 ms each under load) from the
  80%-read steady state; bootstrap reads and bulk payloads
  (``columns``/``history``) always keep the replica-pool path.
* **Write ops** (``update``/``undo``) run per-view exclusive write
  transactions on the worker pool, keeping the unchanged
  propagator/WAL/group-commit pipeline; each publishes a new immutable
  version at commit.  ``publish``/``adopt`` serialize under the registry
  lock and ``checkpoint`` quiesces the whole system.

Each connection is one session id (``s1``, ``s2``, ...); its WAL
transactions carry that id and its locks and version pins are torn down
on disconnect.

Request execution is wrapped in a per-request span
(``server.<op>``), so a :class:`~repro.concurrency.tracing.
ConcurrentTracer` yields per-request timing plus ``server.*``/``lock.*``
counter totals via :meth:`~repro.obs.tracer.Tracer.counter_totals`.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.concurrency.mvcc import ReplicaPool, SnapshotReader
from repro.concurrency.transactions import TransactionCoordinator
from repro.core.dbms import StatisticalDBMS
from repro.core.errors import (
    DeadlockError,
    LockTimeoutError,
    ProtocolError,
    ReproError,
    ServerError,
    SnapshotError,
)
from repro.metadata.persistence import result_to_jsonable, value_to_jsonable
from repro.obs.tracer import NULL_TRACER, AbstractTracer
from repro.relational.expressions import col
from repro.server.protocol import encode_frame, read_frame

#: Ops answered without admission control (kept responsive under load);
#: their registry reads still run off the event loop, under the
#: coordinator's SHARED registry lock, on a dedicated inline executor.
_INLINE_OPS = frozenset({"handshake", "stats", "close"})

#: Read-only ops served by the replica pool's reader workers: they run
#: against pinned immutable versions and never contend with writers.
_READ_OPS = frozenset({"query", "columns", "history"})


class AnalystServer:
    """One DBMS served to N connections over the frame protocol."""

    def __init__(
        self,
        dbms: StatisticalDBMS,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 4,
        max_inflight: int = 8,
        max_queue: int = 16,
        request_timeout_s: float = 30.0,
        lock_timeout_s: float = 10.0,
        tracer: AbstractTracer | None = None,
        coordinator: TransactionCoordinator | None = None,
        allow_debug: bool = False,
        read_workers: int | None = None,
        max_staleness: int = 0,
    ) -> None:
        self.dbms = dbms
        self.host = host
        self.port = port  # 0 until serving; then the real bound port
        self.max_workers = max_workers
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.request_timeout_s = request_timeout_s
        #: Reader threads in the replica pool (default: mirror the write
        #: pool) and how many publications a replica may lag (0 keeps
        #: read-your-writes: the writer publishes before responding).
        self.read_workers = read_workers if read_workers is not None else max_workers
        self.max_staleness = max_staleness
        self.tracer = tracer if tracer is not None else (
            dbms.tracer if dbms.tracer.enabled else NULL_TRACER
        )
        self.coordinator = coordinator or TransactionCoordinator(
            dbms, tracer=self.tracer, timeout_s=lock_timeout_s
        )
        self.allow_debug = allow_debug
        self._sids = itertools.count(1)
        self._pool: ThreadPoolExecutor | None = None
        self._inline_pool: ThreadPoolExecutor | None = None
        self._replicas: ReplicaPool | None = None
        self._server: asyncio.AbstractServer | None = None
        self._slots: asyncio.Semaphore | None = None
        self._queued = 0
        self._inflight = 0
        self.accepted = 0
        self.rejected = 0
        self.timed_out = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and begin accepting (resolves ``self.port`` when 0)."""
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-worker"
        )
        # Inline ops (handshake/stats) run here so they never queue behind
        # long DBMS work, yet still read the registry under its lock.
        self._inline_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-inline"
        )
        self._replicas = ReplicaPool(
            self.coordinator,
            workers=self.read_workers,
            max_lag=self.max_staleness,
            tracer=self.tracer,
        )
        self._slots = asyncio.Semaphore(self.max_inflight)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, close the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._replicas is not None:
            # Latch-free shutdown (safe on the event loop): abandons the
            # reader threads' sticky pins, which die with the chains.
            self._replicas.close()
            self._replicas = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._inline_pool is not None:
            self._inline_pool.shutdown(wait=False, cancel_futures=True)
            self._inline_pool = None

    async def serve_forever(self) -> None:
        """Run until cancelled."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connections -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sid = f"s{next(self._sids)}"
        analyst = sid
        self.accepted += 1
        self.tracer.add("server.accept")
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    await self._send(
                        writer, {"ok": False, "error": {"code": "protocol", "message": str(exc)}}
                    )
                    break
                if request is None:
                    break
                op = request.get("op")
                request_id = request.get("id")
                if op == "handshake":
                    analyst = str(request.get("analyst", sid))
                    response = await self._inline(
                        request_id, self._handshake_result, sid, analyst
                    )
                elif op == "stats":
                    response = await self._inline(
                        request_id, self._stats, request, sid
                    )
                elif op == "close":
                    await self._send(writer, self._ok(request_id, {"sid": sid}))
                    break
                else:
                    response = await self._admit(sid, analyst, request)
                await self._send(writer, response)
        finally:
            released = await self._teardown(sid)
            self.tracer.add("server.close")
            if released:
                self.tracer.add("server.locks_released_on_close", released)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: loop shutdown caught us draining the
                # close; locks are already released, so finish quietly
                # instead of ending the task cancelled (which asyncio's
                # streams callback would log as an error).
                pass

    async def _teardown(self, sid: str) -> int:
        """Release a disconnecting session's locks off the event loop.

        ``coordinator.release`` takes the sessions latch and the lock
        manager's mutex — blocking waits the loop must not make
        (REPRO-C205): with 8 analysts connected, one disconnect contending
        on the lock manager would stall every other connection's framing.
        """
        pool = self._inline_pool
        if pool is not None:
            try:
                return await asyncio.get_running_loop().run_in_executor(
                    pool, self.coordinator.release, sid
                )
            except (RuntimeError, asyncio.CancelledError):
                # Pool rejected the job, or stop() cancelled it before it
                # ran: fall through so the locks are still freed.
                pass
        # Shutdown path only: the executor is gone, so no other connection
        # is being served that this brief block could stall.
        return self.coordinator.release(sid)  # repro-lint: disable=REPRO-C205

    async def _send(self, writer: asyncio.StreamWriter, message: dict[str, Any]) -> None:
        writer.write(encode_frame(message))
        await writer.drain()

    async def _inline(self, request_id: Any, fn: Callable[..., dict[str, Any]], *args: Any) -> dict[str, Any]:
        """Run a lightweight op off the loop, bypassing admission control.

        handshake/stats stay answerable while the worker pool is
        saturated, but their shared-state reads (registry names) still go
        through the coordinator's registry lock on the inline executor —
        never bare on the event loop.
        """
        assert self._inline_pool is not None
        loop = asyncio.get_running_loop()
        try:
            return self._ok(
                request_id, await loop.run_in_executor(self._inline_pool, fn, *args)
            )
        except ServerError as exc:
            return self._err(request_id, exc.code, str(exc))
        except ReproError as exc:
            self.tracer.add("server.error")
            return self._err(request_id, type(exc).__name__, str(exc))
        except Exception as exc:  # never tear down the connection
            self.tracer.add("server.error")
            return self._err(
                request_id, "internal", f"unexpected {type(exc).__name__}: {exc}"
            )

    def _handshake_result(self, sid: str, analyst: str) -> dict[str, Any]:
        return {
            "sid": sid,
            "analyst": analyst,
            "views": self.coordinator.registry_names(sid),
        }

    # -- admission ---------------------------------------------------------

    async def _admit(self, sid: str, analyst: str, request: dict[str, Any]) -> dict[str, Any]:
        """Queue-depth rejection, then deadline-bounded execution.

        The inflight slot is returned by ``_release_slot`` when the worker
        thread actually finishes — not when the deadline fires — because a
        thread cannot be cancelled; this keeps ``max_inflight`` a bound on
        real concurrent executions even across timeouts.
        """
        request_id = request.get("id")
        raw_timeout = request.get("timeout_s", self.request_timeout_s)
        try:
            timeout_s = float(raw_timeout)
        except (TypeError, ValueError):
            return self._err(
                request_id, "protocol", f"'timeout_s' must be a number, got {raw_timeout!r}"
            )
        if timeout_s <= 0:
            return self._err(request_id, "protocol", "'timeout_s' must be positive")
        if request.get("op") == "query":
            response = self._serve_read_inline(sid, request)
            if response is not None:
                return response
        if self._queued >= self.max_queue:
            self.rejected += 1
            self.tracer.add("server.reject")
            return self._err(
                request_id,
                "busy",
                f"queue full ({self._queued} waiting, "
                f"{self._inflight} in flight); retry later",
            )
        self.tracer.add("server.request")
        deadline = time.monotonic() + timeout_s
        assert self._slots is not None and self._pool is not None
        self._queued += 1
        try:
            try:
                await asyncio.wait_for(self._slots.acquire(), timeout=timeout_s)
            except asyncio.TimeoutError:
                return self._timeout_response(request_id, timeout_s)
        finally:
            self._queued -= 1
        # Slot held: hand off to a worker thread.  Read ops go to the
        # replica pool (pinned-version readers, no lock contention with
        # writers); everything else keeps the write/registry worker pool.
        # The future is shielded so a deadline expiry abandons the result
        # without cancelling the bookkeeping; _release_slot runs on the
        # loop when the thread ends.
        self._inflight += 1
        replicas = self._replicas
        pool = (
            replicas.executor
            if replicas is not None and request.get("op") in _READ_OPS
            else self._pool
        )
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            pool, self._execute, sid, analyst, request, deadline
        )
        future.add_done_callback(self._release_slot)
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), timeout=deadline - time.monotonic()
            )
        except asyncio.TimeoutError:
            return self._timeout_response(request_id, timeout_s)

    def _serve_read_inline(
        self, sid: str, request: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Answer a memoized scalar query on the event loop, or punt.

        The loop only ever serves what is *already computed*: a
        well-formed query whose result sits in the head version's
        publication-time summary snapshot or per-version memo.  That
        keeps the path provably non-blocking (REPRO-C205) — a bare
        chain read (:meth:`~repro.concurrency.transactions.
        TransactionCoordinator.chain_if_published`), a bare head read
        (:meth:`~repro.concurrency.mvcc.VersionChain.head`), and a bare
        dict probe (:meth:`~repro.concurrency.mvcc.ViewVersion.cached`)
        — no lock, no latch, no pin.  Everything else returns ``None``
        and takes the admission-controlled worker path: bootstrap reads,
        memo misses (a worker computes once and memoizes on the version,
        so the *next* identical query hits here), malformed requests
        (the worker shapes the ``protocol`` error), and shutdown.
        """
        if self._replicas is None:  # not started / already stopped
            return None
        view = request.get("view")
        if not view:
            return None
        chain = self.coordinator.chain_if_published(str(view))
        if chain is None:
            return None
        version = chain.head()
        if version is None:
            return None
        function = request.get("function")
        if not isinstance(function, str):
            return None
        attributes = request.get("attributes")
        if attributes is not None:
            if not isinstance(attributes, (list, tuple)) or len(attributes) != 2:
                return None
            key = (function, (str(attributes[0]), str(attributes[1])))
        elif "attribute" in request:
            key = (function, (str(request["attribute"]),))
        else:
            return None
        hit, value = version.cached(key)
        if not hit:
            return None  # compute — and memoize — on a worker, never here
        try:
            payload = result_to_jsonable(value)
        except Exception:
            return None  # the worker path shapes the error envelope
        self.tracer.add("server.request")
        self.tracer.add("server.read_inline")
        self.tracer.add("mvcc.memo_hit")
        with self.tracer.span("server.query", sid=sid):
            return self._ok(
                request.get("id"),
                {"value": payload, "version": version.view_version},
            )

    def _release_slot(self, future: "Future[dict[str, Any]] | asyncio.Future[dict[str, Any]]") -> None:
        self._inflight -= 1
        if self._slots is not None:
            self._slots.release()
        if not future.cancelled():
            future.exception()  # retrieve, so abandoned results never warn

    def _timeout_response(self, request_id: Any, timeout_s: float) -> dict[str, Any]:
        self.timed_out += 1
        self.tracer.add("server.timeout")
        return self._err(
            request_id,
            "timeout",
            f"request exceeded its {timeout_s}s deadline; outcome is "
            "ambiguous (the worker may still complete) — verify the view "
            "version before retrying a write",
        )

    # -- execution (worker threads) ----------------------------------------

    def _execute(self, sid: str, analyst: str, request: dict[str, Any], deadline: float) -> dict[str, Any]:
        op = str(request.get("op"))
        request_id = request.get("id")
        if time.monotonic() >= deadline:
            # The client has already been answered "timeout"; doing the
            # work anyway would silently commit an update the client was
            # told failed.  Skip it — this narrows (not closes) the
            # ambiguity window documented on the timeout response.
            self.tracer.add("server.expired_skip")
            return self._err(
                request_id, "timeout", "deadline expired before execution started"
            )
        with self.tracer.span(f"server.{op}", sid=sid):
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                return self._err(request_id, "unknown_op", f"unknown op {op!r}")
            return self._enveloped(
                request_id, handler, sid, analyst, request, deadline
            )

    def _enveloped(
        self,
        request_id: Any,
        handler: Callable[..., dict[str, Any]],
        *args: Any,
    ) -> dict[str, Any]:
        """Run one handler, shaping any failure as an error envelope.

        Shared by the worker-thread :meth:`_execute` path and the
        event-loop inline read path, so both answer identical error
        codes; a malformed request (missing/ill-typed fields) must
        answer an error frame, never tear down the connection.
        """
        try:
            return self._ok(request_id, handler(*args))
        except DeadlockError as exc:
            return self._err(request_id, "deadlock", str(exc))
        except LockTimeoutError as exc:
            return self._err(request_id, "lock_timeout", str(exc))
        except SnapshotError as exc:
            return self._err(request_id, "snapshot", str(exc))
        except ServerError as exc:
            return self._err(request_id, exc.code, str(exc))
        except ReproError as exc:
            self.tracer.add("server.error")
            return self._err(request_id, type(exc).__name__, str(exc))
        except Exception as exc:
            self.tracer.add("server.error")
            return self._err(
                request_id, "internal", f"unexpected {type(exc).__name__}: {exc}"
            )

    @staticmethod
    def _remaining(deadline: float) -> float:
        """Lock-wait budget left before this request's deadline."""
        return max(deadline - time.monotonic(), 0.0)

    def _read_view(self, sid: str, view_name: str, deadline: float) -> SnapshotReader:
        """A pinned snapshot reader for one read-only request.

        On a replica worker this is the thread's sticky copy-on-write
        replica (re-pinned only past the staleness bound).  The fallback
        — tests driving :meth:`_execute` directly, before ``start()`` —
        takes a one-shot pin; the version stays readable after the unpin
        because published versions are immutable (reclamation only drops
        the *chain's* reference).  ``deadline`` bounds the one-time
        bootstrap lock wait either way.
        """
        replicas = self._replicas
        if replicas is not None:
            return replicas.reader(view_name, timeout_s=self._remaining(deadline))
        chain = self.coordinator.chain(
            sid, view_name, timeout_s=self._remaining(deadline)
        )
        pinned = chain.pin(sid)
        chain.unpin(sid, pinned)
        return SnapshotReader(
            pinned,
            self.dbms.management,
            tracer=self.tracer,
            on_miss=chain.note_demand,
        )

    # Each _op_* runs on a worker thread with admission already granted;
    # ``deadline`` (monotonic) bounds its lock waits via _remaining().

    def _op_open_view(
        self, sid: str, analyst: str, request: dict[str, Any], deadline: float
    ) -> dict[str, Any]:
        session = self.coordinator.session(sid, self._view_of(request), analyst)
        view = session.view
        return {
            "view": view.name,
            "version": view.version,
            "rows": len(view),
            "attributes": list(view.schema.names),
        }

    def _op_query(self, sid: str, analyst: str, request: dict[str, Any], deadline: float) -> dict[str, Any]:
        view_name = self._view_of(request)
        self._check_query(request)  # protocol errors before any pinning
        return self._query_result(
            self._read_view(sid, view_name, deadline), request
        )

    @staticmethod
    def _check_query(request: dict[str, Any]) -> None:
        """Raise :class:`ProtocolError` unless ``request`` is a well-formed
        ``query`` (string function, attribute or two-item attributes)."""
        if not isinstance(request.get("function"), str):
            raise ProtocolError("op 'query' needs a string 'function'")
        attributes = request.get("attributes")
        if attributes is not None and (
            not isinstance(attributes, (list, tuple)) or len(attributes) != 2
        ):
            raise ProtocolError("'attributes' must be a two-item list")
        if attributes is None and "attribute" not in request:
            raise ProtocolError("op 'query' needs 'attribute' or 'attributes'")

    def _query_result(
        self, reader: SnapshotReader, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Compute one ``query`` answer against a pinned reader.

        Validates the request shape itself (the inline path reaches
        here without :meth:`_op_query`), so both paths answer the same
        ``protocol`` errors for malformed queries.
        """
        self._check_query(request)
        function = str(request["function"])
        attributes = request.get("attributes")
        if attributes is not None:
            value = reader.compute_pair(
                function, str(attributes[0]), str(attributes[1])
            )
        else:
            value = reader.compute(function, str(request["attribute"]))
        return {
            "value": result_to_jsonable(value),
            "version": reader.version,
        }

    def _op_columns(
        self, sid: str, analyst: str, request: dict[str, Any], deadline: float
    ) -> dict[str, Any]:
        """Raw column values under one snapshot (the atomicity probe)."""
        view_name = self._view_of(request)
        attributes = request.get("attributes")
        if not isinstance(attributes, (list, tuple)) or not attributes:
            raise ProtocolError("op 'columns' needs a non-empty 'attributes' list")
        names = [str(a) for a in attributes]
        # One immutable pinned version serves every requested column, so
        # the multi-attribute atomicity probe holds by construction.
        reader = self._read_view(sid, view_name, deadline)
        return {
            "version": reader.version,
            "columns": {
                name: [value_to_jsonable(v) for v in reader.column(name)]
                for name in names
            },
        }

    def _op_update(self, sid: str, analyst: str, request: dict[str, Any], deadline: float) -> dict[str, Any]:
        view_name = self._view_of(request)
        where = request.get("where")
        assignments = request.get("assignments")
        if not isinstance(assignments, dict) or not assignments:
            raise ProtocolError("op 'update' needs a non-empty 'assignments' object")
        predicate = None
        if where is not None:
            if not isinstance(where, dict) or not {"attribute", "equals"} <= set(where):
                raise ProtocolError("'where' needs 'attribute' and 'equals'")
            predicate = col(str(where["attribute"])) == where["equals"]
        with self.coordinator.write(
            sid, view_name, analyst, timeout_s=self._remaining(deadline)
        ) as session:
            report = session.update(
                predicate, assignments, description=f"update by {analyst}"
            )
            return {
                "version": session.view.version,
                "entries_visited": report.entries_visited,
            }

    def _op_undo(self, sid: str, analyst: str, request: dict[str, Any], deadline: float) -> dict[str, Any]:
        view_name = self._view_of(request)
        try:
            count = int(request.get("count", 1))
        except (TypeError, ValueError):
            raise ProtocolError(
                f"'count' must be an integer, got {request.get('count')!r}"
            ) from None
        with self.coordinator.write(
            sid, view_name, analyst, timeout_s=self._remaining(deadline)
        ) as session:
            if count > len(session.view.history):
                return {"version": session.view.version, "undone": 0}
            session.undo(count)
            return {"version": session.view.version, "undone": count}

    def _op_publish(self, sid: str, analyst: str, request: dict[str, Any], deadline: float) -> dict[str, Any]:
        view_name = self._view_of(request)
        with self.coordinator.registry_write(
            sid, timeout_s=self._remaining(deadline)
        ) as dbms:
            edits = dbms.publish(view_name, publisher=analyst)
            return {
                "view": view_name,
                "publisher": edits.publisher,
                "version": edits.version,
            }

    def _op_adopt(self, sid: str, analyst: str, request: dict[str, Any], deadline: float) -> dict[str, Any]:
        view_name = self._view_of(request)
        new_name = request.get("new_name")
        if not new_name:
            raise ProtocolError("op 'adopt' needs a 'new_name'")
        new_name = str(new_name)
        with self.coordinator.registry_write(
            sid, timeout_s=self._remaining(deadline)
        ) as dbms:
            view = dbms.adopt_published(view_name, new_name, analyst)
            return {"view": view.name, "rows": len(view)}

    def _op_history(self, sid: str, analyst: str, request: dict[str, Any], deadline: float) -> dict[str, Any]:
        view_name = self._view_of(request)
        reader = self._read_view(sid, view_name, deadline)
        return {
            "version": reader.version,
            "operations": [
                {
                    "version": op.version,
                    "kind": op.kind.value,
                    "attribute": op.attribute,
                    "cells": op.cells_changed,
                }
                for op in reader.operations()
            ],
        }

    def _op_checkpoint(
        self, sid: str, analyst: str, request: dict[str, Any], deadline: float
    ) -> dict[str, Any]:
        path = self.coordinator.checkpoint(
            sid, timeout_s=self._remaining(deadline)
        )
        return {"path": str(path)}

    def _op_debug_sleep(
        self, sid: str, analyst: str, request: dict[str, Any], deadline: float
    ) -> dict[str, Any]:
        """Occupy a worker slot (admission-control tests only)."""
        if not self.allow_debug:
            raise ServerError("forbidden", "debug ops are disabled")
        seconds = float(request.get("seconds", 0.1))
        time.sleep(seconds)
        return {"slept": seconds}

    # -- stats -------------------------------------------------------------

    def _stats(self, request: dict[str, Any], sid: str) -> dict[str, Any]:
        prefix = str(request.get("prefix", ""))
        counters: dict[str, float] = {}
        totals = getattr(self.tracer, "counter_totals", None)
        if callable(totals):
            counters = totals(prefix)
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "queued": self._queued,
            "inflight": self._inflight,
            "views": self.coordinator.registry_names(sid),
            "counters": counters,
        }

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _view_of(request: dict[str, Any]) -> str:
        view = request.get("view")
        if not view:
            raise ProtocolError(f"op {request.get('op')!r} needs a 'view'")
        return str(view)

    @staticmethod
    def _ok(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
        response = {"ok": True, "result": result}
        if request_id is not None:
            response["id"] = request_id
        return response

    @staticmethod
    def _err(request_id: Any, code: str, message: str) -> dict[str, Any]:
        response = {"ok": False, "error": {"code": code, "message": message}}
        if request_id is not None:
            response["id"] = request_id
        return response


class ServerThread:
    """Run an :class:`AnalystServer` on a background event-loop thread.

    The shell's ``serve`` command and the tests use this: ``start()``
    returns once the port is bound (resolving port 0 to the real port),
    ``stop()`` tears the loop down.  ``kill()`` abandons the loop without
    cleanup — the crash half of the stress test's kill-and-recover phase.
    """

    def __init__(self, server: AnalystServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopping: asyncio.Event | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout_s: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServerError("startup", "server failed to bind in time")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        await self.server.start()
        self._ready.set()
        try:
            await self._stopping.wait()
        finally:
            await self.server.stop()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, drain, join the thread."""
        if self._loop is not None and self._stopping is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None

    def kill(self) -> None:
        """Abandon the server without cleanup (simulated crash).

        The daemon loop thread is left to die with the process as far as
        the caller is concerned; the durability directory is whatever the
        last committed fsync left behind — exactly what ``recover()``
        must handle.
        """
        if self._loop is not None and self._stopping is not None:
            # Stop accepting so the port frees up, but skip all draining.
            self._loop.call_soon_threadsafe(self._stopping.set)
        self._thread = None
