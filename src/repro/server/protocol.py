"""The wire protocol: length-prefixed JSON frames.

One frame is a 4-byte little-endian unsigned length followed by that many
bytes of UTF-8 JSON::

    +----------------+------------------------+
    | length: u32 LE | payload (JSON object)  |
    +----------------+------------------------+

Requests are objects with an ``op`` (and an optional client-chosen ``id``
echoed back); responses carry ``ok`` plus either ``result`` or ``error``::

    -> {"op": "query", "id": 7, "view": "census", "function": "mean",
        "attribute": "INCOME"}
    <- {"id": 7, "ok": true, "result": {"value": 51234.5, "version": 3}}
    <- {"id": 7, "ok": false, "error": {"code": "busy", "message": "..."}}

Operations: ``handshake``, ``open_view``, ``query``, ``update``, ``undo``,
``publish``, ``adopt``, ``history``, ``stats``, ``checkpoint``, ``close``
(see :mod:`repro.server.server` for per-op parameters).

The framing is deliberately simpler than the WAL's (no checksum): TCP
already guarantees payload integrity, so the length prefix only needs to
delimit messages.  A length above :data:`MAX_FRAME_BYTES` means the peer
is not speaking this protocol — the connection is dropped rather than the
server attempting a multi-gigabyte read.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

from repro.core.errors import ProtocolError

_LENGTH = struct.Struct("<I")

#: No legitimate request or response approaches this (a query result is a
#: few scalars; even a full history dump of the test views is kilobytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(message: dict[str, Any]) -> bytes:
    """One message as a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Parse a frame payload into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-frame-header") from None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {length}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame-payload") from None
    return decode_payload(payload)


def write_frame_sync(sock: socket.socket, message: dict[str, Any]) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(message))


def read_frame_sync(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _read_exactly(sock, _LENGTH.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {length}")
    payload = _read_exactly(sock, length, allow_eof=False)
    assert payload is not None
    return decode_payload(payload)


def _read_exactly(
    sock: socket.socket, count: int, allow_eof: bool
) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
