"""Benchmark harness utilities."""

from repro.bench.harness import ExperimentTable, speedup

__all__ = ["ExperimentTable", "speedup"]
