"""Benchmark harness utilities."""

from repro.bench.harness import ExperimentTable, report_table, speedup, write_json

__all__ = ["ExperimentTable", "report_table", "speedup", "write_json"]
