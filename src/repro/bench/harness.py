"""Benchmark harness utilities: the fixed-width experiment tables every

``benchmarks/bench_*.py`` prints.  Each experiment (E1-E12 in DESIGN.md)
declares an :class:`ExperimentTable`, fills rows during the run, and prints
it so `pytest benchmarks/ --benchmark-only` output reads like the
evaluation section the 1982 paper never had.  :func:`write_json` persists
the same tables machine-readably (``BENCH_*.json``) so later PRs can track
the perf trajectory without parsing printed output."""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence


@dataclass
class ExperimentTable:
    """A titled results table printed at the end of a benchmark."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one result row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def note(self, text: str) -> None:
        """Attach a footnote."""
        self.notes.append(text)

    def render(self) -> str:
        """The fixed-width rendering."""
        widths = [
            max(len(str(c)), *(len(r[i]) for r in self.rows)) if self.rows else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [
            "",
            f"=== {self.experiment}: {self.title} ===",
            "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def emit(self) -> None:
        """Print the table (pytest shows it with -s / at teardown)."""
        print(self.render())

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form of the table (cells keep their formatting)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }


#: Tables registered by benchmarks for end-of-run printing (the
#: ``pytest_terminal_summary`` hook in benchmarks/conftest.py drains this).
REGISTRY: list[ExperimentTable] = []


def report_table(table: ExperimentTable) -> None:
    """Register a results table for end-of-run printing."""
    REGISTRY.append(table)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def speedup(baseline: float, improved: float) -> float:
    """baseline/improved, guarding division by zero."""
    if improved == 0:
        return float("inf")
    return baseline / improved


def git_sha() -> str | None:
    """The working tree's commit SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def write_json(
    path: str | Path,
    tables: Sequence[ExperimentTable],
    metrics: dict[str, Any] | None = None,
    spans: dict[str, Any] | None = None,
    params: dict[str, Any] | None = None,
) -> Path:
    """Persist benchmark tables (plus scalar metrics) as JSON.

    ``metrics`` holds the headline numbers future PRs compare against
    (speedups, row counts) without re-deriving them from table cells.
    ``spans`` carries tracer output — a ``Tracer.to_dict()`` (or
    ``ExplainResult.to_dict()``) dump — so the per-operation breakdown
    behind the headline numbers survives alongside them.  ``params``
    records the run's configuration (worker counts, concurrency levels,
    dataset sizes) and every payload carries the producing commit's
    ``git_sha`` plus the host's ``cpu_count`` and ``python_version``, so
    BENCH_*.json files from different PRs are comparable — a latency
    delta means nothing if the worker pool, core count, or interpreter
    also changed.
    """
    target = Path(path)
    payload: dict[str, Any] = {
        "git_sha": git_sha(),
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "params": params or {},
        "tables": [table.to_dict() for table in tables],
        "metrics": metrics or {},
    }
    if spans is not None:
        payload["spans"] = spans
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target
