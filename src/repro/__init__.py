"""repro: a reproduction of Boral, DeWitt & Bates (1982), "A Framework for

Research in Database Management for Statistical Analysis".

The package implements the paper's proposed statistical DBMS end to end:

* ``repro.storage`` — WiSS-style substrate: simulated disk/tape with I/O
  accounting, buffer pool, heap files, transposed (column) files with
  run-length compression, B+-tree indexes;
* ``repro.relational`` — the flat-file relational engine (select, project,
  join, aggregates, a SQL subset) used to materialize views;
* ``repro.metadata`` — function registry, update rules, code books,
  SUBJECT-style meta-data navigation, the Management Database;
* ``repro.summary`` — the per-view Summary Database: a cache of function
  results with consistency policies;
* ``repro.incremental`` — finite differencing: automatically derived
  algebraic forms, the median/quantile histogram window, maintained
  frequency tables and histograms, derived-column rules;
* ``repro.stats`` — the statistical package layer (descriptive stats,
  cross-tabs, chi-squared/K-S tests, OLS residuals, sampling);
* ``repro.views`` — concrete view materialization from tape, update
  histories with undo/rollback, predicate updates, sharing/publication;
* ``repro.core`` — the DBMS facade and analyst sessions tying it together;
* ``repro.concurrency`` — the multi-analyst service substrate: per-view
  reader/writer locks with deadlock detection, snapshot-consistent read
  transactions, and group commit;
* ``repro.server`` — an asyncio wire server (length-prefixed JSON frames)
  plus a blocking client, so many analysts can share one DBMS process;
* ``repro.workloads`` — census-like generators and EDA/CDA session
  workloads for the benchmarks.

Quickstart::

    from repro.core import StatisticalDBMS
    from repro.views import SourceNode, ViewDefinition
    from repro.workloads.census import figure1_dataset

    dbms = StatisticalDBMS()
    dbms.load_raw(figure1_dataset())
    created = dbms.create_view(
        ViewDefinition("my_view", SourceNode("census_fig1")))
    session = dbms.session("my_view", analyst="boral")
    session.compute("median", "AVE_SALARY")   # computed, cached
    session.compute("median", "AVE_SALARY")   # served from the cache
"""

from repro.core.dbms import StatisticalDBMS

__version__ = "1.0.0"

__all__ = ["StatisticalDBMS", "__version__"]
