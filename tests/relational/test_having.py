"""Tests for the HAVING clause."""

import pytest

from repro.core.errors import QueryError
from repro.relational.catalog import Catalog
from repro.relational.planner import execute
from repro.relational.sql import parse
from repro.workloads.census import figure1_dataset


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.register(figure1_dataset("census"), "census")
    return cat


class TestHaving:
    def test_filters_on_aggregate_alias(self, catalog):
        r = execute(
            "SELECT RACE, SUM(POPULATION) AS POP FROM census "
            "GROUP BY RACE HAVING POP > 10000000",
            catalog,
        )
        assert len(r) == 1 and r.row(0)[0] == "W"

    def test_filters_on_group_key(self, catalog):
        r = execute(
            "SELECT SEX, COUNT(*) AS N FROM census GROUP BY SEX HAVING SEX = 'F'",
            catalog,
        )
        assert len(r) == 1 and r.row(0) == ("F", 4)

    def test_conjunction(self, catalog):
        r = execute(
            "SELECT RACE, AGE_GROUP, AVG(AVE_SALARY) AS S FROM census "
            "GROUP BY RACE, AGE_GROUP HAVING S > 25000 AND RACE = 'W'",
            catalog,
        )
        assert len(r) == 3
        assert all(row[0] == "W" and row[2] > 25000 for row in r)

    def test_with_where_and_order(self, catalog):
        r = execute(
            "SELECT AGE_GROUP, SUM(POPULATION) AS POP FROM census "
            "WHERE SEX = 'M' GROUP BY AGE_GROUP HAVING POP > 10000000 "
            "ORDER BY POP DESC",
            catalog,
        )
        pops = [row[1] for row in r]
        assert pops == sorted(pops, reverse=True)
        assert all(p > 10_000_000 for p in pops)

    def test_having_can_empty_result(self, catalog):
        r = execute(
            "SELECT RACE, SUM(POPULATION) AS POP FROM census "
            "GROUP BY RACE HAVING POP > 999999999999",
            catalog,
        )
        assert len(r) == 0

    def test_parse_shape(self):
        q = parse("SELECT g, SUM(x) AS s FROM t GROUP BY g HAVING s > 1")
        assert q.having is not None
        assert "s" in q.having.columns()

    def test_having_requires_group_by(self):
        # HAVING without GROUP BY is a parse error (trailing tokens).
        with pytest.raises(QueryError):
            parse("SELECT COUNT(*) FROM t HAVING COUNT > 1")
