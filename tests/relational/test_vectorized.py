"""The vectorized execution engine: chunks, kernels, operators, planner hook."""

import pytest

from repro.core.errors import ExpressionError, QueryError, StorageError
from repro.relational.aggregates import AggregateSpec, GroupBy
from repro.relational.catalog import Catalog
from repro.relational.expressions import col, func
from repro.relational.operators import Project, Select
from repro.relational.planner import plan
from repro.relational.relation import Relation, StoredRelation
from repro.relational.schema import Schema, category, measure
from repro.relational.sql import parse
from repro.relational.types import NA, DataType
from repro.relational.vectorized import (
    ColumnChunk,
    ColumnVector,
    VecGroupBy,
    VecProject,
    VecScan,
    VecSelect,
    VectorOperator,
    as_chunk_pipeline,
    chunks_from_rows,
    supports_column_chunks,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.transposed import TransposedFile


def sample_schema():
    return Schema(
        [category("G", DataType.STR), measure("X"), measure("Y"), measure("W")]
    )


def sample_rows():
    return [
        ("a", 1.0, 10.0, 1.0),
        ("b", 2.0, NA, 2.0),
        ("a", NA, 30.0, 1.0),
        ("b", 4.0, 40.0, 0.5),
        ("a", 5.0, 50.0, 2.0),
        ("c", -1.0, 0.0, 1.0),
    ]


def sample_relation():
    return Relation("t", sample_schema(), sample_rows())


class TestColumnVector:
    def test_from_values_derives_mask(self):
        vec = ColumnVector.from_values([1.0, NA, float("nan"), 2.0])
        assert vec.mask == [False, True, True, False]

    def test_no_na_means_no_mask(self):
        assert ColumnVector.from_values([1.0, 2.0]).mask is None

    def test_take_compacts_mask(self):
        vec = ColumnVector.from_values([1.0, NA, 3.0])
        taken = vec.take([0, 2])
        assert taken.to_list() == [1.0, 3.0]
        assert taken.mask is None


class TestColumnChunk:
    def test_iter_rows_round_trip(self):
        chunks = list(chunks_from_rows(sample_schema(), sample_rows(), chunk_size=4))
        assert [c.length for c in chunks] == [4, 2]
        rebuilt = [row for c in chunks for row in c.iter_rows()]
        assert rebuilt == sample_rows()

    def test_compress_keeps_truthy_positions(self):
        (chunk,) = chunks_from_rows(sample_schema(), sample_rows(), chunk_size=10)
        kept = chunk.compress([True, False, True, False, False, False])
        assert kept.length == 2
        assert list(kept.iter_rows()) == [sample_rows()[0], sample_rows()[2]]

    def test_compress_all_kept_is_identity(self):
        (chunk,) = chunks_from_rows(sample_schema(), sample_rows(), chunk_size=10)
        assert chunk.compress([True] * 6) is chunk


class TestOperators:
    def test_scan_prunes_columns(self):
        scan = VecScan(sample_relation(), columns=["X", "W"], chunk_size=4)
        assert scan.schema.names == ["X", "W"]
        assert scan.rows() == [(r[1], r[3]) for r in sample_rows()]

    def test_scan_rejects_bad_chunk_size(self):
        with pytest.raises(QueryError):
            VecScan(sample_relation(), chunk_size=0)

    def test_select_matches_row_engine(self):
        rel = sample_relation()
        pred = (col("X") > 1) & (col("Y") <= 40)
        vec = VecSelect(VecScan(rel, chunk_size=2), pred)
        assert vec.rows() == list(Select(rel, pred))

    def test_select_na_comparison_fails_predicate(self):
        rel = sample_relation()
        vec = VecSelect(VecScan(rel, chunk_size=3), col("Y") >= 0)
        assert vec.rows() == list(Select(rel, col("Y") >= 0))
        assert all(row[2] is not NA for row in vec.rows())

    def test_project_computed_column(self):
        rel = sample_relation()
        items = ["G", ("double_x", col("X") * 2), ("logy", func("log", col("Y")))]
        vec = VecProject(VecScan(rel, chunk_size=4), items)
        row_op = Project(rel, items)
        assert vec.schema.names == row_op.schema.names
        assert vec.rows() == list(row_op)

    def test_groupby_matches_row_engine(self):
        rel = sample_relation()
        specs = [
            AggregateSpec("count", None, "n"),
            AggregateSpec("sum", "X", "sx"),
            AggregateSpec("mean", "Y", "my"),
            AggregateSpec("weighted_avg", "X", "wx", weight="W"),
        ]
        vec = VecGroupBy(VecScan(rel, chunk_size=2), ["G"], specs)
        row_op = GroupBy(rel, ["G"], specs)
        assert vec.schema.names == row_op.schema.names
        assert vec.schema.types == row_op.schema.types
        assert vec.rows() == list(row_op)

    def test_groupby_grand_total_on_empty_keys(self):
        rel = sample_relation()
        specs = [AggregateSpec("count", None, "n"), AggregateSpec("sum", "X", "sx")]
        vec = VecGroupBy(VecScan(rel, chunk_size=3), [], specs)
        assert vec.rows() == list(GroupBy(rel, [], specs))

    def test_groupby_validation_mirrors_row_engine(self):
        rel = sample_relation()
        with pytest.raises(QueryError):
            VecGroupBy(VecScan(rel), ["G"], [AggregateSpec("nope", "X", "a")])
        with pytest.raises(QueryError):
            VecGroupBy(VecScan(rel), ["G"], [])

    def test_compare_type_error_matches_row_engine(self):
        rel = sample_relation()
        vec = VecSelect(VecScan(rel, chunk_size=4), col("G") < 3)
        with pytest.raises(ExpressionError):
            vec.rows()

    def test_vector_operator_iterates_as_rows(self):
        scan = VecScan(sample_relation(), chunk_size=4)
        assert isinstance(scan, VectorOperator)
        assert list(iter(scan)) == sample_rows()


class TestChunkPipelineLift:
    def test_relation_supports_chunks(self):
        assert supports_column_chunks(sample_relation())

    def test_lift_passthrough_for_vector_operator(self):
        scan = VecScan(sample_relation())
        assert as_chunk_pipeline(scan) is scan

    def test_row_only_source_declines(self):
        class RowsOnly:
            schema = sample_schema()

            def __iter__(self):
                return iter(sample_rows())

        assert not supports_column_chunks(RowsOnly())
        assert as_chunk_pipeline(RowsOnly()) is None


def transposed_relation(compress=None):
    schema = Schema([measure(f"C{i}") for i in range(10)])
    disk = SimulatedDisk(block_size=512)
    pool = BufferPool(disk, capacity=32)
    storage = TransposedFile(pool, schema.types, compress=compress)
    rows = [tuple(float(r * 10 + c) for c in range(10)) for r in range(200)]
    stored = StoredRelation.load("wide", schema, rows, storage)
    pool.flush_all()
    return disk, pool, stored, rows


class TestTransposedChunkScan:
    def test_chunks_match_rows(self):
        _, _, stored, rows = transposed_relation()
        scan = VecScan(stored, columns=["C2", "C7"], chunk_size=64)
        assert scan.rows() == [(r[2], r[7]) for r in rows]

    def test_q_of_m_scan_reads_only_q_columns_pages(self):
        disk, pool, stored, _ = transposed_relation()
        pool.clear()
        disk.reset_stats()
        VecScan(stored, columns=["C2", "C7"], chunk_size=64).rows()
        q_reads = disk.stats.block_reads
        expected = stored.storage.column_page_count(2) + stored.storage.column_page_count(7)
        assert q_reads == expected

        pool.clear()
        disk.reset_stats()
        list(iter(stored))  # the row engine's feed touches every chain
        assert disk.stats.block_reads > q_reads

    def test_empty_column_list_rejected(self):
        _, _, stored, _ = transposed_relation()
        with pytest.raises(StorageError):
            list(stored.scan_column_chunks([]))

    def test_chunk_sizes_cover_page_boundaries(self):
        _, _, stored, rows = transposed_relation()
        for chunk_size in (1, 7, 64, 200, 500):
            got = [
                value
                for chunk in stored.scan_column_chunks([3], chunk_size)
                for value in chunk[0]
            ]
            assert got == [r[3] for r in rows], chunk_size


class TestDecodedPageMemo:
    def test_consecutive_probes_decode_once(self, monkeypatch):
        _, _, stored, rows = transposed_relation(compress="rle")
        from repro.storage import compression as comp

        calls = {"n": 0}
        original = comp.rle_decode_bytes

        def counting(body, dtype):
            calls["n"] += 1
            return original(body, dtype)

        monkeypatch.setattr(comp, "rle_decode_bytes", counting)
        for row in range(10):  # all on the first page of the column
            assert stored.storage.get_value(row, 4) == rows[row][4]
        assert calls["n"] == 1

    def test_set_invalidates_memo(self):
        _, _, stored, _ = transposed_relation()
        storage = stored.storage
        assert storage.get_value(5, 0) == 50.0
        storage.set_value(5, 0, -1.0)
        assert storage.get_value(5, 0) == -1.0

    def test_append_invalidates_open_page_memo(self):
        schema = Schema([measure("A")])
        pool = BufferPool(SimulatedDisk(block_size=512), capacity=8)
        storage = TransposedFile(pool, schema.types)
        storage.append_row((1.0,))
        assert storage.get_value(0, 0) == 1.0  # memoizes the open page
        storage.append_row((2.0,))
        assert storage.get_value(1, 0) == 2.0


class TestPlannerHook:
    def catalog(self):
        catalog = Catalog()
        catalog.register(sample_relation())
        return catalog

    def test_join_free_query_plans_vectorized(self):
        pipeline = plan(parse("SELECT X, Y FROM t WHERE X > 1"), self.catalog())
        assert isinstance(pipeline, VectorOperator)

    def test_heap_backed_source_stays_row_wise(self):
        from repro.storage.heapfile import HeapFile

        schema = sample_schema()
        pool = BufferPool(SimulatedDisk(block_size=512), capacity=8)
        stored = StoredRelation.load(
            "h", schema, sample_rows(), HeapFile(pool, schema.types)
        )
        catalog = Catalog()
        catalog.register(stored)
        pipeline = plan(parse("SELECT X FROM h"), catalog)
        assert not isinstance(pipeline, VectorOperator)

    def test_vectorized_results_match_row_semantics(self):
        catalog = self.catalog()
        rel = sample_relation()
        text = "SELECT G, sum(X) AS sx FROM t WHERE X > 0 GROUP BY G"
        got = list(plan(parse(text), catalog))
        expected = list(
            GroupBy(
                Select(rel, col("X") > 0), ["G"], [AggregateSpec("sum", "X", "sx")]
            )
        )
        assert got == expected
