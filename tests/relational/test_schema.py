"""Tests for schemas and attribute roles."""

import pytest

from repro.core.errors import SchemaError
from repro.relational.schema import Attribute, AttributeRole, Schema, category, measure
from repro.relational.types import NA, DataType


def sample_schema():
    return Schema(
        [
            category("SEX", DataType.STR),
            category("AGE_GROUP", DataType.CATEGORY, codebook="ages"),
            measure("POPULATION", DataType.INT),
            measure("AVE_SALARY", DataType.FLOAT),
        ]
    )


class TestAttribute:
    def test_shorthands(self):
        cat = category("A")
        assert cat.role is AttributeRole.CATEGORY
        m = measure("B")
        assert m.role is AttributeRole.MEASURE

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Attribute("", DataType.INT)

    def test_renamed_preserves_rest(self):
        attr = category("A", DataType.CATEGORY, codebook="cb")
        renamed = attr.renamed("B")
        assert renamed.name == "B"
        assert renamed.codebook == "cb"
        assert renamed.role is AttributeRole.CATEGORY

    def test_with_role(self):
        attr = measure("X")
        assert attr.with_role(AttributeRole.DERIVED).role is AttributeRole.DERIVED

    def test_equality(self):
        assert category("A") == category("A")
        assert category("A") != measure("A")


class TestSchema:
    def test_names_types(self):
        schema = sample_schema()
        assert schema.names == ["SEX", "AGE_GROUP", "POPULATION", "AVE_SALARY"]
        assert schema.types[2] is DataType.INT

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([measure("A"), measure("A")])

    def test_index_of(self):
        schema = sample_schema()
        assert schema.index_of("POPULATION") == 2
        with pytest.raises(SchemaError, match="no attribute"):
            schema.index_of("MISSING")

    def test_category_and_measure_lists(self):
        schema = sample_schema()
        assert [a.name for a in schema.category_attributes] == ["SEX", "AGE_GROUP"]
        assert [a.name for a in schema.measure_attributes] == ["POPULATION", "AVE_SALARY"]

    def test_project(self):
        schema = sample_schema().project(["AVE_SALARY", "SEX"])
        assert schema.names == ["AVE_SALARY", "SEX"]

    def test_rename(self):
        schema = sample_schema().rename({"SEX": "GENDER"})
        assert "GENDER" in schema
        assert "SEX" not in schema

    def test_rename_unknown_rejected(self):
        with pytest.raises(SchemaError):
            sample_schema().rename({"NOPE": "X"})

    def test_concat(self):
        left = Schema([measure("A")])
        right = Schema([measure("B")])
        assert left.concat(right).names == ["A", "B"]

    def test_concat_collision_rejected(self):
        s = Schema([measure("A")])
        with pytest.raises(SchemaError, match="duplicate"):
            s.concat(s)

    def test_concat_with_prefixes(self):
        s = Schema([measure("A")])
        combined = s.concat(s, prefix_other="r_")
        assert combined.names == ["A", "r_A"]

    def test_extend(self):
        schema = sample_schema().extend(measure("NEW"))
        assert schema.names[-1] == "NEW"

    def test_validate_row(self):
        schema = sample_schema()
        schema.validate_row(("M", 1, 100, 5.0))
        schema.validate_row((NA, NA, NA, NA))
        with pytest.raises(SchemaError, match="fields"):
            schema.validate_row(("M", 1, 100))
        with pytest.raises(SchemaError, match="invalid"):
            schema.validate_row(("M", 1, "oops", 5.0))

    def test_contains_iter_len(self):
        schema = sample_schema()
        assert "SEX" in schema
        assert len(schema) == 4
        assert [a.name for a in schema] == schema.names

    def test_equality_hash(self):
        assert sample_schema() == sample_schema()
        assert hash(sample_schema()) == hash(sample_schema())
