"""Planner edge cases: pushdown, index residuals, NA semantics, combos."""

import pytest

from repro.relational.catalog import Catalog
from repro.relational.expressions import col
from repro.relational.index import AttributeIndex
from repro.relational.operators import HashJoin, Select
from repro.relational.planner import execute, plan
from repro.relational.relation import Relation
from repro.relational.schema import Schema, category, measure
from repro.relational.sql import parse
from repro.relational.types import NA, DataType
from repro.workloads.census import figure1_dataset


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.register(figure1_dataset("census"), "census")
    schema = Schema(
        [category("CODE", DataType.CATEGORY), measure("LABEL", DataType.STR)]
    )
    cat.register(Relation("codes", schema, [(1, "a"), (2, "b")]), "codes")
    return cat


class TestPushdown:
    def test_mixed_conjuncts_split_correctly(self, catalog):
        q = parse(
            "SELECT * FROM census JOIN codes ON AGE_GROUP = CODE "
            "WHERE SEX = 'M' AND LABEL = 'a' AND POPULATION > LABEL"
        )
        # POPULATION > LABEL references both sides: must stay above the join.
        pipeline = plan(q, catalog)
        assert isinstance(pipeline, Select)
        assert isinstance(pipeline.child, HashJoin)

    def test_all_pushed_leaves_join_on_top(self, catalog):
        q = parse(
            "SELECT * FROM census JOIN codes ON AGE_GROUP = CODE WHERE SEX = 'F'"
        )
        assert isinstance(plan(q, catalog), HashJoin)

    def test_pushdown_preserves_semantics(self, catalog):
        text = (
            "SELECT SEX, LABEL FROM census JOIN codes ON AGE_GROUP = CODE "
            "WHERE SEX = 'M' AND LABEL = 'b'"
        )
        got = execute(text, catalog)
        # Manual evaluation without pushdown:
        census = catalog.get("census")
        codes = catalog.get("codes")
        joined = HashJoin(census, codes, ["AGE_GROUP"], ["CODE"])
        filtered = Select(joined, (col("SEX") == "M") & (col("LABEL") == "b"))
        manual = [(r[0], r[6]) for r in filtered]
        assert sorted(got) == sorted(manual)


class TestIndexResiduals:
    def test_residual_with_na_rows(self):
        schema = Schema([measure("k", DataType.INT), measure("v", DataType.FLOAT)])
        rows = [(1, 10.0), (1, NA), (1, 30.0), (2, 5.0)]
        relation = Relation("r", schema, rows, validate=False)
        catalog = Catalog()
        catalog.register(relation, "r")
        catalog.register_index("r", "k", AttributeIndex.build(relation, "k"))
        got = execute("SELECT v FROM r WHERE k = 1 AND v > 5", catalog)
        # The NA row fails the residual predicate (unknown -> false).
        assert sorted(row[0] for row in got) == [10.0, 30.0]

    def test_index_on_between_combined_with_equality(self):
        schema = Schema([measure("a", DataType.INT), measure("b", DataType.INT)])
        rows = [(i, i % 3) for i in range(100)]
        relation = Relation("r", schema, rows)
        catalog = Catalog()
        catalog.register(relation, "r")
        catalog.register_index("r", "a", AttributeIndex.build(relation, "a"))
        got = execute("SELECT a FROM r WHERE a BETWEEN 10 AND 20 AND b = 0", catalog)
        assert sorted(row[0] for row in got) == [12, 15, 18]


class TestCombos:
    def test_left_join_group_having_order_limit(self, catalog):
        got = execute(
            "SELECT LABEL, SUM(POPULATION) AS POP FROM census "
            "LEFT JOIN codes ON AGE_GROUP = CODE "
            "GROUP BY LABEL HAVING POP > 1000 ORDER BY POP DESC LIMIT 2",
            catalog,
        )
        assert len(got) == 2
        pops = [row[1] for row in got]
        assert pops == sorted(pops, reverse=True)

    def test_aggregate_over_index_scan(self):
        schema = Schema([category("g", DataType.INT), measure("v", DataType.FLOAT)])
        rows = [(i % 5, float(i)) for i in range(1000)]
        relation = Relation("r", schema, rows)
        catalog = Catalog()
        catalog.register(relation, "r")
        catalog.register_index("r", "g", AttributeIndex.build(relation, "g"))
        got = execute("SELECT COUNT(*) AS n FROM r WHERE g = 3", catalog)
        assert got.row(0)[0] == 200
