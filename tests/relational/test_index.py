"""Tests for attribute indexes and index-assisted planning."""

import pytest

from repro.relational.catalog import Catalog
from repro.relational.expressions import col
from repro.relational.index import AttributeIndex, IndexScan, match_indexable_conjunct
from repro.relational.planner import execute, plan
from repro.relational.sql import parse
from repro.relational.types import NA
from repro.workloads.census import generate_microdata


@pytest.fixture()
def micro():
    return generate_microdata(2000, seed=55, bad_value_rate=0.0)


@pytest.fixture()
def indexed_catalog(micro):
    catalog = Catalog()
    catalog.register(micro, "micro")
    catalog.register_index("micro", "REGION", AttributeIndex.build(micro, "REGION"))
    catalog.register_index("micro", "AGE", AttributeIndex.build(micro, "AGE"))
    return catalog


class TestAttributeIndex:
    def test_lookup(self, micro):
        index = AttributeIndex.build(micro, "REGION")
        rows = index.lookup(3)
        assert rows
        assert all(micro.row(r)[3] == 3 for r in rows)
        assert len(rows) == sum(1 for v in micro.column("REGION") if v == 3)

    def test_missing_value_lookup(self, micro):
        index = AttributeIndex.build(micro, "REGION")
        assert index.lookup(999) == []

    def test_na_rows_not_indexed(self):
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema, measure

        relation = Relation("r", Schema([measure("x")]), [(1.0,), (NA,), (1.0,)])
        index = AttributeIndex.build(relation, "x")
        assert index.lookup(1.0) == [0, 2]
        assert index.distinct_values == 1

    def test_range(self, micro):
        index = AttributeIndex.build(micro, "AGE")
        rows = index.range(30, 40)
        ages = micro.column("AGE")
        expected = sorted(i for i, a in enumerate(ages) if 30 <= a <= 40)
        assert rows == expected

    def test_staleness(self, micro):
        index = AttributeIndex.build(micro, "AGE")
        assert not index.stale_for(micro)
        micro.insert(micro.row(0), validate=False)
        assert index.stale_for(micro)


class TestIndexScan:
    def test_residual_applied(self, micro):
        index = AttributeIndex.build(micro, "REGION")
        scan = IndexScan(micro, index, index.lookup(2), residual=col("AGE") > 50)
        rows = scan.rows()
        assert all(r[3] == 2 and r[4] > 50 for r in rows)
        assert scan.rows_fetched >= len(rows)


class TestPlannerIntegration:
    def test_equality_uses_index(self, indexed_catalog):
        pipeline = plan(parse("SELECT * FROM micro WHERE REGION = 5"), indexed_catalog)
        assert isinstance(pipeline, IndexScan)

    def test_between_uses_index(self, indexed_catalog):
        pipeline = plan(
            parse("SELECT * FROM micro WHERE AGE BETWEEN 20 AND 30"), indexed_catalog
        )
        assert isinstance(pipeline, IndexScan)

    def test_results_identical_with_and_without_index(self, micro, indexed_catalog):
        plain = Catalog()
        plain.register(micro, "micro")
        for text in (
            "SELECT PERSON_ID FROM micro WHERE REGION = 5 AND AGE > 40",
            "SELECT PERSON_ID, INCOME FROM micro WHERE AGE BETWEEN 25 AND 35",
        ):
            with_index = sorted(execute(text, indexed_catalog))
            without = sorted(execute(text, plain))
            assert with_index == without

    def test_index_fetches_fewer_rows(self, micro, indexed_catalog):
        pipeline = plan(parse("SELECT * FROM micro WHERE REGION = 5"), indexed_catalog)
        assert pipeline.rows_fetched < len(micro) / 2

    def test_stale_index_not_used(self, micro, indexed_catalog):
        micro.insert(micro.row(0), validate=False)  # drift
        pipeline = plan(parse("SELECT * FROM micro WHERE REGION = 5"), indexed_catalog)
        assert not isinstance(pipeline, IndexScan)

    def test_unindexed_attribute_scans(self, indexed_catalog):
        pipeline = plan(
            parse("SELECT * FROM micro WHERE INCOME > 50000"), indexed_catalog
        )
        assert not isinstance(pipeline, IndexScan)

    def test_join_queries_skip_index(self, micro, indexed_catalog):
        from repro.workloads.census import region_codebook

        indexed_catalog.register(
            region_codebook().to_relation("CODE", "LABEL"), "region_codes"
        )
        pipeline = plan(
            parse(
                "SELECT * FROM micro JOIN region_codes ON REGION = CODE "
                "WHERE REGION = 5"
            ),
            indexed_catalog,
        )
        assert not isinstance(pipeline, IndexScan)


class TestMatching:
    def test_reversed_equality(self, micro):
        indexes = {"REGION": AttributeIndex.build(micro, "REGION")}
        from repro.relational.expressions import Const

        matched = match_indexable_conjunct(Const(5) == col("REGION"), indexes)
        assert matched is not None

    def test_inequality_not_matched(self, micro):
        indexes = {"REGION": AttributeIndex.build(micro, "REGION")}
        assert match_indexable_conjunct(col("REGION") > 5, indexes) is None
