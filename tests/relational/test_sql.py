"""Tests for the SQL-subset parser and planner (executed end to end)."""

import pytest

from repro.core.errors import QueryError
from repro.relational.catalog import Catalog
from repro.relational.planner import execute, plan
from repro.relational.sql import parse
from repro.relational.types import NA, DataType
from repro.workloads.census import age_group_codebook, figure1_dataset


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.register(figure1_dataset("census"), "census")
    cat.register(age_group_codebook().to_relation(), "age_codes")
    return cat


class TestParser:
    def test_basic_shape(self):
        q = parse("SELECT a, b FROM t WHERE a > 1 ORDER BY b DESC LIMIT 5")
        assert q.table == "t"
        assert [i.name for i in q.select] == ["a", "b"]
        assert q.order_by == ["b"] and q.order_desc
        assert q.limit == 5

    def test_star(self):
        q = parse("SELECT * FROM t")
        assert q.select[0].kind == "star"

    def test_aggregates(self):
        q = parse("SELECT COUNT(*), SUM(x) AS total, WEIGHTED_AVG(v, w) AS wa FROM t GROUP BY g")
        kinds = [i.agg_func for i in q.select]
        assert kinds == ["count_star", "sum", "weighted_avg"]
        assert q.select[2].agg_weight == "w"

    def test_count_distinct(self):
        q = parse("SELECT COUNT(DISTINCT x) FROM t")
        assert q.select[0].agg_func == "count_distinct"

    def test_join_clause(self):
        q = parse("SELECT * FROM a JOIN b ON x = y AND u = v")
        assert q.join.table == "b"
        assert q.join.left_keys == ["x", "u"]
        assert q.join.right_keys == ["y", "v"]

    def test_string_literals(self):
        q = parse("SELECT * FROM t WHERE name = 'O''Brien'")
        assert "O'Brien" in q.where.canonical()

    def test_between_in_isna(self):
        parse("SELECT * FROM t WHERE a BETWEEN 1 AND 2")
        parse("SELECT * FROM t WHERE a IN (1, 2, 3)")
        parse("SELECT * FROM t WHERE a IS NA")
        parse("SELECT * FROM t WHERE a IS NOT NULL")

    def test_arithmetic_in_select(self):
        q = parse("SELECT a / 1000 AS ka FROM t")
        assert q.select[0].alias == "ka"

    def test_computed_item_needs_alias(self):
        with pytest.raises(QueryError, match="alias"):
            parse("SELECT a + 1 FROM t")

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse("SELECT FROM t")
        with pytest.raises(QueryError):
            parse("SELECT * FROM t WHERE")
        with pytest.raises(QueryError, match="trailing"):
            parse("SELECT * FROM t EXTRA")

    def test_limit_must_be_int(self):
        with pytest.raises(QueryError):
            parse("SELECT * FROM t LIMIT 2.5")

    def test_negative_literals(self):
        q = parse("SELECT * FROM t WHERE a > -5")
        assert "-5" in q.where.canonical()


class TestExecution:
    def test_select_where(self, catalog):
        r = execute("SELECT SEX, POPULATION FROM census WHERE AVE_SALARY > 30000", catalog)
        assert len(r) == 3
        assert r.schema.names == ["SEX", "POPULATION"]

    def test_star(self, catalog):
        r = execute("SELECT * FROM census", catalog)
        assert len(r) == 9 and len(r.schema) == 5

    def test_codebook_join(self, catalog):
        """Figure 2 decode as a join (SS2.4)."""
        r = execute(
            "SELECT SEX, VALUE, AVE_SALARY FROM census "
            "JOIN age_codes ON AGE_GROUP = CATEGORY WHERE AGE_GROUP = 4",
            catalog,
        )
        assert len(r) == 2
        assert all(row[1] == "over 60" for row in r)

    def test_group_by(self, catalog):
        r = execute(
            "SELECT SEX, SUM(POPULATION) AS POP FROM census GROUP BY SEX ORDER BY POP DESC",
            catalog,
        )
        assert len(r) == 2
        assert r.row(0)[0] == "F"  # women outnumber men in Figure 1

    def test_weighted_avg(self, catalog):
        r = execute(
            "SELECT RACE, WEIGHTED_AVG(AVE_SALARY, POPULATION) AS S FROM census GROUP BY RACE",
            catalog,
        )
        by_race = {row[0]: row[1] for row in r}
        assert by_race["B"] == pytest.approx(29_402)

    def test_expression_projection(self, catalog):
        r = execute("SELECT AVE_SALARY / 1000 AS K FROM census WHERE SEX = 'M' LIMIT 2", catalog)
        assert all(isinstance(row[0], float) for row in r)

    def test_in_predicate(self, catalog):
        r = execute("SELECT * FROM census WHERE AGE_GROUP IN (1, 4)", catalog)
        assert len(r) == 5

    def test_grouping_validation(self, catalog):
        with pytest.raises(QueryError, match="GROUP BY"):
            execute("SELECT SEX, SUM(POPULATION) AS P FROM census GROUP BY RACE", catalog)

    def test_predicate_pushdown_below_join(self, catalog):
        q = parse(
            "SELECT * FROM census JOIN age_codes ON AGE_GROUP = CATEGORY "
            "WHERE SEX = 'M' AND VALUE = 'over 60'"
        )
        pipeline = plan(q, catalog)
        # Both conjuncts were pushed below the join: the top operator is the
        # join itself, not a Select.
        from repro.relational.operators import HashJoin

        assert isinstance(pipeline, HashJoin)
        rows = pipeline.rows()
        assert len(rows) == 1

    def test_unknown_table(self, catalog):
        from repro.core.errors import CatalogError

        with pytest.raises(CatalogError):
            execute("SELECT * FROM missing", catalog)
