"""Tests for the relation catalog."""

import pytest

from repro.core.errors import CatalogError
from repro.relational.catalog import Catalog
from repro.workloads.census import figure1_dataset


class TestCatalog:
    def test_register_and_get(self):
        cat = Catalog()
        rel = figure1_dataset()
        cat.register(rel)
        assert cat.get("census_fig1") is rel

    def test_register_under_alias(self):
        cat = Catalog()
        cat.register(figure1_dataset(), "alias")
        assert "alias" in cat

    def test_duplicate_rejected(self):
        cat = Catalog()
        cat.register(figure1_dataset())
        with pytest.raises(CatalogError, match="already"):
            cat.register(figure1_dataset())

    def test_replace_overwrites(self):
        cat = Catalog()
        cat.register(figure1_dataset())
        cat.replace(figure1_dataset("census_fig1"))
        assert len(cat.names()) == 1

    def test_unregister(self):
        cat = Catalog()
        cat.register(figure1_dataset())
        cat.unregister("census_fig1")
        assert "census_fig1" not in cat
        with pytest.raises(CatalogError):
            cat.unregister("census_fig1")

    def test_missing_get(self):
        with pytest.raises(CatalogError, match="no relation"):
            Catalog().get("x")

    def test_names_sorted(self):
        cat = Catalog()
        cat.register(figure1_dataset("b"), "b")
        cat.register(figure1_dataset("a"), "a")
        assert cat.names() == ["a", "b"]

    def test_indexes(self):
        cat = Catalog()
        cat.register(figure1_dataset())
        cat.register_index("census_fig1", "SEX", {"M": [0]})
        assert cat.index_for("census_fig1", "SEX") == {"M": [0]}
        assert cat.index_for("census_fig1", "RACE") is None
        cat.unregister("census_fig1")
        assert cat.index_for("census_fig1", "SEX") is None

    def test_index_requires_relation(self):
        with pytest.raises(CatalogError):
            Catalog().register_index("missing", "x", object())
