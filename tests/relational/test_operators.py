"""Tests for relational operators."""

import pytest

from repro.core.errors import QueryError
from repro.relational.expressions import col
from repro.relational.operators import (
    Distinct,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    Rename,
    Select,
    Sort,
    SortMergeJoin,
    Union,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema, category, measure
from repro.relational.types import NA, DataType


def rel(name, cols, rows):
    return Relation(name, Schema([measure(c, DataType.FLOAT) for c in cols]), rows)


def people():
    schema = Schema(
        [
            category("id", DataType.INT),
            category("dept", DataType.INT),
            measure("salary", DataType.FLOAT),
        ]
    )
    return Relation(
        "people",
        schema,
        [(1, 10, 100.0), (2, 10, 200.0), (3, 20, 300.0), (4, 30, NA)],
    )


def depts():
    schema = Schema(
        [category("dept_id", DataType.INT), measure("name", DataType.STR)]
    )
    return Relation("depts", schema, [(10, "eng"), (20, "ops")])


class TestSelectProject:
    def test_select(self):
        got = Select(people(), col("salary") > 150).rows()
        assert [r[0] for r in got] == [2, 3]

    def test_select_na_excluded(self):
        got = Select(people(), col("salary") < 1e9).rows()
        assert len(got) == 3  # NA row fails the predicate

    def test_project_names(self):
        out = Project(people(), ["salary", "id"])
        assert out.schema.names == ["salary", "id"]
        assert out.rows()[0] == (100.0, 1)

    def test_project_computed(self):
        out = Project(people(), [("double", col("salary") * 2)])
        assert out.rows()[0] == (200.0,)
        assert out.schema.names == ["double"]

    def test_rename(self):
        out = Rename(people(), {"salary": "pay"})
        assert "pay" in out.schema


class TestJoins:
    def test_hash_join_inner(self):
        got = HashJoin(people(), depts(), ["dept"], ["dept_id"]).rows()
        assert len(got) == 3
        assert got[0][-1] == "eng"

    def test_hash_join_left(self):
        got = HashJoin(people(), depts(), ["dept"], ["dept_id"], how="left").rows()
        assert len(got) == 4
        unmatched = [r for r in got if r[1] == 30][0]
        assert unmatched[-1] is NA

    def test_hash_join_na_keys_never_match(self):
        left = people()
        left.insert((5, NA, 10.0), validate=False)
        got = HashJoin(left, depts(), ["dept"], ["dept_id"]).rows()
        assert all(r[0] != 5 for r in got)

    def test_sort_merge_matches_hash(self):
        hj = sorted(HashJoin(people(), depts(), ["dept"], ["dept_id"]).rows())
        smj = sorted(SortMergeJoin(people(), depts(), ["dept"], ["dept_id"]).rows())
        assert hj == smj

    def test_sort_merge_duplicates(self):
        left = rel("l", ["k"], [(1.0,), (1.0,), (2.0,)])
        right = rel2 = Relation(
            "r",
            Schema([measure("k2", DataType.FLOAT)]),
            [(1.0,), (1.0,)],
        )
        got = SortMergeJoin(left, right, ["k"], ["k2"]).rows()
        assert len(got) == 4  # 2x2 cross within the key group

    def test_nested_loop_theta(self):
        left = rel("l", ["a"], [(1.0,), (5.0,)])
        right = Relation("r", Schema([measure("b", DataType.FLOAT)]), [(3.0,)])
        got = NestedLoopJoin(left, right, col("a") > col("b")).rows()
        assert got == [(5.0, 3.0)]

    def test_join_key_validation(self):
        with pytest.raises(QueryError):
            HashJoin(people(), depts(), [], [])
        with pytest.raises(QueryError):
            HashJoin(people(), depts(), ["dept"], [])
        with pytest.raises(QueryError):
            HashJoin(people(), depts(), ["dept"], ["dept_id"], how="outer")


class TestSortDistinctUnionLimit:
    def test_sort_asc(self):
        got = Sort(people(), ["salary"]).rows()
        values = [r[2] for r in got]
        assert values[:3] == [100.0, 200.0, 300.0]
        assert values[3] is NA  # NA sorts last

    def test_sort_desc_na_still_last(self):
        got = Sort(people(), ["salary"], descending=True).rows()
        values = [r[2] for r in got]
        assert values[:3] == [300.0, 200.0, 100.0]
        assert values[3] is NA

    def test_sort_multiple_keys(self):
        data = rel("d", ["a", "b"], [(1.0, 2.0), (1.0, 1.0), (0.0, 9.0)])
        got = Sort(data, ["a", "b"]).rows()
        assert got == [(0.0, 9.0), (1.0, 1.0), (1.0, 2.0)]

    def test_sort_requires_keys(self):
        with pytest.raises(QueryError):
            Sort(people(), [])

    def test_distinct(self):
        data = rel("d", ["a"], [(1.0,), (1.0,), (2.0,)])
        assert Distinct(data).rows() == [(1.0,), (2.0,)]

    def test_union(self):
        a = rel("a", ["x"], [(1.0,)])
        b = rel("b", ["x"], [(2.0,)])
        assert Union(a, b).rows() == [(1.0,), (2.0,)]

    def test_union_type_mismatch_rejected(self):
        a = rel("a", ["x"], [(1.0,)])
        b = Relation("b", Schema([measure("x", DataType.STR)]), [("s",)])
        with pytest.raises(QueryError, match="union"):
            Union(a, b)

    def test_limit(self):
        assert len(Limit(people(), 2).rows()) == 2
        assert len(Limit(people(), 0).rows()) == 0
        with pytest.raises(QueryError):
            Limit(people(), -1)


class TestComposition:
    def test_pipeline(self):
        joined = HashJoin(people(), depts(), ["dept"], ["dept_id"])
        filtered = Select(joined, col("salary") >= 200)
        projected = Project(filtered, ["id", "name"])
        top = Limit(Sort(projected, ["id"], descending=True), 1)
        assert top.rows() == [(3, "ops")]

    def test_lazy_evaluation(self):
        # Iterating twice re-evaluates (operators are restartable).
        sel = Select(people(), col("salary") > 150)
        assert sel.rows() == sel.rows()
