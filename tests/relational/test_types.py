"""Tests for data types and the NA singleton."""

import pickle

import pytest

from repro.relational.types import NA, DataType, is_na


class TestNA:
    def test_singleton(self):
        from repro.relational.types import _NAType

        assert _NAType() is NA

    def test_falsy(self):
        assert not NA

    def test_repr(self):
        assert repr(NA) == "NA"

    def test_is_na(self):
        assert is_na(NA)
        assert is_na(float("nan"))
        assert not is_na(0)
        assert not is_na("")
        assert not is_na(None) or True  # None is not NA
        assert not is_na(None)

    def test_hashable(self):
        assert NA in {NA}

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NA)) is NA

    def test_equality_only_with_itself(self):
        assert NA == NA
        assert not (NA == 0)
        assert not (NA == float("nan"))


class TestDataType:
    def test_is_numeric(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STR.is_numeric
        assert not DataType.CATEGORY.is_numeric

    def test_python_types(self):
        assert DataType.INT.python_type() is int
        assert DataType.STR.python_type() is str
        assert DataType.CATEGORY.python_type() is int

    @pytest.mark.parametrize(
        "dtype,good,bad",
        [
            (DataType.INT, 5, "x"),
            (DataType.INT, -1, 2.5),
            (DataType.FLOAT, 2.5, "x"),
            (DataType.FLOAT, 3, None),
            (DataType.STR, "abc", 1),
            (DataType.BOOL, True, 1),
            (DataType.CATEGORY, 2, 2.5),
        ],
    )
    def test_validate(self, dtype, good, bad):
        assert dtype.validate(good)
        assert not dtype.validate(bad)

    def test_bool_not_int(self):
        assert not DataType.INT.validate(True)

    def test_na_always_valid(self):
        for dtype in DataType:
            assert dtype.validate(NA)

    def test_coerce(self):
        assert DataType.FLOAT.coerce(3) == 3.0
        assert DataType.INT.coerce(5.0) == 5
        assert DataType.STR.coerce(12) == "12"
        assert DataType.FLOAT.coerce(NA) is NA

    def test_coerce_lossy_int_rejected(self):
        with pytest.raises(ValueError):
            DataType.INT.coerce(5.5)

    def test_coerce_bool_strict(self):
        with pytest.raises(ValueError):
            DataType.BOOL.coerce(1)
