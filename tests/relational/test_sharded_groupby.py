"""Scatter-gather group-by: planner lowering, merge math, process mode."""

import pytest

from repro.core.errors import QueryError
from repro.obs.tracer import Tracer
from repro.relational.aggregates import AggregateSpec, GroupBy
from repro.relational.catalog import Catalog
from repro.relational.expressions import col
from repro.relational.planner import plan
from repro.relational.relation import Relation, StoredRelation
from repro.relational.schema import Schema, category, measure
from repro.relational.sharded import (
    MERGEABLE_FUNCS,
    ShardedGroupBy,
    ShardExecutor,
    get_executor,
    is_sharded_source,
)
from repro.relational.sql import parse
from repro.relational.types import NA, DataType
from repro.relational.vectorized import VectorOperator
from repro.storage.sharded import ShardedTransposedFile


def sample_schema():
    return Schema(
        [category("G", DataType.STR), measure("X"), measure("Y")]
    )


def sample_rows(n=40):
    rows = []
    for i in range(n):
        x = NA if i % 7 == 3 else float(i % 11)
        y = NA if i % 5 == 4 else float(i)
        rows.append((f"g{i % 3}", x, y))
    return rows


def sharded_relation(rows=None, shards=4, name="t"):
    rows = rows if rows is not None else sample_rows()
    schema = sample_schema()
    storage = ShardedTransposedFile(schema.types, shards=shards, name=name)
    return StoredRelation.load(name, schema, rows, storage)


def contains_sharded(op):
    while op is not None:
        if isinstance(op, ShardedGroupBy):
            return True
        op = getattr(op, "child", None)
    return False


class TestPlannerLowering:
    def catalog(self, stored):
        catalog = Catalog()
        catalog.register(stored)
        return catalog

    def test_mergeable_aggregates_lower_to_scatter_gather(self):
        stored = sharded_relation()
        pipeline = plan(
            parse("SELECT G, sum(X) AS sx, count(Y) AS cy FROM t GROUP BY G"),
            self.catalog(stored),
        )
        assert contains_sharded(pipeline)
        assert isinstance(pipeline, VectorOperator)

    def test_median_falls_back_to_single_stream(self):
        # Historical name kept for the diff: since the t-digest partials,
        # median no longer falls back — it lowers to scatter-gather.
        stored = sharded_relation()
        pipeline = plan(
            parse("SELECT G, median(X) AS mx FROM t GROUP BY G"),
            self.catalog(stored),
        )
        assert contains_sharded(pipeline)

    def test_count_distinct_lowers_to_sharded(self):
        stored = sharded_relation()
        pipeline = plan(
            parse("SELECT G, count(DISTINCT X) AS d FROM t GROUP BY G"),
            self.catalog(stored),
        )
        assert contains_sharded(pipeline)

    def test_quantile_lowers_to_sharded(self):
        stored = sharded_relation()
        pipeline = plan(
            parse("SELECT G, quantile_75(X) AS q3 FROM t GROUP BY G"),
            self.catalog(stored),
        )
        assert contains_sharded(pipeline)

    def test_projection_still_falls_back(self):
        stored = sharded_relation()
        pipeline = plan(parse("SELECT G, X FROM t"), self.catalog(stored))
        assert not contains_sharded(pipeline)

    def test_results_match_row_engine(self):
        rows = sample_rows()
        stored = sharded_relation(rows)
        text = (
            "SELECT G, count(*) AS n, sum(X) AS sx, avg(Y) AS ay, "
            "min(X) AS mn, max(Y) AS mx FROM t WHERE Y > 2 GROUP BY G"
        )
        got = list(plan(parse(text), self.catalog(stored)))
        rel = Relation("t", sample_schema(), rows)
        row_catalog = Catalog()
        row_catalog.register(rel)
        expected = list(plan(parse(text), row_catalog, use_vectorized=False))
        assert sorted(map(repr, got)) == sorted(map(repr, expected))

    def test_var_matches_two_pass_within_tolerance(self):
        rows = sample_rows()
        stored = sharded_relation(rows)
        text = "SELECT G, var(Y) AS vy, std(Y) AS sy FROM t GROUP BY G"
        got = {r[0]: r[1:] for r in plan(parse(text), self.catalog(stored))}
        rel = Relation("t", sample_schema(), rows)
        row_catalog = Catalog()
        row_catalog.register(rel)
        expected = {
            r[0]: r[1:] for r in plan(parse(text), row_catalog, use_vectorized=False)
        }
        assert set(got) == set(expected)
        for key, (vy, sy) in expected.items():
            assert got[key][0] == pytest.approx(vy, rel=1e-9)
            assert got[key][1] == pytest.approx(sy, rel=1e-9)


class TestShardCountInvariance:
    def test_identical_results_across_shard_counts(self):
        rows = sample_rows(60)
        text = "SELECT G, count(X) AS n, sum(X) AS s, avg(Y) AS a FROM t GROUP BY G"
        results = []
        for shards in (1, 2, 4, 8):
            stored = sharded_relation(rows, shards=shards)
            catalog = Catalog()
            catalog.register(stored)
            results.append(list(plan(parse(text), catalog)))
        assert all(r == results[0] for r in results[1:])


class TestShardedGroupByOperator:
    def test_rejects_unmergeable_spec(self):
        stored = sharded_relation()
        with pytest.raises(QueryError, match="no mergeable partial"):
            ShardedGroupBy(stored, ["G"], [AggregateSpec("mode", "X", "m")])

    def test_rejects_unsharded_source(self):
        rel = Relation("t", sample_schema(), sample_rows())
        with pytest.raises(QueryError, match="sharded"):
            ShardedGroupBy(rel, ["G"], [AggregateSpec("sum", "X", "s")])

    def test_grand_total_over_empty_selection(self):
        stored = sharded_relation()
        op = ShardedGroupBy(
            stored,
            [],
            [AggregateSpec("count", None, "n"), AggregateSpec("sum", "X", "s")],
            where=col("Y") > 1e9,
        )
        assert list(op) == [(0, NA)]

    def test_group_order_follows_first_appearance(self):
        rows = [("b", 1.0, 1.0), ("a", 2.0, 2.0), ("b", 3.0, 3.0), ("c", 4.0, 4.0)]
        stored = sharded_relation(rows, shards=2)
        op = ShardedGroupBy(stored, ["G"], [AggregateSpec("sum", "X", "s")])
        assert [r[0] for r in op] == ["b", "a", "c"]

    def test_tracer_counts_scatter_and_gather(self):
        stored = sharded_relation(shards=4)
        tracer = Tracer()
        executor = get_executor(stored.storage, tracer=tracer)
        op = ShardedGroupBy(
            stored, ["G"], [AggregateSpec("sum", "X", "s")], executor=executor
        )
        list(op)
        (root,) = [s for s in tracer.roots if s.name == "shard.scatter_gather"]
        assert root.total("shard.scatter") == 4
        assert root.attrs["shards"] == 4

    def test_mergeable_funcs_frozen(self):
        assert {"count", "sum", "avg", "min", "max", "var", "std"} <= MERGEABLE_FUNCS
        # Sketch partials lifted the last two single-stream stragglers.
        assert {"median", "count_distinct"} <= MERGEABLE_FUNCS


class TestProcessMode:
    def test_process_pool_matches_serial(self):
        rows = sample_rows(30)
        stored = sharded_relation(rows, shards=2, name="p")
        serial = ShardExecutor(stored.storage, mode="serial")
        process = ShardExecutor(stored.storage, mode="process")
        try:
            specs = [AggregateSpec("sum", "X", "s"), AggregateSpec("count", "Y", "n")]
            a = list(
                ShardedGroupBy(stored, ["G"], specs, executor=serial)
            )
            b = list(
                ShardedGroupBy(stored, ["G"], specs, executor=process)
            )
            assert a == b
        finally:
            process.close()

    def test_process_pool_sees_writes_after_version_bump(self):
        rows = [("a", 1.0, 1.0), ("a", 2.0, 2.0)]
        stored = sharded_relation(rows, shards=2, name="q")
        executor = ShardExecutor(stored.storage, mode="process")
        try:
            specs = [AggregateSpec("sum", "X", "s")]
            first = list(ShardedGroupBy(stored, ["G"], specs, executor=executor))
            assert first == [("a", 3.0)]
            stored.storage.set_value(0, 1, 10.0)
            second = list(ShardedGroupBy(stored, ["G"], specs, executor=executor))
            assert second == [("a", 12.0)]
        finally:
            executor.close()


class TestSourceProbe:
    def test_sharded_stored_relation_detected(self):
        assert is_sharded_source(sharded_relation())

    def test_plain_relation_rejected(self):
        assert not is_sharded_source(Relation("t", sample_schema(), sample_rows()))
