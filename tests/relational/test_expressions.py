"""Tests for the expression language."""

import pytest

from repro.core.errors import ExpressionError
from repro.relational.expressions import Col, Const, col, func
from repro.relational.schema import Schema, measure
from repro.relational.types import NA, is_na

SCHEMA = Schema([measure("a"), measure("b"), measure("c")])


def run(expr, row):
    return expr.bind(SCHEMA)(row)


class TestBasics:
    def test_col(self):
        assert run(col("b"), (1, 2, 3)) == 2

    def test_const(self):
        assert run(Const(42), (0, 0, 0)) == 42

    def test_unknown_column(self):
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError):
            col("zzz").bind(SCHEMA)

    def test_empty_col_name_rejected(self):
        with pytest.raises(ExpressionError):
            Col("")

    def test_columns_tracking(self):
        expr = (col("a") + col("b")) > col("c")
        assert expr.columns() == {"a", "b", "c"}


class TestArithmetic:
    def test_operators(self):
        assert run(col("a") + col("b"), (1, 2, 0)) == 3
        assert run(col("a") - 1, (5, 0, 0)) == 4
        assert run(col("a") * 3, (2, 0, 0)) == 6
        assert run(col("a") / 2, (5, 0, 0)) == 2.5

    def test_reflected(self):
        assert run(10 - col("a"), (3, 0, 0)) == 7
        assert run(2 * col("a"), (3, 0, 0)) == 6

    def test_division_by_zero_is_na(self):
        assert is_na(run(col("a") / col("b"), (1, 0, 0)))

    def test_na_propagates(self):
        assert is_na(run(col("a") + 1, (NA, 0, 0)))
        assert is_na(run(col("a") * col("b"), (1, NA, 0)))

    def test_unknown_op_rejected(self):
        from repro.relational.expressions import Arith

        with pytest.raises(ExpressionError):
            Arith("%", Const(1), Const(2))


class TestFunctions:
    def test_log(self):
        import math

        assert run(func("log", col("a")), (math.e, 0, 0)) == pytest.approx(1.0)

    def test_sqrt_abs_exp(self):
        assert run(func("sqrt", col("a")), (9, 0, 0)) == 3
        assert run(func("abs", col("a")), (-4, 0, 0)) == 4

    def test_log_of_negative_is_na(self):
        assert is_na(run(func("log", col("a")), (-1, 0, 0)))

    def test_na_propagates(self):
        assert is_na(run(func("sqrt", col("a")), (NA, 0, 0)))

    def test_unknown_function_rejected(self):
        with pytest.raises(ExpressionError, match="unknown function"):
            func("sinh", col("a"))


class TestComparisons:
    def test_all_ops(self):
        row = (5, 3, 5)
        assert run(col("a") > col("b"), row)
        assert run(col("a") >= col("c"), row)
        assert run(col("b") < col("a"), row)
        assert run(col("b") <= col("b"), row)
        assert run(col("a") == col("c"), row)
        assert run(col("a") != col("b"), row)

    def test_na_comparisons_false(self):
        assert not run(col("a") > 1, (NA, 0, 0))
        assert not run(col("a") == col("a"), (NA, 0, 0))
        assert not run(col("a") != 5, (NA, 0, 0))

    def test_type_error_raised(self):
        with pytest.raises(ExpressionError, match="cannot compare"):
            run(col("a") > col("b"), ("x", 1, 0))


class TestLogical:
    def test_and_or_not(self):
        row = (5, 3, 0)
        assert run((col("a") > 1) & (col("b") > 1), row)
        assert not run((col("a") > 1) & (col("c") > 1), row)
        assert run((col("a") > 99) | (col("b") > 1), row)
        assert run(~(col("c") > 1), row)

    def test_canonical_forms(self):
        expr = (col("a") > 1) & ~(col("b") == 2)
        text = expr.canonical()
        assert "AND" in text and "NOT" in text


class TestMembershipRange:
    def test_in(self):
        expr = col("a").is_in([1, 2, 3])
        assert run(expr, (2, 0, 0))
        assert not run(expr, (9, 0, 0))
        assert not run(expr, (NA, 0, 0))

    def test_between(self):
        expr = col("a").between(10, 20)
        assert run(expr, (15, 0, 0))
        assert run(expr, (10, 0, 0))
        assert not run(expr, (21, 0, 0))
        assert not run(expr, (NA, 0, 0))

    def test_isna(self):
        assert run(col("a").is_na(), (NA, 0, 0))
        assert not run(col("a").is_na(), (1, 0, 0))


class TestCanonical:
    def test_equal_trees_equal_strings(self):
        one = (col("a") + 1) > col("b")
        two = (col("a") + 1) > col("b")
        assert one.canonical() == two.canonical()

    def test_different_trees_differ(self):
        assert (col("a") > 1).canonical() != (col("a") > 2).canonical()
