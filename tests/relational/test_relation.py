"""Tests for Relation and StoredRelation."""

import math

import pytest

from repro.core.errors import SchemaError, StorageError
from repro.relational.relation import Relation, StoredRelation
from repro.relational.schema import Schema, category, measure
from repro.relational.types import NA, DataType
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.transposed import TransposedFile


def schema():
    return Schema([category("k", DataType.INT), measure("v", DataType.FLOAT)])


class TestRelation:
    def test_construction_and_len(self):
        rel = Relation("r", schema(), [(1, 1.0), (2, 2.0)])
        assert len(rel) == 2

    def test_validation(self):
        with pytest.raises(SchemaError):
            Relation("r", schema(), [("bad", 1.0)], validate=True)

    def test_insert_and_row(self):
        rel = Relation("r", schema())
        idx = rel.insert((5, 5.0))
        assert rel.row(idx) == (5, 5.0)

    def test_insert_validates_by_default(self):
        rel = Relation("r", schema())
        with pytest.raises(SchemaError):
            rel.insert(("x", 1.0))

    def test_set_value_returns_old(self):
        rel = Relation("r", schema(), [(1, 1.0)])
        old = rel.set_value(0, "v", 9.0)
        assert old == 1.0
        assert rel.row(0) == (1, 9.0)

    def test_delete_row(self):
        rel = Relation("r", schema(), [(1, 1.0), (2, 2.0)])
        gone = rel.delete_row(0)
        assert gone == (1, 1.0)
        assert len(rel) == 1

    def test_column(self):
        rel = Relation("r", schema(), [(1, 1.0), (2, NA)])
        assert rel.column("v") == [1.0, NA]

    def test_column_array_maps_na_to_nan(self):
        rel = Relation("r", schema(), [(1, 1.0), (2, NA)])
        arr = rel.column_array("v")
        assert arr[0] == 1.0 and math.isnan(arr[1])

    def test_column_array_rejects_strings(self):
        s = Schema([measure("s", DataType.STR)])
        rel = Relation("r", s, [("x",)])
        with pytest.raises(SchemaError):
            rel.column_array("s")

    def test_copy_independent(self):
        rel = Relation("r", schema(), [(1, 1.0)])
        dup = rel.copy("r2")
        dup.set_value(0, "v", 5.0)
        assert rel.row(0) == (1, 1.0)

    def test_pretty_renders(self):
        rel = Relation("r", schema(), [(1, 1.0), (2, NA)])
        text = rel.pretty()
        assert "k" in text and "NA" in text

    def test_pretty_truncates(self):
        rel = Relation("r", schema(), [(i, float(i)) for i in range(20)])
        assert "more rows" in rel.pretty(limit=5)


class TestStoredRelation:
    def make(self, rows):
        disk = SimulatedDisk(block_size=256)
        pool = BufferPool(disk, capacity=32)
        tf = TransposedFile(pool, schema().types)
        rel = StoredRelation.load("r", schema(), rows, tf)
        return disk, pool, rel

    def test_iter_matches_rows(self):
        rows = [(i, float(i)) for i in range(100)]
        _, _, rel = self.make(rows)
        assert list(rel) == rows
        assert len(rel) == 100

    def test_column_accounted(self):
        disk, pool, rel = self.make([(i, float(i)) for i in range(500)])
        pool.clear()
        disk.reset_stats()
        values = rel.column("v")
        assert values == [float(i) for i in range(500)]
        assert disk.stats.block_reads > 0
        # Only column v's pages, not k's.
        assert disk.stats.block_reads == rel.storage.column_page_count(1)

    def test_columns_zip(self):
        _, _, rel = self.make([(i, float(i)) for i in range(10)])
        assert list(rel.columns(["v", "k"])) == [(float(i), i) for i in range(10)]

    def test_get_row(self):
        _, _, rel = self.make([(i, float(i)) for i in range(10)])
        assert rel.get_row(7) == (7, 7.0)

    def test_set_value(self):
        _, _, rel = self.make([(1, 1.0)])
        old = rel.set_value(0, "v", 2.0)
        assert old == 1.0
        assert rel.column("v") == [2.0]

    def test_materialize(self):
        _, _, rel = self.make([(1, 1.0)])
        mem = rel.materialize()
        assert isinstance(mem, Relation)
        assert list(mem) == [(1, 1.0)]

    def test_type_mismatch_rejected(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk)
        tf = TransposedFile(pool, [DataType.STR])
        with pytest.raises(StorageError, match="match"):
            StoredRelation("r", schema(), tf)
