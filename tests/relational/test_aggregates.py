"""Tests for group-by and aggregate functions."""

import pytest

from repro.core.errors import QueryError
from repro.relational.aggregates import (
    AggregateSpec,
    GroupBy,
    agg_avg,
    agg_count,
    agg_count_distinct,
    agg_max,
    agg_median,
    agg_min,
    agg_std,
    agg_sum,
    agg_var,
    weighted_avg,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema, category, measure
from repro.relational.types import NA, DataType, is_na
from repro.workloads.census import figure1_dataset


class TestScalarAggregates:
    def test_count_skips_na(self):
        assert agg_count([1, NA, 3]) == 2

    def test_sum_avg(self):
        assert agg_sum([1, 2, NA]) == 3
        assert agg_avg([1, 2, 3, NA]) == 2

    def test_empty_group_na(self):
        assert is_na(agg_sum([NA]))
        assert is_na(agg_avg([]))
        assert is_na(agg_min([]))

    def test_min_max(self):
        assert agg_min([3, 1, NA, 2]) == 1
        assert agg_max([3, 1, NA, 2]) == 3

    def test_median_odd_even(self):
        assert agg_median([3, 1, 2]) == 2
        assert agg_median([4, 1, 2, 3]) == 2.5

    def test_var_std(self):
        assert agg_var([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(32 / 7)
        assert agg_std([1, 1]) == 0
        assert is_na(agg_var([1]))

    def test_count_distinct(self):
        assert agg_count_distinct([1, 1, 2, NA, NA]) == 2

    def test_weighted_avg(self):
        assert weighted_avg([10, 20], [1, 3]) == pytest.approx(17.5)
        assert weighted_avg([10, NA], [1, 3]) == 10
        assert is_na(weighted_avg([], []))


class TestGroupBy:
    def test_figure1_coarsening(self):
        """The paper's SS2.2 example: collapse M/F per RACE/AGE_GROUP with

        summed population and population-weighted salary."""
        census = figure1_dataset()
        out = GroupBy(
            census,
            ["RACE", "AGE_GROUP"],
            [
                AggregateSpec("sum", "POPULATION", "POP"),
                AggregateSpec("weighted_avg", "AVE_SALARY", "SAL", weight="POPULATION"),
            ],
        )
        rows = {(r[0], r[1]): (r[2], r[3]) for r in out}
        pop, sal = rows[("W", 1)]
        assert pop == 12_300_347 + 15_821_497
        expected = (12_300_347 * 33_122 + 15_821_497 * 31_762) / pop
        assert sal == pytest.approx(expected)
        # The lone (B, 1) partition passes through unchanged.
        assert rows[("B", 1)][0] == 2_143_924

    def test_grand_total_no_keys(self):
        census = figure1_dataset()
        out = list(GroupBy(census, [], [AggregateSpec("count", None, "n")]))
        assert out == [(9,)]

    def test_count_star_vs_count_attr(self):
        schema = Schema([category("g", DataType.INT), measure("v", DataType.FLOAT)])
        data = Relation("d", schema, [(1, 1.0), (1, NA), (2, 2.0)])
        out = list(
            GroupBy(
                data,
                ["g"],
                [
                    AggregateSpec("count_star", None, "rows"),
                    AggregateSpec("count", "v", "values"),
                ],
            )
        )
        assert out == [(1, 2, 1), (2, 1, 1)]

    def test_group_order_is_first_seen(self):
        schema = Schema([category("g", DataType.INT), measure("v", DataType.FLOAT)])
        data = Relation("d", schema, [(2, 1.0), (1, 1.0), (2, 3.0)])
        out = list(GroupBy(data, ["g"], [AggregateSpec("sum", "v", "s")]))
        assert [r[0] for r in out] == [2, 1]

    def test_output_schema(self):
        census = figure1_dataset()
        gb = GroupBy(census, ["SEX"], [AggregateSpec("avg", "AVE_SALARY", "a")])
        assert gb.schema.names == ["SEX", "a"]
        assert gb.schema.attribute("a").dtype is DataType.FLOAT

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError, match="unknown aggregate"):
            GroupBy(figure1_dataset(), [], [AggregateSpec("mystery", "SEX", "x")])

    def test_weighted_avg_requires_weight(self):
        with pytest.raises(QueryError, match="weight"):
            GroupBy(
                figure1_dataset(),
                [],
                [AggregateSpec("weighted_avg", "AVE_SALARY", "x")],
            )

    def test_attr_required_for_most(self):
        with pytest.raises(QueryError, match="requires an attribute"):
            GroupBy(figure1_dataset(), [], [AggregateSpec("sum", None, "x")])

    def test_needs_at_least_one_spec(self):
        with pytest.raises(QueryError):
            GroupBy(figure1_dataset(), ["SEX"], [])
