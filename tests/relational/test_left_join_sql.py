"""Tests for LEFT JOIN in the SQL surface."""

import pytest

from repro.metadata.codebook import CodeBook
from repro.relational.catalog import Catalog
from repro.relational.planner import execute
from repro.relational.sql import parse
from repro.relational.types import is_na
from repro.workloads.census import figure1_dataset


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.register(figure1_dataset("census"), "census")
    # A partial code book: code 4 is undocumented.
    partial = CodeBook("AGE_GROUP", {1: "young", 2: "adult", 3: "middle"})
    cat.register(partial.to_relation(), "codes")
    return cat


class TestLeftJoin:
    def test_parse_how(self):
        q = parse("SELECT * FROM a LEFT JOIN b ON x = y")
        assert q.join.how == "left"
        q = parse("SELECT * FROM a JOIN b ON x = y")
        assert q.join.how == "inner"

    def test_unmatched_rows_padded(self, catalog):
        r = execute(
            "SELECT AGE_GROUP, VALUE FROM census LEFT JOIN codes ON AGE_GROUP = CATEGORY",
            catalog,
        )
        assert len(r) == 9
        padded = [row for row in r if is_na(row[1])]
        assert len(padded) == 2  # the two AGE_GROUP=4 rows
        assert all(row[0] == 4 for row in padded)

    def test_inner_drops_unmatched(self, catalog):
        r = execute(
            "SELECT AGE_GROUP FROM census JOIN codes ON AGE_GROUP = CATEGORY",
            catalog,
        )
        assert len(r) == 7

    def test_right_predicate_not_pushed_below_left_join(self, catalog):
        """Filtering the code-book side after a left join must not drop

        the padded rows before the join produces them."""
        r = execute(
            "SELECT AGE_GROUP, VALUE FROM census LEFT JOIN codes "
            "ON AGE_GROUP = CATEGORY WHERE VALUE = 'adult'",
            catalog,
        )
        # Semantics: padded rows have VALUE = NA, failing the predicate.
        assert all(row[1] == "adult" for row in r)
        assert len(r) == 2  # the two AGE_GROUP=2 census rows

    def test_left_join_with_aggregation(self, catalog):
        r = execute(
            "SELECT VALUE, SUM(POPULATION) AS POP FROM census "
            "LEFT JOIN codes ON AGE_GROUP = CATEGORY GROUP BY VALUE "
            "ORDER BY POP DESC",
            catalog,
        )
        labels = [row[0] for row in r]
        assert any(is_na(v) for v in labels)  # the undocumented group appears
