"""Tests for the disk-resident Summary Database store."""

import pytest

from repro.core.errors import SummaryError
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.summary.stored import StoredSummaryStore
from repro.summary.summarydb import SummaryDatabase

FUNCTIONS = ["min", "max", "mean", "std", "median", "count", "sum", "var"]


def build_summary(n_attrs=8):
    summary = SummaryDatabase("v")
    for fn in FUNCTIONS:  # function-major insertion (worst case unclustered)
        for i in range(n_attrs):
            summary.insert(fn, f"attr{i:02d}", float(i) + len(fn))
    return summary


def make_store(block_size=512, pool_pages=64):
    disk = SimulatedDisk(block_size=block_size)
    pool = BufferPool(disk, capacity=pool_pages)
    return disk, pool, StoredSummaryStore(pool)


class TestSaveRestore:
    def test_save_counts(self):
        _, _, store = make_store()
        written = store.save(build_summary())
        assert written == 64
        assert len(store) == 64
        assert store.page_count >= 1

    def test_double_save_rejected(self):
        _, _, store = make_store()
        store.save(build_summary())
        with pytest.raises(SummaryError, match="snapshot"):
            store.save(build_summary())

    def test_lookup(self):
        _, _, store = make_store()
        store.save(build_summary())
        assert store.lookup("mean", "attr03") == 3.0 + 4
        with pytest.raises(SummaryError):
            store.lookup("mean", "attr99")

    def test_multi_attribute_keys(self):
        _, pool, store = make_store()
        summary = SummaryDatabase("v")
        summary.insert("pearson", ("a", "b"), 0.5)
        summary.insert("pearson", ("a", "c"), 0.9)
        store.save(summary)
        assert store.lookup("pearson", ("a", "b")) == 0.5
        assert store.lookup("pearson", ("a", "c")) == 0.9

    def test_varying_length_results(self):
        _, _, store = make_store(block_size=2048)
        summary = SummaryDatabase("v")
        summary.insert("mean", "x", 5.0)
        summary.insert("histogram", "x", ([0.0, 1.0, 2.0], [3, 4]))
        summary.insert("range", "x", (0.0, 2.0))
        store.save(summary)
        assert store.lookup("histogram", "x") == ([0.0, 1.0, 2.0], [3, 4])
        assert store.lookup("range", "x") == (0.0, 2.0)

    def test_restore_roundtrip(self):
        _, _, store = make_store()
        original = build_summary()
        store.save(original)
        restored = store.restore()
        assert len(restored) == len(original)
        assert restored.peek("median", "attr05").result == original.peek(
            "median", "attr05"
        ).result


class TestRealIOClustering:
    def test_attribute_sweep_touches_few_pages(self):
        """The layout simulation's claim, validated with real block reads:

        a clustered save puts one attribute's entries on adjacent pages."""
        disk, pool, store = make_store(block_size=256, pool_pages=4)
        store.save(build_summary(n_attrs=16))
        pool.clear()
        disk.reset_stats()
        results = list(store.entries_for_attribute("attr05"))
        assert len(results) == len(FUNCTIONS)
        sweep_reads = disk.stats.block_reads
        # The whole store is much bigger than what the sweep touched.
        assert sweep_reads <= 3
        assert store.page_count >= 4 * sweep_reads

    def test_exact_lookup_is_cheap(self):
        disk, pool, store = make_store(block_size=256, pool_pages=4)
        store.save(build_summary(n_attrs=16))
        pool.clear()
        disk.reset_stats()
        store.lookup("mean", "attr09")
        assert disk.stats.block_reads == 1  # index is in memory, one data page
