"""Tests for the Database Abstract inference engine (paper SS5.1)."""

import pytest

from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.summary.abstract import DatabaseAbstract, InferenceKind
from repro.summary.summarydb import SummaryDatabase
from repro.views.view import ConcreteView


@pytest.fixture()
def db():
    return SummaryDatabase("abstract_test")


def abstract_with(db, **entries):
    for name, value in entries.items():
        db.insert(name, "x", value)
    return DatabaseAbstract(db)


class TestExactRules:
    def test_identity(self, db):
        abstract = abstract_with(db, median=5.0)
        inference = abstract.infer("median", "x")
        assert inference.kind is InferenceKind.EXACT
        assert inference.value == 5.0

    def test_mean_from_sum_count(self, db):
        abstract = abstract_with(db, sum=100.0, count=4)
        inference = abstract.infer("mean", "x")
        assert inference.kind is InferenceKind.EXACT
        assert inference.value == 25.0
        assert "sum / count" in inference.derivation

    def test_sum_from_mean_count(self, db):
        abstract = abstract_with(db, mean=25.0, count=4)
        assert abstract.infer("sum", "x").value == 100.0

    def test_var_std_interchange(self, db):
        abstract = abstract_with(db, std=3.0)
        assert abstract.infer("var", "x").value == 9.0
        db2 = SummaryDatabase("v2")
        abstract2 = abstract_with(db2, var=16.0)
        assert abstract2.infer("std", "x").value == 4.0

    def test_cv_from_std_mean(self, db):
        abstract = abstract_with(db, std=5.0, mean=50.0)
        assert abstract.infer("cv", "x").value == pytest.approx(0.1)

    def test_iqr_from_quartiles(self, db):
        abstract = abstract_with(db, quantile_25=10.0, quantile_75=30.0)
        assert abstract.infer("iqr", "x").value == 20.0

    def test_rms_from_mean_var_count(self, db):
        import math

        values = [1.0, 2.0, 3.0, 4.0]
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        abstract = abstract_with(db, mean=mean, var=var, count=n)
        true_rms = math.sqrt(sum(v * v for v in values) / n)
        assert abstract.infer("rms", "x").value == pytest.approx(true_rms)


class TestBoundedRules:
    def test_quantile_bracketing(self, db):
        abstract = abstract_with(db, quantile_25=10.0, quantile_75=30.0)
        inference = abstract.infer("median", "x")
        assert inference.kind is InferenceKind.BOUNDED
        assert inference.lo == 10.0 and inference.hi == 30.0
        assert inference.value == pytest.approx(20.0)  # linear interpolation

    def test_quantile_from_min_max(self, db):
        abstract = abstract_with(db, min=0.0, max=100.0)
        inference = abstract.infer("quantile_90", "x")
        assert inference.kind is InferenceKind.BOUNDED
        assert inference.lo == 0.0 and inference.hi == 100.0
        assert inference.value == pytest.approx(90.0)

    def test_mean_bounds_with_median_estimate(self, db):
        abstract = abstract_with(db, min=0.0, max=10.0, median=4.0)
        inference = abstract.infer("mean", "x")
        assert inference.kind is InferenceKind.ESTIMATE
        assert inference.value == 4.0
        assert (inference.lo, inference.hi) == (0.0, 10.0)

    def test_trimmed_mean_bounds(self, db):
        abstract = abstract_with(db, quantile_5=2.0, quantile_95=8.0)
        inference = abstract.infer("trimmed_mean", "x")
        assert inference.kind is InferenceKind.BOUNDED
        assert 2.0 <= inference.value <= 8.0


class TestFreshnessAndMisses:
    def test_stale_entries_ignored(self, db):
        db.insert("sum", "x", 100.0)
        db.insert("count", "x", 4)
        db.peek("sum", "x").stale = True
        abstract = DatabaseAbstract(db)
        assert abstract.infer("mean", "x") is None

    def test_pending_updates_ignored(self, db):
        db.insert("median", "x", 5.0)
        db.peek("median", "x").pending_updates = 2
        assert DatabaseAbstract(db).infer("median", "x") is None

    def test_no_rule_returns_none(self, db):
        abstract = abstract_with(db, mean=5.0)
        assert abstract.infer("mode", "x") is None
        assert abstract.infer("median", "y") is None

    def test_inference_counter(self, db):
        abstract = abstract_with(db, sum=1.0, count=1)
        abstract.infer("mean", "x")
        abstract.infer("mode", "x")
        assert abstract.inferences_served == 1

    def test_str_rendering(self, db):
        abstract = abstract_with(db, min=0.0, max=10.0)
        text = str(abstract.infer("quantile_50", "x"))
        assert "bounded" in text and "[0" in text


class TestSessionIntegration:
    def make_session(self):
        schema = Schema([measure("x")])
        relation = Relation("v", schema, [(float(i),) for i in range(101)])
        view = ConcreteView("v", relation)
        return AnalystSession(ManagementDatabase(), view, analyst="rowe")

    def test_estimate_uses_inference_not_data(self):
        session = self.make_session()
        session.compute("sum", "x")
        session.compute("count", "x")
        scanned = session.stats.rows_scanned
        inference = session.estimate("mean", "x")
        assert inference.kind is InferenceKind.EXACT
        assert inference.value == pytest.approx(50.0)
        assert session.stats.rows_scanned == scanned  # zero data access

    def test_estimate_bounds_contain_truth(self):
        session = self.make_session()
        session.compute("quantile_25", "x")
        session.compute("quantile_75", "x")
        inference = session.estimate("median", "x")
        true_median = 50.0
        assert inference.lo <= true_median <= inference.hi

    def test_estimate_falls_back_to_compute(self):
        session = self.make_session()
        inference = session.estimate("median", "x")
        assert inference.kind is InferenceKind.EXACT
        assert inference.value == 50.0
        assert "computed" in inference.derivation
