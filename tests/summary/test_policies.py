"""Tests for consistency policies."""

import pytest

from repro.core.errors import AccuracyError
from repro.incremental.differencing import Delta
from repro.metadata.functions import FunctionRegistry
from repro.metadata.rules import RuleRepository
from repro.summary.policies import (
    InvalidatePolicy,
    PeriodicPolicy,
    PrecisePolicy,
    TolerantPolicy,
    make_policy,
)
from repro.summary.summarydb import SummaryDatabase


class Harness:
    """One cached mean over a mutable column, under a chosen policy."""

    def __init__(self, policy):
        self.registry = FunctionRegistry()
        self.rules = RuleRepository(self.registry)
        self.db = SummaryDatabase("v")
        self.policy = policy
        self.work = [1.0, 2.0, 3.0, 4.0]
        fn = self.registry.get("mean")
        maintainer = fn.make_maintainer(self.provider)
        self.entry = self.db.insert("mean", "x", maintainer.value, maintainer=maintainer)
        self.recomputes = 0

    def provider(self):
        return list(self.work)

    def update(self, index, new):
        old = self.work[index]
        self.work[index] = new
        rule = self.rules.rule_for("mean")
        return self.policy.on_update(
            self.db, self.entry, Delta(updates=[(old, new)]), rule, self.provider
        )

    def read(self):
        def recompute(entry):
            self.recomputes += 1
            entry.result = self.registry.get("mean").compute(self.work)
            entry.mark_fresh(0)
            if entry.maintainer is not None:
                entry.maintainer.initialize(self.work)
            return entry.result

        value, stale = self.policy.on_lookup(self.db, self.entry, recompute)
        return value, stale

    @property
    def true_mean(self):
        return sum(self.work) / len(self.work)


class TestPrecise:
    def test_always_exact(self):
        h = Harness(PrecisePolicy())
        for i, v in [(0, 10.0), (1, 20.0), (2, 0.5)]:
            h.update(i, v)
            value, stale = h.read()
            assert value == pytest.approx(h.true_mean)
            assert not stale
        assert h.recomputes == 0  # incremental rule did all the work
        assert h.db.stats.incremental_updates == 3


class TestInvalidate:
    def test_lazy_recompute(self):
        h = Harness(InvalidatePolicy())
        h.update(0, 10.0)
        h.update(1, 20.0)
        assert h.entry.stale
        value, _ = h.read()
        assert value == pytest.approx(h.true_mean)
        assert h.recomputes == 1  # one recompute despite two updates
        # A second read with no new updates stays cached.
        h.read()
        assert h.recomputes == 1


class TestPeriodic:
    def test_incremental_functions_stay_exact(self):
        h = Harness(PeriodicPolicy(period=5))
        h.update(0, 100.0)
        value, stale = h.read()
        assert value == pytest.approx(h.true_mean)
        assert not stale

    def test_regenerating_function_batches(self):
        """With a non-incremental rule, refreshes happen every k updates."""
        from repro.metadata.rules import RuleKind

        h = Harness(PeriodicPolicy(period=3))
        h.rules.set_rule("mean", RuleKind.REGENERATE)
        h.entry.maintainer = None
        h.update(0, 100.0)
        h.update(1, 100.0)
        assert h.entry.pending_updates == 2
        value, stale = h.read()
        assert stale  # served the lagging value
        h.update(2, 100.0)  # third update triggers the periodic refresh
        assert h.entry.pending_updates == 0
        value, stale = h.read()
        assert value == pytest.approx(h.true_mean)
        assert not stale

    def test_validation(self):
        with pytest.raises(AccuracyError):
            PeriodicPolicy(period=0)


class TestTolerant:
    def test_serves_stale_within_bound(self):
        h = Harness(TolerantPolicy(max_staleness=2))
        before = h.entry.result
        h.update(0, 100.0)
        value, stale = h.read()
        assert stale
        assert value == before  # the paper: one or two changes barely matter
        assert h.recomputes == 0

    def test_recomputes_past_bound(self):
        h = Harness(TolerantPolicy(max_staleness=2))
        for i in range(3):
            h.update(i, 100.0)
        value, stale = h.read()
        assert not stale
        assert value == pytest.approx(h.true_mean)
        assert h.recomputes == 1

    def test_validation(self):
        with pytest.raises(AccuracyError):
            TolerantPolicy(max_staleness=-1)


class TestFactory:
    def test_make_policy(self):
        assert make_policy("precise").name == "precise"
        assert make_policy("periodic", period=7).period == 7
        assert make_policy("tolerant", max_staleness=1).max_staleness == 1
        with pytest.raises(AccuracyError):
            make_policy("psychic")
