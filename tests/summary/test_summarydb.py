"""Tests for the Summary Database cache."""

import pytest

from repro.core.errors import SummaryError
from repro.summary.summarydb import SummaryDatabase


@pytest.fixture()
def db():
    return SummaryDatabase("test_view", entries_per_page=4)


class TestLookupInsert:
    def test_miss_then_hit(self, db):
        assert db.lookup("mean", "salary") is None
        db.insert("mean", "salary", 42.0)
        entry = db.lookup("mean", "salary")
        assert entry is not None and entry.result == 42.0
        assert db.stats.misses == 1 and db.stats.hits == 1
        assert db.stats.hit_ratio == 0.5

    def test_peek_does_not_count(self, db):
        db.insert("mean", "salary", 1.0)
        db.peek("mean", "salary")
        db.peek("nope", "salary")
        assert db.stats.lookups == 0

    def test_multi_attribute_keys(self, db):
        db.insert("pearson", ("a", "b"), 0.7)
        assert db.lookup("pearson", ("a", "b")).result == 0.7
        assert db.lookup("pearson", ("b", "a")) is None  # order matters

    def test_overwrite(self, db):
        db.insert("mean", "x", 1.0)
        db.insert("mean", "x", 2.0)
        assert len(db) == 1
        assert db.lookup("mean", "x").result == 2.0

    def test_remove(self, db):
        db.insert("mean", "x", 1.0)
        db.remove("mean", "x")
        assert len(db) == 0
        with pytest.raises(SummaryError):
            db.remove("mean", "x")

    def test_hit_count_tracked(self, db):
        db.insert("mean", "x", 1.0)
        db.lookup("mean", "x")
        db.lookup("mean", "x")
        assert db.peek("mean", "x").hit_count == 2


class TestClusteredAccess:
    def test_entries_for_attribute(self, db):
        db.insert("mean", "salary", 1.0)
        db.insert("min", "salary", 0.0)
        db.insert("mean", "age", 30.0)
        got = {e.key.function for e in db.entries_for_attribute("salary")}
        assert got == {"mean", "min"}

    def test_entries_mentioning_multi_attr(self, db):
        db.insert("pearson", ("salary", "age"), 0.5)
        db.insert("mean", "age", 30.0)
        mentioning_age = db.entries_mentioning("age")
        assert len(mentioning_age) == 2
        # But the clustered sweep only covers the primary attribute.
        assert len(db.entries_for_attribute("age")) == 1

    def test_invalidate_attribute(self, db):
        db.insert("mean", "x", 1.0)
        db.insert("max", "x", 9.0)
        db.insert("mean", "y", 2.0)
        count = db.invalidate_attribute("x")
        assert count == 2
        assert db.peek("mean", "x").stale
        assert not db.peek("mean", "y").stale
        # Idempotent.
        assert db.invalidate_attribute("x") == 0

    def test_attributes_listing(self, db):
        db.insert("mean", "b", 1.0)
        db.insert("mean", "a", 1.0)
        assert db.attributes() == ["a", "b"]

    def test_entries_in_clustered_order(self, db):
        db.insert("mean", "b", 1.0)
        db.insert("min", "a", 1.0)
        db.insert("max", "a", 2.0)
        attrs = [e.key.primary_attribute for e in db.entries()]
        assert attrs == ["a", "a", "b"]


class TestPageLayoutSimulation:
    def test_clustered_fewer_pages_per_attribute(self):
        """The E10 ablation: clustering wins for attribute sweeps."""
        clustered = SummaryDatabase("v", entries_per_page=4, clustered=True)
        scattered = SummaryDatabase("v", entries_per_page=4, clustered=False)
        functions = ["mean", "min", "max", "std", "median", "count", "sum", "var"]
        attrs = [f"attr{i}" for i in range(8)]
        # Insert in function-major order, the worst case for an unclustered
        # layout.
        for fn in functions:
            for attr in attrs:
                clustered.insert(fn, attr, 1.0)
                scattered.insert(fn, attr, 1.0)
        assert clustered.pages_for_attribute("attr3") == 2  # 8 entries / 4 per page
        assert scattered.pages_for_attribute("attr3") == 8  # one per page touched
        assert clustered.total_pages() == scattered.total_pages() == 16

    def test_page_of_known_entry(self, db):
        db.insert("mean", "a", 1.0)
        assert db.page_of(db.peek("mean", "a").key) == 0
        with pytest.raises(SummaryError):
            from repro.summary.entries import SummaryKey

            db.page_of(SummaryKey("nope", ("a",)))


class TestCapacity:
    def test_eviction_of_cold_entries(self):
        db = SummaryDatabase("v", capacity_bytes=200)
        db.insert("f1", "a", [1.0] * 10)  # ~90 bytes
        db.insert("f2", "a", [2.0] * 10)
        db.lookup("f2", "a")  # keep f2 warm
        db.insert("f3", "a", [3.0] * 10)  # forces eviction of f1 (coldest)
        assert db.peek("f1", "a") is None
        assert db.peek("f2", "a") is not None
        assert db.stats.evictions >= 1

    def test_cached_bytes(self, db):
        db.insert("mean", "x", 1.0)
        assert db.cached_bytes > 0


class TestRefreshVersioning:
    """Regression: refresh must never silently reset freshness to v0."""

    def test_default_keeps_entry_version(self, db):
        db.insert("mean", "x", 1.0, version=5)
        entry = db.peek("mean", "x")
        db.mark_stale(entry)
        db.refresh(entry, 2.0)
        assert entry.result == 2.0
        assert not entry.stale
        assert entry.computed_at_version == 5

    def test_explicit_version_advances(self, db):
        db.insert("mean", "x", 1.0, version=5)
        entry = db.peek("mean", "x")
        db.refresh(entry, 2.0, version=7)
        assert entry.computed_at_version == 7

    def test_version_regression_rejected(self, db):
        db.insert("mean", "x", 1.0, version=5)
        entry = db.peek("mean", "x")
        with pytest.raises(SummaryError, match="regress"):
            db.refresh(entry, 2.0, version=3)
        # The entry is untouched by the rejected refresh.
        assert entry.result == 1.0
        assert entry.computed_at_version == 5
