"""Tests for Summary Database entries and result encoding."""

import pytest

from repro.core.errors import SummaryError
from repro.relational.types import NA
from repro.summary.entries import SummaryEntry, SummaryKey, decode_result, encode_result


class TestKey:
    def test_primary_attribute(self):
        key = SummaryKey("pearson", ("a", "b"))
        assert key.primary_attribute == "a"
        assert str(key) == "pearson(a, b)"

    def test_validation(self):
        with pytest.raises(SummaryError):
            SummaryKey("", ("a",))
        with pytest.raises(SummaryError):
            SummaryKey("f", ())

    def test_hashable(self):
        assert SummaryKey("f", ("a",)) == SummaryKey("f", ("a",))
        assert len({SummaryKey("f", ("a",)), SummaryKey("f", ("a",))}) == 1


class TestEntry:
    def test_mark_fresh(self):
        entry = SummaryEntry(key=SummaryKey("mean", ("x",)), result=1.0)
        entry.stale = True
        entry.pending_updates = 7
        entry.mark_fresh(version=12)
        assert not entry.stale
        assert entry.pending_updates == 0
        assert entry.computed_at_version == 12

    def test_size_reflects_result(self):
        scalar = SummaryEntry(key=SummaryKey("mean", ("x",)), result=1.0)
        vector = SummaryEntry(key=SummaryKey("resid", ("x",)), result=[0.0] * 100)
        assert vector.size_bytes > scalar.size_bytes * 10


class TestEncoding:
    """The 'varying length' third column of Figure 4."""

    @pytest.mark.parametrize(
        "value",
        [
            NA,
            3.5,
            -17,
            0,
            True,
            "a label",
            "",
            (1.5, 9.5),  # a (min, max) pair
            [1.0, 2.0, NA, 4.0],  # a vector with missing entries
            ([0.0, 1.0, 2.0], [5, 7]),  # a histogram: edges + counts
        ],
    )
    def test_roundtrip(self, value):
        decoded = decode_result(encode_result(value))
        if isinstance(value, bool):
            assert decoded == int(value)
        elif isinstance(value, tuple) and not isinstance(value[0], list):
            assert tuple(decoded) == value
        elif isinstance(value, tuple):
            assert (list(decoded[0]), list(decoded[1])) == (list(value[0]), list(value[1]))
        elif isinstance(value, list):
            assert decoded == value
        else:
            assert decoded == value or (value is NA and decoded is NA)

    def test_histogram_distinguished_from_pair(self):
        histogram = ([0.0, 1.0, 2.0], [3, 4])
        pair = (1.0, 2.0)
        assert encode_result(histogram)[0] == 0x05
        assert encode_result(pair)[0] == 0x06

    def test_varying_lengths(self):
        assert len(encode_result(1.0)) != len(encode_result([1.0] * 50))

    def test_unknown_type_rejected(self):
        with pytest.raises(SummaryError):
            encode_result({"a": 1})

    def test_corrupt_tag_rejected(self):
        with pytest.raises(SummaryError):
            decode_result(b"\xff")
