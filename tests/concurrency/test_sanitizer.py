"""Runtime :class:`LockOrderSanitizer` behaviour.

The centrepiece is the dynamic half of the inverted two-lock acceptance
test: the *same* ``Pair`` fixture that ``tests/lint/test_concurrency_lint.py``
flags statically (REPRO-C201) must also be caught at runtime, both as a
raw inversion and as a contradiction of the fixture's own static model.
"""

import threading

import pytest

from repro.concurrency import (
    LockManager,
    LockMode,
    LockOrderSanitizer,
    SanitizedLatch,
    current_sanitizer,
    install_sanitizer,
    make_latch,
)
from repro.concurrency.sanitizer import classify_resource
from repro.lint.concurrency import LockSite, analyze_files

from tests.lint.test_concurrency_lint import INVERTED_PAIR_SOURCE


@pytest.fixture
def sanitizer():
    """An installed sanitizer, always uninstalled afterwards."""
    active = install_sanitizer(LockOrderSanitizer())
    try:
        yield active
    finally:
        install_sanitizer(None)


class Pair:
    """Runtime twin of the static fixture: two latches, both nest orders."""

    def __init__(self):
        self.a_latch = make_latch("Pair.a_latch")
        self.b_latch = make_latch("Pair.b_latch")

    def forward(self):
        with self.a_latch:
            with self.b_latch:
                return 1

    def backward(self):
        with self.b_latch:
            with self.a_latch:
                return 2


class TestInvertedPairFixture:
    def test_inversion_detected_dynamically(self, sanitizer):
        pair = Pair()
        pair.forward()
        pair.backward()
        assert sanitizer.inversions() == [
            ("latch:Pair.a_latch", "latch:Pair.b_latch")
        ]

    def test_runtime_contradicts_the_fixture_static_model(self, sanitizer):
        # The static model of the same source predicts both orders; a run
        # that exercises either one therefore contradicts the closure of
        # the other — the static and dynamic halves agree on the bug.
        model = analyze_files([("pair.py", "/fixtures/pair.py",
                                INVERTED_PAIR_SOURCE)])
        static_edges = model.lock_order_edges()
        assert ("latch:Pair.a_latch", "latch:Pair.b_latch") in static_edges
        assert ("latch:Pair.b_latch", "latch:Pair.a_latch") in static_edges

        Pair().forward()
        assert sanitizer.static_violations(static_edges) == [
            ("latch:Pair.a_latch", "latch:Pair.b_latch")
        ]

    def test_consistent_order_reports_nothing(self, sanitizer):
        pair = Pair()
        pair.forward()
        pair.forward()
        assert sanitizer.inversions() == []
        assert sanitizer.observed_edges() == {
            ("latch:Pair.a_latch", "latch:Pair.b_latch")
        }


class TestEdgeRecording:
    def test_reentrant_acquire_is_not_a_self_edge(self, sanitizer):
        sanitizer.note_acquire("latch:X", "latch:X")
        sanitizer.note_acquire("latch:X", "latch:X")
        sanitizer.note_release("latch:X")
        sanitizer.note_release("latch:X")
        assert sanitizer.observed_edges() == set()
        assert sanitizer.acquisitions == 2

    def test_distinct_resources_of_one_class_do_not_self_invert(
        self, sanitizer
    ):
        # quiesce acquires many view locks in sorted order; raw keys keep
        # them distinct, so lock:<view> never falsely inverts with itself.
        sanitizer.note_acquire("res:alpha", "lock:<view>")
        sanitizer.note_acquire("res:beta", "lock:<view>")
        sanitizer.note_release("res:beta")
        sanitizer.note_release("res:alpha")
        assert sanitizer.inversions() == []
        assert ("lock:<view>", "lock:<view>") in sanitizer.class_edges()

    def test_cross_thread_release_is_tolerated(self, sanitizer):
        worker_done = threading.Event()

        def worker():
            sanitizer.note_acquire("res:orphan", "lock:<view>")
            worker_done.set()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert worker_done.is_set()
        # Teardown path: another thread releases what the worker held.
        sanitizer.note_release("res:orphan")  # must not raise or underflow
        sanitizer.note_acquire("res:other", "lock:<view>")
        assert sanitizer.observed_edges() == set()

    def test_release_between_acquires_breaks_the_edge(self, sanitizer):
        sanitizer.note_acquire("latch:A", "latch:A")
        sanitizer.note_release("latch:A")
        sanitizer.note_acquire("latch:B", "latch:B")
        assert sanitizer.observed_edges() == set()


class TestLockManagerIntegration:
    def test_manager_reports_with_classified_keys(self, sanitizer):
        locks = LockManager(timeout_s=1.0)
        locks.acquire("s1", "__registry__", LockMode.SHARED)
        locks.acquire("s1", "census", LockMode.EXCLUSIVE)
        locks.release("s1", "census")
        locks.release("s1", "__registry__")
        assert sanitizer.observed_keys() == {
            "res:__registry__": "lock:__registry__",
            "res:census": "lock:<view>",
        }
        assert sanitizer.observed_edges() == {
            ("res:__registry__", "res:census")
        }
        assert sanitizer.class_edges() == {
            ("lock:__registry__", "lock:<view>")
        }

    def test_manager_picks_up_sanitizer_at_construction(self):
        # Constructed with no sanitizer installed: stays uninstrumented
        # even if one is installed later (zero-overhead default).
        locks = LockManager(timeout_s=1.0)
        active = install_sanitizer(LockOrderSanitizer())
        try:
            locks.acquire("s1", "census", LockMode.SHARED)
            locks.release("s1", "census")
            assert active.acquisitions == 0
        finally:
            install_sanitizer(None)

    def test_release_all_notifies_per_resource(self, sanitizer):
        locks = LockManager(timeout_s=1.0)
        locks.acquire("s1", "a", LockMode.SHARED)
        locks.acquire("s1", "b", LockMode.SHARED)
        assert locks.release_all("s1") == 2
        # Everything released: a fresh acquire starts a new hold stack.
        locks.acquire("s1", "c", LockMode.SHARED)
        assert all(
            edge[0] != "res:c" and edge[1] != "res:c"
            for edge in sanitizer.observed_edges()
        )

    def test_shared_context_manager_is_instrumented(self, sanitizer):
        locks = LockManager(timeout_s=1.0)
        with locks.shared("s1", "census"):
            pass
        assert "res:census" in sanitizer.observed_keys()


class TestMakeLatch:
    def test_plain_mutex_without_sanitizer(self):
        assert current_sanitizer() is None
        latch = make_latch("Pair.a_latch")
        assert not isinstance(latch, SanitizedLatch)

    def test_plain_mutex_when_unnamed(self, sanitizer):
        assert not isinstance(make_latch(), SanitizedLatch)

    def test_sanitized_when_named_and_installed(self, sanitizer):
        latch = make_latch("Demo.latch")
        assert isinstance(latch, SanitizedLatch)
        assert latch.key == "latch:Demo.latch"
        with latch:
            assert latch.locked()
        assert not latch.locked()
        assert "latch:Demo.latch" in sanitizer.observed_keys()


class TestClassification:
    def test_reserved_resources_keep_identity(self):
        assert classify_resource("__registry__") == "lock:__registry__"
        assert classify_resource("__checkpoint__") == "lock:__checkpoint__"

    def test_views_collapse(self):
        assert classify_resource("census") == "lock:<view>"
        assert classify_resource("smokers_ok") == "lock:<view>"


class TestCoverage:
    def test_coverage_matches_by_file_and_function(self, sanitizer):
        locks = LockManager(timeout_s=1.0)
        with locks.shared("s1", "census"):
            pass
        exercised = LockSite(
            key="lock:<view>",
            kind="manager",
            path="src/repro/concurrency/locks.py",
            line=249,
            function="LockManager.shared",
            has_timeout=True,
            guarded=True,
        )
        untouched = LockSite(
            key="lock:<view>",
            kind="manager",
            path="src/repro/concurrency/transactions.py",
            line=1,
            function="TransactionCoordinator.quiesce",
            has_timeout=True,
            guarded=True,
        )
        hit, missed = sanitizer.coverage([exercised, untouched])
        assert hit == [exercised]
        assert missed == [untouched]
