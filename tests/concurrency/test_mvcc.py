"""MVCC version-chain tests: reclamation, pinning, copy-on-write, teardown.

The reclamation contract under test: a pinned old version survives any
number of publications and is reclaimed only after its last reader
releases — including the release driven by the server's disconnect
teardown (``coordinator.release``), which must make an in-flight read's
own exit-time unpin a harmless no-op.
"""

import threading

import pytest

from repro.concurrency import ConcurrentTracer, TransactionCoordinator
from repro.core.dbms import StatisticalDBMS
from repro.core.errors import SnapshotError
from repro.relational.expressions import col
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.server import AnalystServer, ServerClient, ServerThread
from repro.views.materialize import SourceNode, ViewDefinition


def build_coordinator(tracer=None):
    dbms = StatisticalDBMS(tracer=tracer)
    schema = Schema([measure("x"), measure("y")])
    rows = [(float(i), float(i * 2)) for i in range(10)]
    dbms.load_raw(Relation("census", schema, rows))
    dbms.create_view(ViewDefinition("v", SourceNode("census")), analyst="alice")
    return TransactionCoordinator(dbms, tracer=tracer)


def write_once(coord, sid, value):
    with coord.write(sid, "v") as session:
        # Offset past the seeded y values so every write really changes
        # the cell (a no-op assignment could publish as a no-op).
        session.update(col("x") == 0.0, {"y": 100.0 + value})


class TestReclamation:
    def test_unpinned_intermediates_reclaimed_immediately(self):
        coord = build_coordinator()
        chain = coord.chain("boot", "v")
        for i in range(4):
            write_once(coord, "w", float(i))
        # Nobody pins: only the head survives each publication.
        assert len(chain.live()) == 1
        assert chain.seq == 5  # bootstrap + 4 writes

    def test_pinned_version_survives_publishes(self):
        coord = build_coordinator()
        chain = coord.chain("boot", "v")
        pinned = chain.pin("reader")
        for i in range(5):
            write_once(coord, "w", float(i))
        live = chain.live()
        # Exactly the pinned original and the current head survive.
        assert [v.seq for v in live] == [pinned.seq, chain.seq]
        assert chain.pins() == {pinned.seq: {"reader": 1}}
        # The frozen state is still fully readable mid-churn.
        assert pinned.columns["x"] == tuple(float(i) for i in range(10))

    def test_reclaimed_only_after_last_reader_releases(self):
        coord = build_coordinator()
        chain = coord.chain("boot", "v")
        pinned = chain.pin("r1")
        also = chain.pin("r2")
        assert also is pinned
        write_once(coord, "w", 1.0)
        chain.unpin("r1", pinned)
        assert [v.seq for v in chain.live()] == [pinned.seq, chain.seq]
        chain.unpin("r2", pinned)
        assert [v.seq for v in chain.live()] == [chain.seq]

    def test_unpin_is_idempotent(self):
        coord = build_coordinator()
        chain = coord.chain("boot", "v")
        pinned = chain.pin("r1")
        chain.unpin("r1", pinned)
        chain.unpin("r1", pinned)  # already gone: no error, no underflow
        assert chain.pins() == {}

    def test_pin_before_any_publication_raises(self):
        coord = build_coordinator()
        from repro.concurrency.mvcc import VersionChain

        chain = VersionChain("v")
        del coord
        with pytest.raises(SnapshotError, match="no published version"):
            chain.pin("r1")

    def test_release_all_drops_every_pin_for_the_sid(self):
        coord = build_coordinator()
        chain = coord.chain("boot", "v")
        old = chain.pin("r1")
        chain.pin("r1")  # refcount 2 on the same version
        write_once(coord, "w", 1.0)
        newer = chain.pin("r1")
        assert newer is not old
        assert chain.release_all("r1") == 3
        assert chain.pins() == {}
        assert [v.seq for v in chain.live()] == [chain.seq]


class TestDisconnectTeardown:
    def test_release_mid_read_is_safe_and_reclaims(self):
        # The server's disconnect path calls coordinator.release(sid) even
        # while that session's read may still be in flight on a worker
        # thread.  The release drops the pin; the read keeps serving its
        # immutable version and its exit-time unpin is a no-op.
        coord = build_coordinator()
        in_read = threading.Event()
        proceed = threading.Event()
        outcome = {}

        def reader():
            try:
                with coord.read("ghost", "v") as snap:
                    in_read.set()
                    proceed.wait(5)
                    outcome["sum"] = snap.compute("sum", "x")
            except Exception as exc:  # noqa: BLE001 - asserted below
                outcome["error"] = exc

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        assert in_read.wait(5)
        coord.release("ghost")  # what server._teardown drives on disconnect
        chain = coord.chain("boot", "v")
        assert chain.pins() == {}
        write_once(coord, "w", 1.0)
        # The ghost's old version is already gone: nothing pins it.
        assert len(chain.live()) == 1
        proceed.set()
        thread.join(5)
        assert "error" not in outcome, outcome
        assert outcome["sum"] == pytest.approx(45.0)
        assert chain.pins() == {}

    def test_server_disconnect_releases_and_chain_stays_bounded(self):
        tracer = ConcurrentTracer()
        coord = build_coordinator(tracer)
        server = AnalystServer(coord.dbms, coordinator=coord, tracer=tracer)
        thread = ServerThread(server).start()
        try:
            with ServerClient(port=thread.port, timeout_s=10) as conn:
                conn.handshake("hopper")
                conn.open_view("v")
                conn.query("v", "mean", "x")
                conn.update("v", {"y": 7.0})
                conn.query("v", "sum", "y")
            # Disconnect ran the teardown: the wire sid (s1, s2, ...)
            # holds no pins — only replica workers' sticky pins remain.
            chain = coord.chain("boot", "v")
            deadline = threading.Event()
            deadline.wait(0.2)  # let the async close drain
            assert all(
                sid.startswith("__replica:")
                for holders in chain.pins().values()
                for sid in holders
            )
            # More writes: replica workers re-pin forward, the chain never
            # accumulates history beyond pinned replicas + head.
            with ServerClient(port=thread.port, timeout_s=10) as conn:
                conn.handshake("grace")
                conn.open_view("v")
                for i in range(5):
                    conn.update("v", {"y": float(i)})
                    conn.query("v", "sum", "y")
            assert len(chain.live()) <= server.read_workers + 1
            totals = tracer.counter_totals()
            assert totals.get("mvcc.repin", 0) >= 1
            assert totals.get("mvcc.reclaim", 0) >= 1
        finally:
            thread.stop()


class TestCopyOnWrite:
    def test_untouched_columns_are_shared_by_reference(self):
        tracer = ConcurrentTracer()
        coord = build_coordinator(tracer)
        chain = coord.chain("boot", "v")
        before = chain.pin("r1")
        with coord.write("w", "v") as session:
            session.update(col("x") == 0.0, {"y": 99.0})
        after = chain.latest()
        assert after is not before
        # "y" changed: fresh chunk.  "x" did not: the frozen tuple is the
        # very same object, not a copy.
        assert after.columns["y"] != before.columns["y"]
        assert after.columns["x"] is before.columns["x"]
        totals = tracer.counter_totals()
        assert totals.get("mvcc.cow_shared", 0) >= 1
        assert totals.get("mvcc.cow_copied", 0) >= 1

    def test_undo_invalidates_sharing_for_the_restored_column(self):
        coord = build_coordinator()
        chain = coord.chain("boot", "v")
        with coord.write("w", "v") as session:
            session.update(col("x") == 0.0, {"y": 99.0})
        touched = chain.latest()
        with coord.write("w", "v") as session:
            session.undo(1)
        restored = chain.latest()
        # The undo bumped y's epoch: no stale share of the pre-undo chunk.
        assert restored.columns["y"] != touched.columns["y"]
        assert restored.columns["y"] == tuple(float(i * 2) for i in range(10))


class TestVersionMemo:
    def test_repeated_compute_hits_the_version_memo(self):
        tracer = ConcurrentTracer()
        coord = build_coordinator(tracer)
        with coord.read("s1", "v") as snap:
            first = snap.compute("sum", "x")
        with coord.read("s2", "v") as snap:
            # Same pinned version: the result is served from its memo.
            assert snap.compute("sum", "x") == first
        totals = tracer.counter_totals()
        assert totals.get("mvcc.memo_hit", 0) >= 1

    def test_publication_summary_snapshot_is_served(self):
        # A result the *writer* cached in the live Summary Database is
        # captured at publication and served without recompute.
        coord = build_coordinator()
        session = coord.session("warm", "v")
        session.compute("mean", "x")  # fills the live summary cache
        with coord.write("w", "v") as ws:
            ws.update(col("x") == 999.0, {"y": 0.0})  # no-op match, publishes
        with coord.read("s1", "v") as snap:
            hit, value = snap.pinned.cached(("mean", ("x",)))
            assert hit
            assert snap.compute("mean", "x") == pytest.approx(value)
