"""Model summary entries under MVCC snapshot isolation (ISSUE 9).

A fitted model published in a :class:`ViewVersion`'s summary snapshot is
frozen: a pinned reader keeps serving the pre-publish fit while a writer
refits (or warm-updates) the live entry, and an in-flight write's fit is
invisible until its publication point.
"""

import pytest

from repro.concurrency import TransactionCoordinator
from repro.core.dbms import StatisticalDBMS
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.stats.regression import model_from_summary
from repro.views.materialize import SourceNode, ViewDefinition

MODEL_KEY = ("ols_model", ("y", "x"))


def build_coordinator():
    dbms = StatisticalDBMS()
    schema = Schema([measure("x"), measure("y")])
    rows = [(float(i), 2.0 * i + 1.0) for i in range(12)]
    dbms.load_raw(Relation("census", schema, rows))
    dbms.create_view(ViewDefinition("v", SourceNode("census")), analyst="alice")
    return TransactionCoordinator(dbms)


def fit_in_write(coord, sid="writer"):
    with coord.write(sid, "v") as session:
        return session.fit_model("y", ["x"])


class TestPinnedReaderIsolation:
    def test_pinned_reader_sees_pre_publish_fit_during_refit(self):
        coord = build_coordinator()
        first = fit_in_write(coord)
        chain = coord.chain("boot", "v")
        pinned = chain.pin("reader")
        hit, frozen = pinned.cached(MODEL_KEY)
        assert hit
        assert frozen[3:] == pytest.approx((1.0, 2.0))

        # Writer warm-updates the model and publishes a new version.
        with coord.write("writer", "v") as session:
            session.update_cells("y", [(0, 500.0)])
            refit = session.fit_model("y", ["x"])
        assert list(refit.coefficients) != pytest.approx(
            list(first.coefficients)
        )

        # The pinned version still serves the exact pre-publish tuple...
        hit, still = pinned.cached(MODEL_KEY)
        assert hit and still == frozen
        model = model_from_summary("y", ["x"], still)
        assert list(model.coefficients) == pytest.approx([1.0, 2.0])
        # ...while the head carries the refreshed fit.
        hit, head_fit = chain.latest().cached(MODEL_KEY)
        assert hit
        assert head_fit[3:] == pytest.approx(tuple(refit.coefficients))
        chain.unpin("reader", pinned)

    def test_in_flight_fit_invisible_until_publication(self):
        coord = build_coordinator()
        # Bootstrap one published version with no model entry.
        with coord.write("writer", "v") as session:
            session.compute("mean", "x")
        chain = coord.chain("boot", "v")
        pinned = chain.pin("reader")
        with coord.write("writer", "v") as session:
            session.fit_model("y", ["x"])
            # A data change too: summary-only writes republish nothing
            # (publication dedupes on the view-version high-water mark).
            # Both cells move so the point stays on y = 2x + 1.
            session.update_cells("x", [(11, 20.0)])
            session.update_cells("y", [(11, 41.0)])
            # Mid-transaction: the pinned snapshot has no model key.
            hit, _ = pinned.cached(MODEL_KEY)
            assert not hit
        # Published now — but only to *newly pinned* versions.
        hit, _ = pinned.cached(MODEL_KEY)
        assert not hit
        fresh = chain.pin("late-reader")
        hit, fit = fresh.cached(MODEL_KEY)
        assert hit
        assert fit[3:] == pytest.approx((1.0, 2.0))
        chain.unpin("reader", pinned)
        chain.unpin("late-reader", fresh)

    def test_stale_model_left_out_of_snapshot(self):
        """An invalidated fit is excluded from publication: readers
        recompute rather than see a wrong model."""
        coord = build_coordinator()
        fit_in_write(coord)
        with coord.write("writer", "v") as session:
            session.update_cells("y", [(0, 500.0)])
            entry = session.view.summary.peek("ols_model", ("y", "x"))
            session.view.summary.mark_stale(entry)
        hit, _ = coord.chain("boot", "v").latest().cached(MODEL_KEY)
        assert not hit

    def test_sketch_entries_publish_and_freeze(self):
        coord = build_coordinator()
        with coord.write("writer", "v") as session:
            session.compute("approx_median", "x")
            session.compute("approx_distinct", "x")
        chain = coord.chain("boot", "v")
        pinned = chain.pin("reader")
        hit, median = pinned.cached(("approx_median", ("x",)))
        assert hit and median == pytest.approx(5.5)
        hit, distinct = pinned.cached(("approx_distinct", ("x",)))
        assert hit and distinct == 12
        with coord.write("writer", "v") as session:
            session.update_cells("x", [(0, 999.0)])
        hit, frozen = pinned.cached(("approx_median", ("x",)))
        assert hit and frozen == pytest.approx(5.5)  # still the old answer
        chain.unpin("reader", pinned)
