"""Seeded-violation tests for the AST lint passes (layer 2)."""

import textwrap

from repro.lint.astlint import lint_source
from repro.lint.findings import parse_suppressions


def lint(code, path="scratch/module.py", select=None):
    return lint_source(textwrap.dedent(code), path, select=select)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestMutableDefault:
    def test_list_display(self):
        findings = lint("def f(x, acc=[]):\n    return acc\n")
        assert "REPRO-A101" in rule_ids(findings)
        assert findings[0].line == 1

    def test_dict_set_and_calls(self):
        code = """
        def f(a={}, b=set(), c=dict(), d=list()):
            return a, b, c, d
        """
        findings = lint(code, select={"REPRO-A101"})
        assert len(findings) == 4

    def test_keyword_only_default(self):
        findings = lint("def f(*, acc=[]):\n    return acc\n")
        assert rule_ids(findings) == ["REPRO-A101"]

    def test_immutable_defaults_pass(self):
        code = """
        def f(a=None, b=0, c=(), d="x", e=frozenset()):
            return a, b, c, d, e
        """
        assert lint(code) == []

    def test_nested_function_checked(self):
        code = """
        def outer():
            def inner(xs=[]):
                return xs
            return inner
        """
        assert "REPRO-A101" in rule_ids(lint(code))


class TestBareExcept:
    def test_flagged(self):
        code = """
        try:
            risky()
        except:
            pass
        """
        findings = lint(code, select={"REPRO-A102"})
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_typed_except_passes(self):
        code = """
        try:
            risky()
        except (ValueError, KeyError):
            pass
        except Exception:
            pass
        """
        assert lint(code, select={"REPRO-A102"}) == []


class TestViewMutation:
    CODE = """
    def sneak(view):
        view.set_value(0, "AGE", 99)
    """

    def test_flagged_outside_update_layer(self):
        findings = lint(self.CODE, path="src/repro/stats/sneaky.py")
        assert rule_ids(findings) == ["REPRO-A103"]

    def test_allowed_in_update_layer(self):
        findings = lint(self.CODE, path="src/repro/views/updates.py")
        assert findings == []

    def test_allowed_in_view_wrapper(self):
        findings = lint(self.CODE, path="src/repro/views/view.py")
        assert findings == []


class TestCacheBypass:
    def test_stale_result_maintainer_writes_flagged(self):
        code = """
        def sneak(entry):
            entry.stale = True
            entry.result = 42
            entry.maintainer = None
        """
        findings = lint(code, path="src/repro/core/sneaky.py")
        assert rule_ids(findings) == ["REPRO-A104"] * 3

    def test_augmented_write_flagged(self):
        code = """
        def sneak(entry):
            entry.result += 1
        """
        assert rule_ids(lint(code, path="src/repro/core/sneaky.py")) == ["REPRO-A104"]

    def test_self_state_is_fine(self):
        code = """
        class Derivation:
            def refresh(self):
                self.stale = False
                self.result = 1
        """
        assert lint(code, path="src/repro/core/sneaky.py") == []

    def test_allowed_in_rules_module(self):
        code = """
        def apply(entry):
            entry.stale = True
        """
        assert lint(code, path="src/repro/metadata/rules.py") == []

    def test_other_attributes_untouched(self):
        code = """
        def touch(entry):
            entry.pending_updates += 1
            entry.hit_count = 3
        """
        assert lint(code, path="src/repro/core/sneaky.py") == []


class TestExports:
    def test_phantom_export_flagged(self):
        code = """
        __all__ = ["exists", "phantom"]

        def exists():
            return 1
        """
        findings = lint(code, select={"REPRO-A105"})
        assert len(findings) == 1
        assert "phantom" in findings[0].message

    def test_package_reexport_omission_flagged(self):
        code = """
        from repro.somewhere import Thing, Other

        __all__ = ["Thing"]
        """
        findings = lint(code, path="src/repro/pkg/__init__.py", select={"REPRO-A105"})
        assert len(findings) == 1
        assert "Other" in findings[0].message

    def test_private_imports_exempt(self):
        code = """
        from repro.somewhere import Thing, _helper

        __all__ = ["Thing"]
        """
        assert lint(code, path="src/repro/pkg/__init__.py") == []

    def test_non_init_modules_only_check_existence(self):
        code = """
        from repro.somewhere import Unlisted

        __all__ = ["local"]

        def local():
            return Unlisted
        """
        assert lint(code, path="src/repro/stats/module.py") == []

    def test_no_all_no_findings(self):
        assert lint("from x import y\n", path="src/repro/pkg/__init__.py") == []


class TestSuppressions:
    def test_line_suppression(self):
        code = "def f(xs=[]):  # repro-lint: disable=REPRO-A101\n    return xs\n"
        findings = lint(code)
        index = parse_suppressions(code)
        assert [f for f in findings if not index.suppresses(f)] == []

    def test_line_above_suppression(self):
        code = (
            "# repro-lint: disable=REPRO-A101\n"
            "def f(xs=[]):\n"
            "    return xs\n"
        )
        findings = lint(code)
        index = parse_suppressions(code)
        assert [f for f in findings if not index.suppresses(f)] == []

    def test_file_wide_suppression(self):
        code = (
            "# repro-lint: disable-file=REPRO-A101\n"
            "def f(xs=[]):\n"
            "    return xs\n"
            "def g(ys=[]):\n"
            "    return ys\n"
        )
        findings = lint(code)
        index = parse_suppressions(code)
        assert [f for f in findings if not index.suppresses(f)] == []

    def test_unrelated_rule_not_suppressed(self):
        code = "def f(xs=[]):  # repro-lint: disable=REPRO-A102\n    return xs\n"
        findings = lint(code)
        index = parse_suppressions(code)
        assert len([f for f in findings if not index.suppresses(f)]) == 1


def test_syntax_error_reported_not_raised():
    findings = lint("def broken(:\n")
    assert rule_ids(findings) == ["REPRO-A100"]


class TestRowwiseBindInVectorizedModule:
    VEC_PATH = "src/repro/relational/vectorized.py"

    def test_bind_inside_loop_flagged(self):
        code = """
        def chunks(self):
            for chunk in self.child.chunks():
                fn = self.predicate.bind(chunk.schema)
        """
        findings = lint(code, path=self.VEC_PATH, select={"REPRO-A106"})
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO-A106"

    def test_bind_inside_comprehension_flagged(self):
        code = """
        def kernels(self, chunks):
            return [expr.bind(c.schema) for c in chunks for expr in self.items]
        """
        findings = lint(code, path=self.VEC_PATH, select={"REPRO-A106"})
        assert len(findings) == 1

    def test_bind_columns_outside_loop_passes(self):
        code = """
        def __init__(self, child, predicate):
            self._fn = predicate.bind_columns(child.schema)
            for chunk in child.chunks():
                self._fn(chunk)
        """
        assert lint(code, path=self.VEC_PATH, select={"REPRO-A106"}) == []

    def test_bind_once_before_loop_passes(self):
        code = """
        def chunks(self):
            fn = self.predicate.bind(self.schema)
            for chunk in self.child.chunks():
                fn(chunk)
        """
        assert lint(code, path=self.VEC_PATH, select={"REPRO-A106"}) == []

    def test_other_modules_exempt(self):
        code = """
        def rows(self):
            for row in self.child:
                fn = self.predicate.bind(self.schema)
        """
        assert lint(code, path="src/repro/relational/operators.py", select={"REPRO-A106"}) == []


class TestTracerConstructInHotPath:
    HOT_PATH = "src/repro/core/session.py"

    def test_direct_construction_flagged(self):
        code = """
        from repro.obs.tracer import Tracer

        def __init__(self):
            self.tracer = Tracer()
        """
        findings = lint(code, path=self.HOT_PATH, select={"REPRO-A107"})
        assert len(findings) == 1
        assert findings[0].rule_id == "REPRO-A107"

    def test_attribute_construction_flagged(self):
        code = """
        import repro.obs.tracer as obs

        def make():
            return obs.Tracer()
        """
        findings = lint(code, path=self.HOT_PATH, select={"REPRO-A107"})
        assert len(findings) == 1

    def test_injection_pattern_passes(self):
        code = """
        from repro.obs.tracer import NULL_TRACER, AbstractTracer, NullTracer

        def __init__(self, tracer=None):
            self.tracer = tracer if tracer is not None else NULL_TRACER
            self.fallback = NullTracer()
        """
        assert lint(code, path=self.HOT_PATH, select={"REPRO-A107"}) == []

    def test_other_modules_exempt(self):
        code = """
        from repro.obs.tracer import Tracer

        def bench():
            return Tracer()
        """
        assert lint(code, path="benchmarks/bench_x.py", select={"REPRO-A107"}) == []
        assert lint(code, path="src/repro/bench/harness.py", select={"REPRO-A107"}) == []


class TestDurabilityIo:
    def test_constant_wal_path_flagged(self):
        code = """
        def sneak(directory):
            with open(directory / "log.wal", "rb") as handle:
                return handle.read()
        """
        findings = lint(code, path="src/repro/core/session.py", select={"REPRO-A108"})
        assert rule_ids(findings) == ["REPRO-A108"]

    def test_checkpoint_constant_flagged(self):
        code = """
        def sneak(directory):
            return open(directory / "checkpoint.json").read()
        """
        findings = lint(code, path="src/repro/core/dbms.py", select={"REPRO-A108"})
        assert rule_ids(findings) == ["REPRO-A108"]

    def test_variable_named_wal_flagged(self):
        code = """
        def sneak(wal_path):
            return open(wal_path, "ab")
        """
        findings = lint(code, path="src/repro/core/shell.py", select={"REPRO-A108"})
        assert rule_ids(findings) == ["REPRO-A108"]

    def test_attribute_receiver_flagged(self):
        code = """
        def sneak(manager):
            return manager.checkpoint_path.open("wb")
        """
        findings = lint(code, path="src/repro/core/shell.py", select={"REPRO-A108"})
        assert rule_ids(findings) == ["REPRO-A108"]

    def test_unrelated_open_passes(self):
        code = """
        def load(path):
            with open(path, "r") as handle:
                return handle.read()
        """
        assert lint(code, path="src/repro/io/csvio.py", select={"REPRO-A108"}) == []

    def test_durability_package_exempt(self):
        code = """
        def scan(path):
            return open(path.parent / "log.wal", "rb").read()
        """
        for module in (
            "src/repro/durability/wal.py",
            "src/repro/durability/checkpoint.py",
            "src/repro/durability/recovery.py",
        ):
            assert lint(code, path=module, select={"REPRO-A108"}) == []


class TestWorkspaceIo:
    def test_constant_manifest_path_flagged(self):
        code = """
        def sneak(directory):
            with open(directory / "manifest.json", "rb") as handle:
                return handle.read()
        """
        findings = lint(code, path="src/repro/core/session.py", select={"REPRO-A111"})
        assert rule_ids(findings) == ["REPRO-A111"]

    def test_variable_named_manifest_flagged(self):
        code = """
        def sneak(manifest_path):
            return open(manifest_path, "w")
        """
        findings = lint(code, path="src/repro/core/shell.py", select={"REPRO-A111"})
        assert rule_ids(findings) == ["REPRO-A111"]

    def test_replace_of_workspace_path_flagged(self):
        code = """
        import os

        def sneak(workspace_dir, tmp):
            os.replace(tmp, workspace_dir / "manifest.json")
        """
        findings = lint(code, path="src/repro/core/dbms.py", select={"REPRO-A111"})
        assert rule_ids(findings) == ["REPRO-A111"]

    def test_unrelated_open_passes(self):
        code = """
        def load(path):
            with open(path, "r") as handle:
                return handle.read()
        """
        assert lint(code, path="src/repro/io/csvio.py", select={"REPRO-A111"}) == []

    def test_workspace_package_exempt(self):
        code = """
        def scan(directory):
            return open(directory / "manifest.json", "rb").read()
        """
        for module in (
            "src/repro/workspace/manifest.py",
            "src/repro/workspace/space.py",
            "src/repro/workspace/index.py",
        ):
            assert lint(code, path=module, select={"REPRO-A111"}) == []


class TestLockConstruct:
    def test_threading_lock_flagged(self):
        code = """
        import threading

        class Cache:
            def __init__(self):
                self._latch = threading.Lock()
        """
        findings = lint(code, path="src/repro/summary/summarydb.py", select={"REPRO-A109"})
        assert rule_ids(findings) == ["REPRO-A109"]

    def test_asyncio_and_rlock_variants_flagged(self):
        code = """
        import asyncio
        import threading

        a = asyncio.Lock()
        b = threading.RLock()
        c = threading.Condition()
        d = asyncio.Semaphore(4)
        """
        findings = lint(code, path="src/repro/core/dbms.py", select={"REPRO-A109"})
        assert len(findings) == 4

    def test_from_import_spelling_flagged(self):
        code = """
        from threading import Lock

        guard = Lock()
        """
        findings = lint(code, path="src/repro/obs/tracer.py", select={"REPRO-A109"})
        assert rule_ids(findings) == ["REPRO-A109"]

    def test_concurrency_and_server_packages_exempt(self):
        code = """
        import threading

        mutex = threading.Lock()
        """
        for module in (
            "src/repro/concurrency/locks.py",
            "src/repro/concurrency/tracing.py",
            "src/repro/server/server.py",
        ):
            assert lint(code, path=module, select={"REPRO-A109"}) == []

    def test_unrelated_name_passes(self):
        code = """
        from repro.concurrency.tracing import make_latch

        class Holder:
            def __init__(self, Lock=None):
                self.latch = make_latch()
        """
        assert lint(code, path="src/repro/core/session.py", select={"REPRO-A109"}) == []

    def test_suppression_comment_honoured(self):
        code = """
        import threading

        guard = threading.Lock()  # repro-lint: disable=REPRO-A109
        """
        findings = lint(code, path="src/repro/core/dbms.py", select={"REPRO-A109"})
        index = parse_suppressions(textwrap.dedent(code))
        assert [f for f in findings if not index.suppresses(f)] == []


class TestShardWorkerIsolation:
    WORKER = "src/repro/relational/shardworker.py"

    def test_views_import_flagged(self):
        code = """
        from repro.views.view import ConcreteView
        """
        findings = lint(code, path=self.WORKER, select={"REPRO-A110"})
        assert rule_ids(findings) == ["REPRO-A110"]

    def test_summary_module_import_flagged(self):
        code = """
        import repro.summary.summarydb
        """
        findings = lint(code, path=self.WORKER, select={"REPRO-A110"})
        assert rule_ids(findings) == ["REPRO-A110"]

    def test_reexported_view_name_flagged(self):
        code = """
        from repro.core.dbms import ConcreteView
        """
        findings = lint(code, path=self.WORKER, select={"REPRO-A110"})
        assert rule_ids(findings) == ["REPRO-A110"]

    def test_write_api_call_flagged(self):
        code = """
        def run(file, request):
            file.set_value(0, 0, None)
        """
        findings = lint(code, path=self.WORKER, select={"REPRO-A110"})
        assert rule_ids(findings) == ["REPRO-A110"]
        assert ".set_value" in findings[0].message

    def test_history_record_flagged(self):
        code = """
        def run(view):
            view.history.record(None, "x", [])
        """
        findings = lint(code, path=self.WORKER, select={"REPRO-A110"})
        assert rule_ids(findings) == ["REPRO-A110"]

    def test_read_only_worker_passes(self):
        code = """
        from repro.relational.vectorized import VecScan
        from repro.storage.transposed import TransposedFile

        def run_partial(file, request):
            return [sum(chunk) for chunk in file.scan_column(0)]
        """
        assert lint(code, path=self.WORKER, select={"REPRO-A110"}) == []

    def test_other_modules_exempt(self):
        code = """
        from repro.views.view import ConcreteView

        def apply(view):
            view.set_value(0, "x", 1)
        """
        assert lint(code, path="src/repro/relational/sharded.py", select={"REPRO-A110"}) == []
