"""Seeded-violation tests for the semantic rule-soundness checks (layer 1).

Each test wires a deliberately broken registry/rule-repository and asserts
the corresponding REPRO-Sxxx rule fires with a usable message.
"""

import pytest

from repro.core.errors import RuleError
from repro.incremental.aggregates import IncrementalMean
from repro.lint.semantic import (
    check_algebraic_definitions,
    check_invalidation_paths,
    check_live_maintainers,
    check_order_statistics,
    check_registry_coherence,
    run_semantic_checks,
)
from repro.metadata.functions import FunctionRegistry, ResultKind, StatFunction
from repro.metadata.rules import RuleRepository
from repro.stats import descriptive as desc


@pytest.fixture
def registry():
    return FunctionRegistry()


def _mean(values):
    return desc.mean(values)


def rule_ids(findings):
    return {f.rule_id for f in findings}


class TestCoherence:
    def test_default_wiring_is_coherent(self, registry):
        findings = list(
            check_registry_coherence(registry, RuleRepository(registry))
        )
        assert findings == []

    def test_broken_rule_repository_reported(self, registry):
        class BrokenRepo:
            def rule_for(self, name):
                raise RuleError(f"no rule for {name!r}")

        findings = list(check_registry_coherence(registry, BrokenRepo()))
        assert findings  # one per registered function
        assert rule_ids(findings) == {"REPRO-S001"}
        assert any("rule_for('count')" in f.message for f in findings)

    def test_rule_without_rulekind_reported(self, registry):
        class KindlessRule:
            kind = "not-a-kind"

        class KindlessRepo:
            def rule_for(self, name):
                return KindlessRule()

        findings = list(check_registry_coherence(registry, KindlessRepo()))
        assert rule_ids(findings) == {"REPRO-S001"}


class TestLiveMaintainers:
    def test_default_wiring_has_live_maintainers(self, registry):
        findings = list(check_live_maintainers(registry, RuleRepository(registry)))
        assert findings == []

    def test_raising_factory_reported(self, registry):
        def exploding_factory(provider):
            raise RuntimeError("no maintainer here")

        registry.register(
            StatFunction("broken_inc", _mean, ResultKind.SCALAR, exploding_factory)
        )
        findings = list(check_live_maintainers(registry, RuleRepository(registry)))
        assert [f for f in findings if "broken_inc" in f.message]
        assert rule_ids(findings) == {"REPRO-S002"}

    def test_non_computation_maintainer_reported(self, registry):
        registry.register(
            StatFunction(
                "bogus_inc", _mean, ResultKind.SCALAR, lambda provider: object()
            )
        )
        findings = list(check_live_maintainers(registry, RuleRepository(registry)))
        assert any(
            "bogus_inc" in f.message and "not an IncrementalComputation" in f.message
            for f in findings
        )

    def test_divergent_maintainer_reported(self, registry):
        class WrongMean(IncrementalMean):
            @property
            def value(self):
                base = IncrementalMean.value.fget(self)
                return base if base is None else base + 1.0  # off by one

        def factory(provider):
            maintainer = WrongMean()
            maintainer.initialize(provider())
            return maintainer

        registry.register(
            StatFunction("drifting_mean", _mean, ResultKind.SCALAR, factory)
        )
        findings = list(check_live_maintainers(registry, RuleRepository(registry)))
        assert any(
            "drifting_mean" in f.message and "diverged" in f.message
            for f in findings
        )


class TestOrderStatistics:
    def test_default_wiring_uses_windows(self, registry):
        findings = list(check_order_statistics(registry, RuleRepository(registry)))
        assert findings == []

    def test_algebraic_median_reported(self, registry):
        # Seeding the paper's own trap: pretending finite differencing can
        # maintain an order statistic.
        def fake_factory(provider):
            maintainer = IncrementalMean()
            maintainer.initialize(provider())
            return maintainer

        registry.register(
            StatFunction("median", desc.median, ResultKind.SCALAR, fake_factory)
        )
        findings = list(check_order_statistics(registry, RuleRepository(registry)))
        assert rule_ids(findings) == {"REPRO-S003"}
        assert "median" in findings[0].message


class TestAlgebraicDefinitions:
    def test_shipped_definitions_sound(self):
        assert list(check_algebraic_definitions()) == []

    def test_rogue_operator_reported(self):
        findings = list(
            check_algebraic_definitions({"bad": ("sort", ("sum",))})
        )
        assert rule_ids(findings) == {"REPRO-S004"}

    def test_rogue_base_measure_reported(self):
        # _collect_measures rejects unknown heads, so an unknown *measure*
        # surfaces as an out-of-algebra definition either way.
        findings = list(
            check_algebraic_definitions({"bad": ("div", ("summax",), ("count",))})
        )
        assert rule_ids(findings) == {"REPRO-S004"}


class TestInvalidationPaths:
    def test_default_wiring_invalidates(self, registry):
        findings = list(
            check_invalidation_paths(registry, RuleRepository(registry))
        )
        assert findings == []

    def test_unencodable_result_reported(self, registry):
        class Opaque:
            pass

        registry.register(
            StatFunction(
                "opaque", lambda values: Opaque(), ResultKind.SCALAR, None
            )
        )
        findings = list(
            check_invalidation_paths(registry, RuleRepository(registry))
        )
        assert any(
            f.rule_id == "REPRO-S006" and "opaque" in f.message for f in findings
        )


class TestRunner:
    def test_default_package_wiring_clean(self):
        assert run_semantic_checks() == []

    def test_select_restricts_rules(self, registry):
        class BrokenRepo:
            def rule_for(self, name):
                raise RuleError("broken")

        findings = run_semantic_checks(
            registry=registry, rules=BrokenRepo(), select={"REPRO-S005"}
        )
        assert findings == []  # S001 violations exist but were not selected

    def test_findings_have_anchors(self, registry):
        class BrokenRepo:
            def rule_for(self, name):
                raise RuleError("broken")

        findings = run_semantic_checks(registry=registry, rules=BrokenRepo())
        assert findings
        for finding in findings:
            assert finding.path
            assert finding.line >= 1
            rendered = finding.render()
            assert finding.rule_id in rendered and ":" in rendered
