"""The ``python -m repro.lint`` command line: formats and exit codes."""

import json
import textwrap

import pytest

from repro.lint.cli import main


@pytest.fixture
def seeded_file(tmp_path):
    """A scratch fixture with one A101 and one A102 violation."""
    bad = tmp_path / "seeded.py"
    bad.write_text(
        textwrap.dedent(
            """
            def f(x, acc=[]):
                try:
                    acc.append(x)
                except:
                    pass
                return acc
            """
        )
    )
    return bad


def test_clean_run_exits_zero(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "0 errors" in out


def test_seeded_violation_exits_nonzero(seeded_file, capsys):
    code = main(["--no-semantic", str(seeded_file)])
    assert code == 1
    out = capsys.readouterr().out
    # The acceptance-criteria report shape: file:line rule-id message
    assert f"{seeded_file}:2 REPRO-A101" in out
    assert f"{seeded_file}:5 REPRO-A102" in out


def test_json_format(seeded_file, capsys):
    code = main(["--no-semantic", "--format", "json", str(seeded_file)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    rules = [f["rule"] for f in payload["findings"]]
    assert rules == ["REPRO-A101", "REPRO-A102"]
    assert all(f["line"] > 0 and f["path"] for f in payload["findings"])


def test_select_filters_rules(seeded_file, capsys):
    code = main(["--no-semantic", "--select", "REPRO-A102", str(seeded_file)])
    assert code == 1
    out = capsys.readouterr().out
    assert "REPRO-A102" in out and "REPRO-A101" not in out


def test_ignore_drops_rules(seeded_file, capsys):
    code = main(["--no-semantic", "--ignore", "REPRO-A101", str(seeded_file)])
    assert code == 1
    out = capsys.readouterr().out
    assert "REPRO-A102" in out and "REPRO-A101" not in out


def test_ignoring_every_finding_exits_zero(seeded_file, capsys):
    code = main(
        ["--no-semantic", "--ignore", "REPRO-A101,REPRO-A102", str(seeded_file)]
    )
    assert code == 0
    assert "0 errors" in capsys.readouterr().out


def test_github_format(seeded_file, capsys):
    code = main(["--no-semantic", "--format", "github", str(seeded_file)])
    assert code == 1
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert lines[0].startswith(
        f"::error file={seeded_file},line=2,title=REPRO-A101::"
    )
    assert all("\n" not in line for line in lines)


def test_github_format_escapes_reserved_characters():
    from repro.lint.cli import render_github_annotation
    from repro.lint.findings import Finding, Severity

    finding = Finding(
        rule_id="REPRO-C201",
        path="x.py",
        line=3,
        message="cycle: a -> b\nand 100% back",
        severity=Severity.ERROR,
    )
    rendered = render_github_annotation(finding)
    assert "\n" not in rendered
    assert "%0A" in rendered and "%25" in rendered


def test_unknown_rule_is_usage_error(capsys):
    assert main(["--select", "NOPE-123"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_unknown_ignore_rule_is_usage_error(capsys):
    assert main(["--ignore", "NOPE-123"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_select_concurrency_rule_runs_layer_three(tmp_path, capsys):
    from tests.lint.test_concurrency_lint import INVERTED_PAIR_SOURCE

    pair = tmp_path / "pair.py"
    pair.write_text(INVERTED_PAIR_SOURCE)
    code = main(["--no-semantic", "--select", "REPRO-C201", str(pair)])
    assert code == 1
    assert "REPRO-C201" in capsys.readouterr().out


def test_no_concurrency_skips_layer_three(tmp_path, capsys):
    from tests.lint.test_concurrency_lint import INVERTED_PAIR_SOURCE

    pair = tmp_path / "pair.py"
    pair.write_text(INVERTED_PAIR_SOURCE)
    # --no-ast too: the fixture's direct threading.Lock() trips REPRO-A109.
    code = main(["--no-semantic", "--no-ast", "--no-concurrency", str(pair)])
    assert code == 0
    assert "REPRO-C201" not in capsys.readouterr().out


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REPRO-A101", "REPRO-A105", "REPRO-S001", "REPRO-S006"):
        assert rule_id in out


def test_suppression_comment_silences(tmp_path, capsys):
    good = tmp_path / "suppressed.py"
    good.write_text(
        "def f(xs=[]):  # repro-lint: disable=REPRO-A101\n    return xs\n"
    )
    assert main(["--no-semantic", str(good)]) == 0
    assert "1 suppressed" in capsys.readouterr().out


def test_seeded_incremental_rule_without_maintainer_detected():
    """The ISSUE acceptance scenario, driven programmatically: wiring that

    claims INCREMENTAL but cannot build a maintainer is a finding."""
    from repro.lint import run_lint
    from repro.metadata.functions import FunctionRegistry, ResultKind, StatFunction
    from repro.metadata.rules import RuleRepository

    registry = FunctionRegistry()

    def no_maintainer(provider):
        raise RuntimeError("maintainer lost")

    registry.register(
        StatFunction(
            "phantom_inc",
            lambda values: 0.0,
            ResultKind.SCALAR,
            no_maintainer,
        )
    )
    report = run_lint(
        ast_checks=False, registry=registry, rules=RuleRepository(registry)
    )
    assert report.exit_code == 1
    assert any(
        f.rule_id == "REPRO-S002" and "phantom_inc" in f.message
        for f in report.findings
    )
