"""Tier-1 gate: the full linter runs clean over the shipped codebase.

This is the check the tentpole exists for — every future PR that breaks a
maintenance contract (a function claiming INCREMENTAL with no working
maintainer, a cache-entry write sneaking around the rule repository, a
drifted ``__all__``) fails here, before any runtime symptom.
"""

from pathlib import Path

from repro.lint import run_lint

PACKAGE_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_package_sources_exist():
    assert PACKAGE_ROOT.is_dir()


def test_full_linter_is_clean():
    report = run_lint(targets=[PACKAGE_ROOT])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"repro.lint found violations:\n{rendered}"
    assert report.exit_code == 0
    assert report.files_checked > 50  # the whole package, not a subset


def test_ast_layer_alone_is_clean():
    report = run_lint(
        targets=[PACKAGE_ROOT], semantic_checks=False, concurrency_checks=False
    )
    assert report.clean, [f.render() for f in report.findings]


def test_semantic_layer_alone_is_clean():
    report = run_lint(ast_checks=False, concurrency_checks=False)
    assert report.clean, [f.render() for f in report.findings]


def test_concurrency_layer_alone_is_clean():
    report = run_lint(
        targets=[PACKAGE_ROOT], semantic_checks=False, ast_checks=False
    )
    assert report.clean, [f.render() for f in report.findings]
    # Clean by *fixing or justifying*, not by finding nothing: the two
    # sanctioned sites (quiesce's sorted sweep, the shutdown-path release)
    # carry suppression comments and must show up in the count.
    assert report.suppressed >= 2
