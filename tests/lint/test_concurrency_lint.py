"""Layer 3 (``REPRO-C2xx``) concurrency analysis: fixtures and gates.

Each rule gets a minimal synthetic fixture that must trip it, plus a
suppression-comment variant that must silence it; the deliberately
inverted two-lock fixture here is the same shape
``tests/concurrency/test_sanitizer.py`` detects *dynamically* — the
acceptance criterion that the static and runtime halves agree.
"""

import textwrap
from pathlib import Path

from repro.lint import run_lint
from repro.lint.concurrency import (
    CONCURRENCY_RULE_IDS,
    analyze_files,
    run_concurrency_checks,
)
from repro.lint.findings import RULES

PACKAGE_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The deliberately inverted two-lock fixture (also exercised dynamically).
INVERTED_PAIR_SOURCE = textwrap.dedent(
    """
    import threading

    class Pair:
        def __init__(self):
            self.a_latch = threading.Lock()
            self.b_latch = threading.Lock()

        def forward(self):
            with self.a_latch:
                with self.b_latch:
                    return 1

        def backward(self):
            with self.b_latch:
                with self.a_latch:
                    return 2
    """
)


def lint_sources(*named_sources, select=None):
    """Run only the concurrency layer over (relpath, source) fixtures."""
    files = [
        (name, f"/fixtures/{name}", textwrap.dedent(source))
        for name, source in named_sources
    ]
    return run_concurrency_checks(files, select=select)


def rule_ids(findings):
    return {f.rule_id for f in findings}


class TestRuleRegistration:
    def test_all_c_rules_registered(self):
        for rule_id in sorted(CONCURRENCY_RULE_IDS):
            spec = RULES.get(rule_id)
            assert spec.layer == "concurrency"


class TestC201LockOrderCycles:
    def test_inverted_two_lock_fixture_is_a_cycle(self):
        findings = lint_sources(("pair.py", INVERTED_PAIR_SOURCE))
        assert "REPRO-C201" in rule_ids(findings)
        [cycle] = [f for f in findings if f.rule_id == "REPRO-C201"]
        assert "latch:Pair.a_latch" in cycle.message
        assert "latch:Pair.b_latch" in cycle.message

    def test_consistent_order_is_clean(self):
        source = INVERTED_PAIR_SOURCE.replace(
            "with self.b_latch:\n            with self.a_latch:",
            "with self.a_latch:\n            with self.b_latch:",
        )
        findings = lint_sources(("pair.py", source))
        assert "REPRO-C201" not in rule_ids(findings)

    def test_interprocedural_cycle_through_a_call(self):
        findings = lint_sources(
            (
                "chain.py",
                """
                import threading

                class Chain:
                    def __init__(self):
                        self.a_latch = threading.Lock()
                        self.b_latch = threading.Lock()

                    def outer(self):
                        with self.a_latch:
                            self.helper()

                    def helper(self):
                        with self.b_latch:
                            return 1

                    def backward(self):
                        with self.b_latch:
                            with self.a_latch:
                                return 2
                """,
            )
        )
        assert "REPRO-C201" in rule_ids(findings)

    def test_bare_acquire_loop_self_edge(self):
        findings = lint_sources(
            (
                "sweep.py",
                """
                class Sweep:
                    def grab_all(self, locks, names):
                        for name in names:
                            locks.acquire("sid", name, "X", 1.0)
                        try:
                            return len(names)
                        finally:
                            for name in names:
                                locks.release("sid", name)
                """,
            )
        )
        assert "REPRO-C201" in rule_ids(findings)

    def test_with_statement_in_loop_is_not_a_self_edge(self):
        findings = lint_sources(
            (
                "reacquire.py",
                """
                import threading

                class Poller:
                    def __init__(self):
                        self.work_latch = threading.Lock()

                    def poll(self, jobs):
                        for job in jobs:
                            with self.work_latch:
                                job()
                """,
            )
        )
        assert "REPRO-C201" not in rule_ids(findings)


class TestC202UnboundedHandlerWaits:
    HANDLER_SOURCE = """
        class Handler:
            def _op_fetch(self, sid, request):
                self.locks.acquire(sid, "resource", "X"{timeout})
                try:
                    return {{}}
                finally:
                    self.locks.release(sid, "resource")
    """

    def test_no_timeout_reachable_from_handler(self):
        findings = lint_sources(
            ("server/handlers.py", self.HANDLER_SOURCE.format(timeout="")),
            select={"REPRO-C202"},
        )
        assert rule_ids(findings) == {"REPRO-C202"}

    def test_timeout_bound_is_clean(self):
        findings = lint_sources(
            (
                "server/handlers.py",
                self.HANDLER_SOURCE.format(timeout=", timeout_s=1.0"),
            ),
            select={"REPRO-C202"},
        )
        assert findings == []

    def test_same_code_outside_server_is_not_flagged(self):
        findings = lint_sources(
            ("batch/handlers.py", self.HANDLER_SOURCE.format(timeout="")),
            select={"REPRO-C202"},
        )
        assert findings == []

    def test_reachability_through_a_callee(self):
        findings = lint_sources(
            (
                "server/handlers.py",
                """
                class Handler:
                    def _op_fetch(self, sid, request):
                        return self._locked_work(sid)

                    def _locked_work(self, sid):
                        self.locks.acquire(sid, "resource", "X")
                        try:
                            return {}
                        finally:
                            self.locks.release(sid, "resource")
                """,
            ),
            select={"REPRO-C202"},
        )
        assert rule_ids(findings) == {"REPRO-C202"}


class TestC203UnguardedAcquire:
    def test_acquire_without_release_path(self):
        findings = lint_sources(
            (
                "leaky.py",
                """
                class Leaky:
                    def work(self, locks):
                        locks.acquire("sid", "resource", "X", 1.0)
                        return self.compute()
                """,
            ),
            select={"REPRO-C203"},
        )
        assert rule_ids(findings) == {"REPRO-C203"}

    def test_acquire_then_try_finally_is_clean(self):
        findings = lint_sources(
            (
                "guarded.py",
                """
                class Guarded:
                    def work(self, locks):
                        locks.acquire("sid", "resource", "X", 1.0)
                        try:
                            return self.compute()
                        finally:
                            locks.release("sid", "resource")
                """,
            ),
            select={"REPRO-C203"},
        )
        assert findings == []

    def test_acquire_inside_try_with_finally_release_is_clean(self):
        findings = lint_sources(
            (
                "guarded.py",
                """
                class Guarded:
                    def work(self, locks, names):
                        held = []
                        try:
                            for name in names:
                                locks.acquire("sid", name, "X", 1.0)
                                held.append(name)
                            return len(held)
                        finally:
                            for name in held:
                                locks.release("sid", name)
                """,
            ),
            select={"REPRO-C203"},
        )
        assert findings == []


class TestC204EscapedState:
    MIXED_SOURCE = """
        import threading

        class Cache:
            def __init__(self):
                self.latch = threading.Lock()
                self.hits = 0

            def latched_bump(self):
                with self.latch:
                    self.hits += 1

            def bare_bump(self):
                self.hits += 1{suppress}
    """

    def test_mixed_latched_and_bare_mutation(self):
        findings = lint_sources(
            (
                "summary/cache.py",
                self.MIXED_SOURCE.format(suppress=""),
            ),
            select={"REPRO-C204"},
        )
        assert rule_ids(findings) == {"REPRO-C204"}
        [finding] = findings
        assert "self.hits" in finding.message

    def test_always_bare_is_not_flagged(self):
        findings = lint_sources(
            (
                "summary/cache.py",
                """
                class Cache:
                    def bump(self):
                        self.hits += 1

                    def other_bump(self):
                        self.hits += 1
                """,
            ),
            select={"REPRO-C204"},
        )
        assert findings == []

    def test_helper_only_called_under_latch_is_protected(self):
        findings = lint_sources(
            (
                "summary/cache.py",
                """
                import threading

                class Cache:
                    def __init__(self):
                        self.latch = threading.Lock()
                        self.hits = 0

                    def latched_bump(self):
                        with self.latch:
                            self._bump()

                    def _bump(self):
                        self.hits += 1
                """,
            ),
            select={"REPRO-C204"},
        )
        assert findings == []

    def test_out_of_scope_package_is_not_flagged(self):
        findings = lint_sources(
            ("stats/cache.py", self.MIXED_SOURCE.format(suppress="")),
            select={"REPRO-C204"},
        )
        assert findings == []


class TestC205BlockingInAsync:
    def test_direct_blocking_call(self):
        findings = lint_sources(
            (
                "server/loop.py",
                """
                import time

                class Service:
                    async def handle(self, request):
                        time.sleep(0.1)
                        return request
                """,
            ),
            select={"REPRO-C205"},
        )
        assert rule_ids(findings) == {"REPRO-C205"}

    def test_call_into_lock_taking_code(self):
        findings = lint_sources(
            (
                "server/loop.py",
                """
                import threading

                class Service:
                    def __init__(self):
                        self.state_latch = threading.Lock()

                    def teardown(self, sid):
                        with self.state_latch:
                            return sid

                    async def handle(self, sid):
                        return self.teardown(sid)
                """,
            ),
            select={"REPRO-C205"},
        )
        assert rule_ids(findings) == {"REPRO-C205"}

    def test_awaited_work_is_clean(self):
        findings = lint_sources(
            (
                "server/loop.py",
                """
                import asyncio

                class Service:
                    async def handle(self, request):
                        await asyncio.sleep(0.1)
                        return request
                """,
            ),
            select={"REPRO-C205"},
        )
        assert findings == []


class TestC206VersionMutation:
    """Published MVCC versions and the summary cache are write-protected."""

    def test_annotated_parameter_mutation_is_flagged(self):
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def poke(self, version: ViewVersion):
                        version.columns["x"] = [1.0]
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}
        [finding] = findings
        assert "ViewVersion" in finding.message
        assert "version.columns" in finding.message

    def test_pin_result_local_is_typed_and_flagged(self):
        # No annotation anywhere: the type flows from the producer call.
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def poke(self, chain):
                        v = chain.pin("sid")
                        v.seq = 9
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}

    def test_mutator_call_on_version_state_is_flagged(self):
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def poke(self, version: ViewVersion):
                        version.epochs.update({"x": 2})
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}

    def test_rebinding_a_version_local_is_not_a_mutation(self):
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def swap(self, chain):
                        v = chain.pin("sid")
                        v = chain.latest()
                        return v
                """,
            ),
            select={"REPRO-C206"},
        )
        assert findings == []

    def test_summary_cache_bypass_is_flagged(self):
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def poke(self, summary: SummaryDatabase, key, entry):
                        summary._entries[key] = entry
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}
        [finding] = findings
        assert "_entries" in finding.message

    def test_summary_cache_bypass_through_a_chain_is_flagged(self):
        # Untyped receiver, but the attribute chain passes through
        # ``summary`` and lands on a cache structure.
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def poke(self, key):
                        self.view.summary._entries[key] = None
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}

    def test_sketch_mutation_of_published_summary_is_flagged(self):
        # ISSUE 9: sketch results live in the published version's frozen
        # summary snapshot by reference; writing one corrupts every
        # pinned reader.
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def poke(self, version: ViewVersion, key):
                        version.summary[key] = (1.0, 2.0)
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}
        [finding] = findings
        assert "version.summary" in finding.message

    def test_sketch_mutator_call_on_published_state_is_flagged(self):
        # Calling an in-place maintainer mutator (merge_partial,
        # on_insert, ...) on state fetched from a published snapshot is
        # a write, even though no assignment appears.
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def poke(self, version: ViewVersion, key, state):
                        version.summary[key].merge_partial(state)
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}

    def test_sketch_mutator_on_pin_result_is_flagged(self):
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def poke(self, chain, key):
                        v = chain.pin("sid")
                        v.summary[key].on_insert(2.0)
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}

    def test_driving_a_local_sketch_is_clean(self):
        # Maintainer mutators on private, unpublished sketches are the
        # normal incremental-update path — not a C206 violation.
        findings = lint_sources(
            (
                "server/patch.py",
                """
                class Patcher:
                    def fold(self, values, state):
                        digest = TDigest()
                        digest.absorb(values)
                        digest.merge_partial(state)
                        return digest.value
                """,
            ),
            select={"REPRO-C206"},
        )
        assert findings == []

    def test_mvcc_module_itself_is_sanctioned(self):
        findings = lint_sources(
            (
                "concurrency/mvcc.py",
                """
                class VersionChain:
                    def _patch(self, version: ViewVersion):
                        version.columns["x"] = [1.0]
                """,
            ),
            select={"REPRO-C206"},
        )
        assert findings == []

    def test_summarydb_module_may_write_its_own_cache(self):
        findings = lint_sources(
            (
                "summary/summarydb.py",
                """
                class SummaryDatabase:
                    def insert(self, key, entry):
                        self._entries[key] = entry
                """,
            ),
            select={"REPRO-C206"},
        )
        assert findings == []

    def test_summarydb_module_may_not_mutate_versions(self):
        # The sanction is per-discipline: summarydb.py may write its own
        # cache, but published versions stay exclusive to mvcc.py.
        findings = lint_sources(
            (
                "summary/summarydb.py",
                """
                class SummaryDatabase:
                    def poke(self, version: ViewVersion):
                        version.summary["mean", ("x",)] = 0.0
                """,
            ),
            select={"REPRO-C206"},
        )
        assert rule_ids(findings) == {"REPRO-C206"}


class TestSuppressions:
    """Every C-rule honours line-level suppression comments (engine level)."""

    FIXTURES = {
        "REPRO-C201": (
            "pair.py",
            # The finding anchors on the first edge of the cycle: forward()'s
            # inner acquire.  Suppressing there documents the sanctioned order.
            INVERTED_PAIR_SOURCE.replace(
                "with self.b_latch:",
                "with self.b_latch:  # repro-lint: disable=REPRO-C201",
                1,
            ),
        ),
        "REPRO-C202": (
            "server/handlers.py",
            TestC202UnboundedHandlerWaits.HANDLER_SOURCE.format(
                timeout=""
            ).replace(
                '"X")',
                '"X")  # repro-lint: disable=REPRO-C202,REPRO-C203',
            ),
        ),
        "REPRO-C203": (
            "leaky.py",
            """
            class Leaky:
                def work(self, locks):
                    # repro-lint: disable=REPRO-C203
                    locks.acquire("sid", "resource", "X", 1.0)
                    return self.compute()
            """,
        ),
        "REPRO-C204": (
            "summary/cache.py",
            TestC204EscapedState.MIXED_SOURCE.format(
                suppress="  # repro-lint: disable=REPRO-C204"
            ),
        ),
        "REPRO-C205": (
            "server/loop.py",
            """
            import time

            class Service:
                async def handle(self, request):
                    time.sleep(0.1)  # repro-lint: disable=REPRO-C205
                    return request
            """,
        ),
        "REPRO-C206": (
            "server/patch.py",
            """
            class Patcher:
                def poke(self, version: ViewVersion):
                    version.columns["x"] = [1.0]  # repro-lint: disable=REPRO-C206
            """,
        ),
    }

    def test_each_rule_is_silenced_by_its_suppression(self, tmp_path):
        for rule_id, (relpath, source) in self.FIXTURES.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
            report = run_lint(
                targets=[target],
                select={rule_id},
                semantic_checks=False,
                ast_checks=False,
            )
            assert report.clean, (rule_id, [f.render() for f in report.findings])
            assert report.suppressed >= 1, f"{rule_id} found nothing to suppress"
            target.unlink()

    def test_cycle_suppression_survives_full_layer_run(self, tmp_path):
        # Same fixture, but with no --select narrowing: the suppression must
        # hold when every C-rule runs together.
        target = tmp_path / "pair.py"
        target.write_text(
            textwrap.dedent(self.FIXTURES["REPRO-C201"][1]), encoding="utf-8"
        )
        report = run_lint(
            targets=[target], semantic_checks=False, ast_checks=False
        )
        c201 = [f for f in report.findings if f.rule_id == "REPRO-C201"]
        assert c201 == [], [f.render() for f in c201]


class TestRealTreeModel:
    """The shipped tree's model contains the edges the design promises."""

    def test_known_lock_order_edges_present(self):
        files = [
            (str(p), str(p), p.read_text(encoding="utf-8"))
            for p in sorted(PACKAGE_ROOT.rglob("*.py"))
        ]
        model = analyze_files(files)
        edges = model.lock_order_edges()
        # quiesce: registry lock ordered before every view lock.
        assert ("lock:__registry__", "lock:<view>") in edges
        # group commit: the leader drains the queue while leading.
        assert (
            "latch:GroupCommitter._leader",
            "latch:GroupCommitter._queue_latch",
        ) in edges
        # a query handler fills the summary cache under its view lock.
        assert ("lock:<view>", "latch:SummaryDatabase.latch") in edges
        # instrumented sites exist for the runtime cross-check.
        assert len(model.instrumented_sites()) >= 10

    def test_fixed_tree_has_only_sanctioned_raw_findings(self):
        files = [
            (str(p), str(p), p.read_text(encoding="utf-8"))
            for p in sorted(PACKAGE_ROOT.rglob("*.py"))
        ]
        model = analyze_files(files)
        # Raw findings (pre-suppression) are exactly the two sanctioned,
        # comment-justified sites: the quiesce sorted-order self-edge and
        # the shutdown-path synchronous release.
        raw = sorted((f.rule_id, Path(f.path).name) for f in model.findings)
        assert raw == [
            ("REPRO-C201", "transactions.py"),
            ("REPRO-C205", "server.py"),
        ]
