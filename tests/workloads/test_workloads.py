"""Tests for the synthetic workload generators."""

import pytest

from repro.core.errors import SamplingError
from repro.relational.types import NA, is_na
from repro.workloads.census import (
    age_group_codebook,
    figure1_dataset,
    generate_census_summary,
    generate_microdata,
)
from repro.workloads.sessions import (
    EventKind,
    SessionGenerator,
    cda_script,
    eda_script,
)
from repro.workloads.updates import correction_stream, drift_stream, invalidation_stream


class TestCensusData:
    def test_figure1_verbatim(self):
        rel = figure1_dataset()
        assert len(rel) == 9
        assert rel.row(0) == ("M", "W", 1, 12_300_347, 33_122)
        assert rel.row(8) == ("M", "B", 1, 2_143_924, 29_402)

    def test_figure2_verbatim(self):
        book = age_group_codebook()
        assert book.decode(1) == "0 to 20"
        assert book.decode(4) == "over 60"

    def test_summary_cross_product(self):
        """SS2.1: rows can equal the cross product of category ranges."""
        rel = generate_census_summary(sexes=2, races=3, age_groups=4, regions=5, seed=1)
        assert len(rel) == 2 * 3 * 4 * 5

    def test_summary_deterministic(self):
        a = generate_census_summary(seed=9)
        b = generate_census_summary(seed=9)
        assert list(a) == list(b)

    def test_microdata_shape(self):
        rel = generate_microdata(1000, seed=2)
        assert len(rel) == 1000
        assert rel.schema.names[0] == "PERSON_ID"

    def test_microdata_bad_values_planted(self):
        rel = generate_microdata(20_000, seed=3, bad_value_rate=0.01)
        ages = rel.column("AGE")
        incomes = rel.column("INCOME")
        bad_ages = [v for v in ages if not is_na(v) and not 0 <= v <= 120]
        bad_incomes = [v for v in incomes if not is_na(v) and v < 0]
        assert bad_ages or bad_incomes
        assert len(bad_ages) + len(bad_incomes) < 1000

    def test_microdata_clean_when_rate_zero(self):
        rel = generate_microdata(5000, seed=4, bad_value_rate=0.0)
        assert all(0 <= v <= 120 for v in rel.column("AGE"))
        assert all(v >= 0 for v in rel.column("INCOME"))


class TestSessionGenerator:
    def test_deterministic(self):
        gen1 = SessionGenerator(["a", "b"], seed=7)
        gen2 = SessionGenerator(["a", "b"], seed=7)
        assert list(gen1.events(50)) == list(gen2.events(50))

    def test_zipf_skew(self):
        gen = SessionGenerator(["a", "b", "c"], zipf_s=1.5, seed=8)
        from collections import Counter

        counts = Counter(
            (e.function, e.attribute) for e in gen.events(3000)
        )
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] > 5 * frequencies[-1]

    def test_update_fraction(self):
        gen = SessionGenerator(["a"], update_fraction=0.3, n_rows=100, seed=9)
        events = list(gen.events(2000))
        updates = [e for e in events if e.kind is EventKind.UPDATE]
        assert 0.25 < len(updates) / len(events) < 0.35
        assert all(0 <= e.row < 100 for e in updates)

    def test_validation(self):
        with pytest.raises(SamplingError):
            SessionGenerator([])
        with pytest.raises(SamplingError):
            SessionGenerator(["a"], update_fraction=1.0)

    def test_scripts(self):
        eda = eda_script(["x", "y"])
        cda = cda_script(["x", "y"])
        assert all(e.kind is EventKind.QUERY for e in eda + cda)
        # CDA re-asks the same statistics: the cache-hit workload.
        pairs = [(e.function, e.attribute) for e in cda]
        assert len(set(pairs)) < len(pairs)


class TestUpdateStreams:
    def test_correction_stream_near_old_values(self):
        values = [100.0] * 50
        updates = list(correction_stream(values, 200, noise_sd=1.0, seed=1))
        assert len(updates) == 200
        assert all(90 < u.value < 110 for u in updates)

    def test_drift_stream_increases(self):
        updates = list(drift_stream(100, 500, start=0.0, drift_per_step=1.0, seed=2))
        assert updates[-1].value > updates[0].value + 400

    def test_invalidation_stream(self):
        updates = list(invalidation_stream(10, 20, seed=3))
        assert all(u.value is NA for u in updates)
        assert all(0 <= u.row < 10 for u in updates)

    def test_correction_validation(self):
        with pytest.raises(SamplingError):
            list(correction_stream([1.0], -1))
