"""Tests for the tracing spans and counters of ``repro.obs``."""

import pytest

from repro.core.errors import ObsError
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


class TestSpans:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in outer.children] == ["inner", "inner"]
        assert tracer.current is None

    def test_elapsed_accumulates(self):
        tracer = Tracer()
        span = tracer.span("timed")
        for _ in range(3):
            with span:
                pass
        assert span.elapsed_s > 0.0
        # Stopwatch-style reuse links the span into the tree exactly once.
        assert tracer.roots == [span]

    def test_counters_charge_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.add("hits")
            with tracer.span("inner") as inner:
                tracer.add("hits", 2)
        assert outer.counters == {"hits": 1}
        assert inner.counters == {"hits": 2}
        assert tracer.total("hits") == 3

    def test_counters_without_open_span_charge_tracer(self):
        tracer = Tracer()
        tracer.add("pool.hit", 5)
        assert tracer.counters == {"pool.hit": 5}
        assert tracer.total("pool.hit") == 5

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b") as b:
                b.add("x")
        assert tracer.find("b") is b
        assert tracer.find("nope") is None
        assert [s.name for s in tracer.walk()] == ["a", "b"]
        assert tracer.find("a").total("x") == 1

    def test_out_of_order_exit_rejected(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ObsError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.add("c")
        tracer.add("top")
        tracer.reset()
        assert tracer.roots == [] and tracer.counters == {}

    def test_reset_with_open_span_rejected(self):
        tracer = Tracer()
        tracer.span("open").__enter__()
        with pytest.raises(ObsError, match="open spans"):
            tracer.reset()

    def test_to_dict_schema(self):
        import json

        tracer = Tracer()
        with tracer.span("outer", attribute="INCOME") as outer:
            outer.add("entries_visited", 3)
            with tracer.span("inner"):
                pass
        data = tracer.to_dict()
        json.dumps(data)  # must be JSON-serializable
        (span,) = data["spans"]
        assert span["name"] == "outer"
        assert span["attrs"] == {"attribute": "INCOME"}
        assert span["counters"] == {"entries_visited": 3}
        assert span["elapsed_s"] >= 0.0
        assert [c["name"] for c in span["children"]] == ["inner"]


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True
        span = NULL_TRACER.span("anything", attr=1)
        with span as inner:
            inner.add("counter")
        NULL_TRACER.add("counter", 10)
        # The null tracer hands out one shared span and records nothing.
        assert NULL_TRACER.span("other") is span
        assert not hasattr(NULL_TRACER, "roots")

    def test_no_per_instance_state(self):
        assert NullTracer.__slots__ == ()
