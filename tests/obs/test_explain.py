"""EXPLAIN ANALYZE: measured operator trees on both engines."""

import json

import pytest

from repro.core.errors import QueryError
from repro.relational.catalog import Catalog
from repro.relational.planner import explain_analyze
from repro.relational.relation import Relation
from repro.relational.schema import Schema, category, measure
from repro.relational.types import DataType


@pytest.fixture()
def catalog():
    schema = Schema(
        [
            category("dept", DataType.STR),
            measure("salary", DataType.FLOAT),
            measure("age", DataType.INT),
        ]
    )
    rows = [(f"d{i % 3}", 1000.0 + i, 20 + i % 40) for i in range(200)]
    catalog = Catalog()
    catalog.register(Relation("people", schema, rows))
    return catalog


QUERY = "SELECT dept, COUNT(*) AS n FROM people WHERE age > 30 GROUP BY dept"


class TestEngines:
    def test_vectorized_engine_measured(self, catalog):
        result = explain_analyze(QUERY, catalog, engine="vectorized")
        assert result.engine == "vectorized"
        scan = result.root.find("VecScan")
        select = result.root.find("VecSelect")
        assert scan is not None and select is not None
        assert scan.rows == 200 and scan.chunks > 0
        assert select.rows == sum(1 for _ in catalog.get("people") if _[2] > 30)
        assert len(result.relation) == 3

    def test_row_engine_measured(self, catalog):
        result = explain_analyze(QUERY, catalog, engine="row")
        assert result.engine == "row"
        select = result.root.find("Select")
        relation = result.root.find("Relation")
        assert relation is not None and relation.rows == 200
        assert select.rows == sum(1 for _ in catalog.get("people") if _[2] > 30)
        assert len(result.relation) == 3

    def test_engines_agree_on_output(self, catalog):
        vec = explain_analyze(QUERY, catalog, engine="vectorized")
        row = explain_analyze(QUERY, catalog, engine="row")
        assert sorted(vec.relation) == sorted(row.relation)

    def test_auto_picks_vectorized_for_chunk_source(self, catalog):
        assert explain_analyze(QUERY, catalog).engine == "vectorized"

    def test_vectorized_refused_for_join(self, catalog):
        catalog.register(
            Relation(
                "depts",
                Schema([category("d", DataType.STR)]),
                [("d0",), ("d1",)],
            )
        )
        join = "SELECT * FROM people JOIN depts ON dept = d"
        with pytest.raises(QueryError, match="vectorized"):
            explain_analyze(join, catalog, engine="vectorized")
        assert explain_analyze(join, catalog).engine == "row"

    def test_unknown_engine_rejected(self, catalog):
        with pytest.raises(QueryError, match="unknown engine"):
            explain_analyze(QUERY, catalog, engine="warp")


class TestRendering:
    def test_render_shows_rows_and_timings_per_operator(self, catalog):
        for engine in ("row", "vectorized"):
            text = explain_analyze(QUERY, catalog, engine=engine).render()
            lines = text.splitlines()
            assert lines[0] == f"EXPLAIN ANALYZE ({engine} engine)"
            assert lines[-1] == "(3 rows)"
            operator_lines = lines[1:-1]
            assert len(operator_lines) >= 3  # scan, select, group-by at least
            for line in operator_lines:
                assert "rows=" in line and "time=" in line and "ms" in line

    def test_to_dict_is_json_serializable(self, catalog):
        data = explain_analyze(QUERY, catalog).to_dict()
        json.dumps(data)
        assert data["engine"] == "vectorized"
        assert data["plan"]["counters"]["rows"] == 3


class TestShellExplain:
    def test_do_explain_prints_both_engines(self):
        import io

        from repro.core.shell import AnalystShell
        from repro.workloads.census import generate_microdata

        out = io.StringIO()
        shell = AnalystShell(stdout=out)
        shell.dbms.load_raw(generate_microdata(200, seed=5))
        shell.onecmd("view study census_micro")
        shell.onecmd("open study")
        shell.onecmd("explain SELECT AGE FROM v WHERE AGE > 40")
        shell.onecmd("explain row SELECT AGE FROM v WHERE AGE > 40")
        text = out.getvalue()
        assert "EXPLAIN ANALYZE (vectorized engine)" in text
        assert "EXPLAIN ANALYZE (row engine)" in text
        assert "rows=" in text and "time=" in text
