"""Counters the instrumented subsystems charge to an injected tracer."""

from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.obs.tracer import Tracer
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.relational.types import DataType
from repro.storage.wiss import StorageManager
from repro.views.view import ConcreteView


def make_session(tracer=None, n=50):
    schema = Schema([measure("x", DataType.FLOAT)])
    relation = Relation("v", schema, [(float(i),) for i in range(n)])
    view = ConcreteView("v", relation)
    return AnalystSession(ManagementDatabase(), view, analyst="p", tracer=tracer)


class TestStorageCounters:
    def test_pool_hits_misses_evictions(self):
        tracer = Tracer()
        storage = StorageManager(block_size=256, pool_pages=4, tracer=tracer)
        heap = storage.create_heap_file("h", [DataType.INT])
        heap.insert_many([(i,) for i in range(500)])
        tracer.reset()
        list(heap.scan())
        assert tracer.total("heap.pages_read") > 1
        assert tracer.total("heap.records") == 500
        assert tracer.total("pool.hit") + tracer.total("pool.miss") > 0
        # 500 ints never fit in a 4-page pool: the sweep must evict.
        assert tracer.total("pool.eviction") > 0

    def test_transposed_counters(self):
        tracer = Tracer()
        storage = StorageManager(block_size=256, pool_pages=64, tracer=tracer)
        tf = storage.create_transposed_file("t", [DataType.FLOAT, DataType.FLOAT])
        tf.append_rows([(float(i), float(-i)) for i in range(300)])
        tracer.reset()
        chunks = list(tf.scan_column_chunks([0], chunk_size=64))
        assert tracer.total("transposed.chunks") == len(chunks) > 0
        assert tracer.total("transposed.pages_read") > 0


class TestSummaryCounters:
    def test_hit_miss_refresh_per_function(self):
        tracer = Tracer()
        session = make_session(tracer)
        session.compute("mean", "x")  # miss
        session.compute("mean", "x")  # hit
        assert tracer.total("summary.miss.mean") == 1
        assert tracer.total("summary.hit.mean") == 1

    def test_stale_counter_on_update(self):
        tracer = Tracer()
        session = make_session(tracer)
        session.compute_pair("pearson", "x", "x")
        session.update_cells("x", [(0, 99.0)])
        assert tracer.total("summary.stale.pearson") == 1


class TestPropagationSpans:
    def test_rule_counters_under_propagate_span(self):
        tracer = Tracer()
        session = make_session(tracer)
        session.compute("mean", "x")
        session.compute("median", "x")
        session.update_cells("x", [(1, 42.0)])
        propagate = tracer.find("propagate")
        assert propagate is not None
        assert propagate.attrs["attribute"] == "x"
        assert propagate.counters["entries_visited"] == 2
        assert propagate.counters["rule.mean.incremental"] == 1
        assert propagate.counters["incremental_updates"] == 2

    def test_session_spans_nest(self):
        tracer = Tracer()
        session = make_session(tracer)
        session.compute("mean", "x")
        session.update_cells("x", [(0, 1.0)])
        update_span = tracer.find("update_cells")
        assert update_span is not None
        assert [child.name for child in update_span.children] == ["propagate"]

    def test_undo_propagates_one_batch_per_attribute(self):
        tracer = Tracer()
        session = make_session(tracer)
        session.compute("mean", "x")
        for i in range(5):
            session.update_cells("x", [(i, float(100 + i))])
        tracer.reset()
        session.undo(5)
        undo_span = tracer.find("undo")
        assert undo_span is not None
        # Five undone operations on one attribute coalesce into a single
        # propagation sweep (S5: batched inverse deltas).
        assert [child.name for child in undo_span.children] == ["propagate"]
        assert undo_span.children[0].counters["entries_visited"] == 1
