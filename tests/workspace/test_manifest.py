"""Manifest identity, round-trip, and crash-safe commit."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import InjectedFault, ManifestError
from repro.durability.faults import FaultInjector, FaultPlan
from repro.workspace.manifest import (
    MANIFEST_NAME,
    ViewManifest,
    manifest_path,
    read_manifest,
    view_space_id,
    write_manifest,
)

from tests.workspace.helpers import (
    full_definition,
    projected_definition,
    tiny_relation,
)


def sample_manifest(space_id: str = "abc123") -> ViewManifest:
    definition = full_definition()
    return ViewManifest(
        space_id=space_id,
        view_name="v_full",
        definition={"name": "v_full", "plan": "source"},
        definition_canonical=definition.canonical(),
        parameters={"edition": "1980", "k": 3},
        schema=[{"name": "id", "dtype": "INT", "role": "measure", "codebook": None}],
        codebook_editions={"AGE_GROUP": ["1970", "1980"]},
        high_water_mark=7,
        summary_inventory=[
            {"function": "mean", "attributes": ["x"], "kind": "scalar", "stale": False},
            {"function": "median", "attributes": ["x"], "kind": "sketch", "stale": True},
        ],
        lineage={"parent": "fff", "kind": "derivable", "operations": 1},
    )


class TestSpaceId:
    def test_stable_across_calls(self):
        rel = tiny_relation()
        a = view_space_id(rel.schema, full_definition(), {"edition": "1980"})
        b = view_space_id(rel.schema, full_definition(), {"edition": "1980"})
        assert a == b
        assert len(a) == 16

    def test_name_independent(self):
        # Content addressing hashes the canonical (name-free) definition:
        # renaming a view does not re-materialize it.
        rel = tiny_relation()
        a = view_space_id(rel.schema, full_definition("v1"))
        b = view_space_id(rel.schema, full_definition("v2"))
        assert a == b

    def test_parameters_and_definition_discriminate(self):
        rel = tiny_relation()
        base = view_space_id(rel.schema, full_definition())
        assert view_space_id(rel.schema, full_definition(), {"e": 1}) != base
        assert view_space_id(rel.schema, projected_definition()) != base

    def test_parameter_key_order_irrelevant(self):
        rel = tiny_relation()
        a = view_space_id(rel.schema, full_definition(), {"a": 1, "b": 2})
        b = view_space_id(rel.schema, full_definition(), {"b": 2, "a": 1})
        assert a == b

    def test_unserializable_parameters_rejected(self):
        rel = tiny_relation()
        with pytest.raises(ManifestError):
            view_space_id(rel.schema, full_definition(), {"bad": object()})


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        manifest = sample_manifest()
        write_manifest(tmp_path, manifest)
        loaded = read_manifest(tmp_path)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.stats() == {"mean", "median"}
        assert loaded.stale_stats() == {"median"}

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ManifestError, match="unreadable"):
            read_manifest(tmp_path)

    def test_corrupt_bytes(self, tmp_path):
        manifest_path(tmp_path).write_bytes(b"\x00\xffnot json")
        with pytest.raises(ManifestError, match="corrupt"):
            read_manifest(tmp_path)

    def test_non_object_payload(self, tmp_path):
        manifest_path(tmp_path).write_text("[1, 2, 3]")
        with pytest.raises(ManifestError, match="not a JSON object"):
            read_manifest(tmp_path)

    def test_unknown_format_rejected(self, tmp_path):
        data = sample_manifest().to_dict()
        data["format"] = 99
        manifest_path(tmp_path).write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="unsupported format"):
            read_manifest(tmp_path)

    def test_malformed_record_rejected(self, tmp_path):
        data = sample_manifest().to_dict()
        del data["space_id"]
        manifest_path(tmp_path).write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="malformed"):
            read_manifest(tmp_path)


class TestCrashSafety:
    def test_crash_at_every_io_point_is_atomic(self, tmp_path):
        """A crash mid-commit leaves the old manifest or the new one.

        One ``write_manifest`` issues: open(tmp), write, fsync(file),
        replace, fsync(dir).  Killing the commit at each point must leave
        a readable manifest — either edition, never a torn mix.
        """
        old = sample_manifest()
        write_manifest(tmp_path, old)
        new = sample_manifest()
        new.high_water_mark = 99

        plans = [
            FaultPlan(fail_on_open=1),
            FaultPlan(fail_on_write=1, mode="raise"),
            FaultPlan(fail_on_write=1, mode="torn"),
            FaultPlan(fail_on_fsync=1),
            FaultPlan(fail_on_replace=1),
            FaultPlan(fail_on_fsync=2),
        ]
        for plan in plans:
            with pytest.raises(InjectedFault):
                write_manifest(tmp_path, new, faults=FaultInjector(plan))
            loaded = read_manifest(tmp_path)
            assert loaded.high_water_mark in (old.high_water_mark, 99)

        write_manifest(tmp_path, new)
        assert read_manifest(tmp_path).high_water_mark == 99

    def test_no_temp_file_left_behind_on_success(self, tmp_path):
        write_manifest(tmp_path, sample_manifest())
        assert not (tmp_path / (MANIFEST_NAME + ".tmp")).exists()
