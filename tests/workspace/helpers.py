"""Shared builders for the workspace test suite."""

from __future__ import annotations

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType
from repro.views.materialize import ProjectNode, SourceNode, ViewDefinition


def tiny_relation(rows: int = 12, name: str = "people") -> Relation:
    """A small numeric dataset: id (int) + x (float) + y (float)."""
    schema = Schema(
        [
            Attribute("id", DataType.INT),
            Attribute("x", DataType.FLOAT),
            Attribute("y", DataType.FLOAT),
        ]
    )
    return Relation(
        name, schema, [[i, float(i), float(i * i)] for i in range(rows)]
    )


def full_definition(name: str = "v_full") -> ViewDefinition:
    return ViewDefinition(name, SourceNode("people"))


def projected_definition(name: str = "v_proj") -> ViewDefinition:
    return ViewDefinition(name, ProjectNode(SourceNode("people"), ("id", "x")))
