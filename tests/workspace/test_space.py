"""Workspace lifecycle: create/open/checkpoint/find/lineage/drop."""

from __future__ import annotations

import pytest

from repro.core.errors import WorkspaceError
from repro.workspace.manifest import manifest_path, read_manifest
from repro.workspace.space import Workspace

from tests.workspace.helpers import (
    full_definition,
    projected_definition,
    tiny_relation,
)


class TestCreateOpen:
    def test_create_materializes_directory(self, tmp_path):
        ws = Workspace(tmp_path)
        managed = ws.create(full_definition(), tiny_relation())
        assert managed.directory.is_dir()
        assert manifest_path(managed.directory).exists()
        assert (managed.directory / "checkpoint.json").exists()
        assert managed.space_id in ws.ids()
        assert len(managed.view) == 12

    def test_create_is_idempotent_signac_style(self, tmp_path):
        ws = Workspace(tmp_path)
        first = ws.create(full_definition(), tiny_relation(), {"e": 1})
        again = ws.create(full_definition(), tiny_relation(), {"e": 1})
        assert again is first
        assert len(ws.ids()) == 1

    def test_create_reopens_existing_content(self, tmp_path):
        first = Workspace(tmp_path)
        space_id = first.create(full_definition(), tiny_relation()).space_id
        first.close_all()
        # A fresh workspace over the same root sees the same content
        # address and opens instead of re-materializing.
        second = Workspace(tmp_path)
        managed = second.create(full_definition(), tiny_relation())
        assert managed.space_id == space_id
        assert managed.recovery is not None  # came through recovery

    def test_distinct_parameters_distinct_spaces(self, tmp_path):
        ws = Workspace(tmp_path)
        a = ws.create(full_definition(), tiny_relation(), {"edition": "1970"})
        b = ws.create(full_definition(), tiny_relation(), {"edition": "1980"})
        assert a.space_id != b.space_id
        assert len(ws.ids()) == 2

    def test_open_recovers_statistics(self, tmp_path):
        ws = Workspace(tmp_path)
        managed = ws.create(full_definition(), tiny_relation())
        session = managed.session("a")
        mean = session.compute("mean", "x")
        managed.checkpoint()
        space_id = managed.space_id
        ws.close(space_id)
        assert space_id not in ws.open_ids()

        reopened = ws.open(space_id)
        assert reopened.session("a").compute("mean", "x") == pytest.approx(mean)

    def test_open_unknown_id(self, tmp_path):
        ws = Workspace(tmp_path)
        with pytest.raises(WorkspaceError):
            ws.open("feedfacedeadbeef")


class TestManifestMaintenance:
    def test_checkpoint_refreshes_inventory(self, tmp_path):
        ws = Workspace(tmp_path)
        managed = ws.create(full_definition(), tiny_relation())
        assert read_manifest(managed.directory).stats() == set()
        managed.session("a").compute("median", "x")
        managed.checkpoint()
        assert "median" in read_manifest(managed.directory).stats()

    def test_parameters_survive_refresh(self, tmp_path):
        ws = Workspace(tmp_path)
        managed = ws.create(full_definition(), tiny_relation(), {"edition": "1980"})
        managed.session("a").compute("mean", "x")
        managed.checkpoint()
        assert read_manifest(managed.directory).parameters == {"edition": "1980"}


class TestLineage:
    def test_derivable_lineage_inferred(self, tmp_path):
        ws = Workspace(tmp_path)
        parent = ws.create(full_definition(), tiny_relation())
        child = ws.create(projected_definition(), tiny_relation())
        lineage = read_manifest(child.directory).lineage
        assert lineage is not None
        assert lineage["parent"] == parent.space_id
        assert lineage["kind"] == "derivable"
        assert ws.index.children(parent.space_id)[0].space_id == child.space_id

    def test_explicit_parent_recorded(self, tmp_path):
        ws = Workspace(tmp_path)
        parent = ws.create(full_definition(), tiny_relation())
        child = ws.create(
            projected_definition(),
            tiny_relation(),
            {"trimmed": True},
            parent=parent.space_id,
        )
        lineage = read_manifest(child.directory).lineage
        assert lineage == {
            "parent": parent.space_id,
            "kind": "explicit",
            "operations": 0,
        }

    def test_unknown_explicit_parent_rejected(self, tmp_path):
        ws = Workspace(tmp_path)
        with pytest.raises(WorkspaceError, match="not managed"):
            ws.create(full_definition(), tiny_relation(), parent="nope")


class TestFind:
    def test_find_without_opening(self, tmp_path):
        builder = Workspace(tmp_path)
        managed = builder.create(full_definition(), tiny_relation(), {"edition": "1980"})
        managed.session("a").compute("approx_median", "x")
        builder.close_all()

        cold = Workspace(tmp_path)  # index rebuilt from manifests alone
        assert cold.open_ids() == []
        hits = cold.find(stat="approx_median", edition="1980")
        assert [entry.space_id for entry in hits] == [managed.space_id]
        assert cold.open_ids() == []  # find never opened anything

    def test_find_stale_filter(self, tmp_path):
        ws = Workspace(tmp_path)
        managed = ws.create(full_definition(), tiny_relation())
        session = managed.session("a")
        session.compute("mean", "x")
        managed.checkpoint()
        assert ws.find(stat="mean", stale=True) == []
        assert len(ws.find(stat="mean", stale=False)) == 1

    def test_find_by_arbitrary_parameter(self, tmp_path):
        ws = Workspace(tmp_path)
        ws.create(full_definition(), tiny_relation(), {"wave": 3})
        ws.create(full_definition(), tiny_relation(), {"wave": 4})
        assert len(ws.find(wave=3)) == 1
        assert len(ws.find(wave=9)) == 0


class TestBulkAndDrop:
    def test_open_many_and_checkpoint_all(self, tmp_path):
        ws = Workspace(tmp_path)
        ids = [
            ws.create(full_definition(), tiny_relation(), {"wave": wave}).space_id
            for wave in range(5)
        ]
        ws.close_all()

        views, report = ws.open_many(ids)
        assert report.ok
        assert sorted(report.succeeded) == sorted(ids)
        assert len(views) == 5

        report = ws.checkpoint_all()
        assert report.ok
        assert len(report.succeeded) == 5

    def test_open_many_names_missing_views(self, tmp_path):
        ws = Workspace(tmp_path)
        good = ws.create(full_definition(), tiny_relation()).space_id
        ws.close_all()
        views, report = ws.open_many([good, "feedfacedeadbeef"])
        assert [v.space_id for v in views] == [good]
        assert "feedfacedeadbeef" in report.quarantined

    def test_drop_removes_directory_and_index(self, tmp_path):
        ws = Workspace(tmp_path)
        managed = ws.create(full_definition(), tiny_relation())
        space_id = managed.space_id
        ws.drop(space_id)
        assert not ws.directory_of(space_id).exists()
        assert space_id not in ws.ids()
        with pytest.raises(WorkspaceError, match="no managed view"):
            ws.drop(space_id)

    def test_index_rebuild_quarantines_corrupt_manifest(self, tmp_path):
        ws = Workspace(tmp_path)
        good = ws.create(full_definition(), tiny_relation(), {"wave": 1})
        bad = ws.create(full_definition(), tiny_relation(), {"wave": 2})
        ws.close_all()
        manifest_path(bad.directory).write_bytes(b"\x00 garbage")

        cold = Workspace(tmp_path)
        assert cold.ids() == [good.space_id]
        assert bad.directory.name in cold.index.quarantined
        assert cold.describe()["quarantined"]
