"""Satellite: bulk recovery over a damaged 20-view workspace.

Builds a fleet, injects three kinds of damage — corrupt manifests,
corrupt checkpoints, torn WAL tails — and asserts that ``recover_all``
quarantines exactly the destroyed views (naming each), reports torn
tails as degraded-but-recovered, and brings every undamaged view back.
"""

from __future__ import annotations

from repro.workspace.manifest import manifest_path
from repro.workspace.space import Workspace

from tests.workspace.helpers import full_definition, tiny_relation

N_VIEWS = 20
CORRUPT_MANIFEST_WAVES = (3, 7)
CORRUPT_CHECKPOINT_WAVES = (5, 11)
TORN_WAL_WAVES = (2, 13, 17)


def build_damaged_fleet(root):
    """20 views with per-wave parameters; returns wave -> space id."""
    ws = Workspace(root)
    ids = {}
    for wave in range(N_VIEWS):
        managed = ws.create(full_definition(), tiny_relation(), {"wave": wave})
        session = managed.session("a")
        session.compute("mean", "x")
        session.update_cells("x", [(wave % 12, float(wave))])
        ids[wave] = managed.space_id
    ws.close_all()

    for wave in CORRUPT_MANIFEST_WAVES:
        manifest_path(root / ids[wave]).write_bytes(b"\x00\x01 not a manifest")
    for wave in CORRUPT_CHECKPOINT_WAVES:
        (root / ids[wave] / "checkpoint.json").write_bytes(b"{torn checkpoint")
    for wave in TORN_WAL_WAVES:
        with open(root / ids[wave] / "log.wal", "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef torn tail bytes")
    return ids


def test_recover_all_quarantines_only_damage(tmp_path):
    ids = build_damaged_fleet(tmp_path)
    ws = Workspace(tmp_path)

    report = ws.recover_all()

    damaged_dirs = {
        ids[wave]
        for wave in CORRUPT_MANIFEST_WAVES + CORRUPT_CHECKPOINT_WAVES
    }
    assert set(report.quarantined) == damaged_dirs
    assert not report.ok
    for name, reason in report.quarantined.items():
        assert reason  # every quarantined view carries a cause
        assert name in report.summary()

    torn_ids = {ids[wave] for wave in TORN_WAL_WAVES}
    assert set(report.degraded) == torn_ids
    for warnings in report.degraded.values():
        assert any("torn" in w or "truncated" in w for w in warnings)

    expected_ok = {
        space_id for wave, space_id in ids.items() if space_id not in damaged_dirs
    }
    assert set(report.succeeded) == expected_ok
    assert len(report.succeeded) == N_VIEWS - len(damaged_dirs)


def test_recover_all_keep_open_serves_sessions(tmp_path):
    ids = build_damaged_fleet(tmp_path)
    ws = Workspace(tmp_path)

    report = ws.recover_all(keep_open=True)

    assert set(ws.open_ids()) == set(report.succeeded)
    survivor = ids[0]
    mean = ws._open[survivor].session("a").compute("mean", "x")
    assert isinstance(mean, float)
    ws.close_all()


def test_recovered_views_lose_nothing(tmp_path):
    """Undamaged and torn-tail views recover their committed state."""
    ids = build_damaged_fleet(tmp_path)
    ws = Workspace(tmp_path)
    ws.recover_all(keep_open=True)

    clean_wave, torn_wave = 0, TORN_WAL_WAVES[0]
    for wave in (clean_wave, torn_wave):
        managed = ws._open[ids[wave]]
        column = managed.view.column("x")
        assert column[wave % 12] == float(wave)  # the committed update survived
    ws.close_all()


def test_second_sweep_after_repair_is_clean(tmp_path):
    """Torn tails are truncated by the first sweep; the second is quiet."""
    build_damaged_fleet(tmp_path)
    ws = Workspace(tmp_path)
    first = ws.recover_all()
    second = ws.recover_all()
    assert set(second.quarantined) == set(first.quarantined)
    assert second.degraded == {}  # tails were truncated, damage healed
