"""Scenario fleet: determinism across processes, scripts, live driving."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.dbms import StatisticalDBMS
from repro.core.errors import WorkspaceError
from repro.server.server import AnalystServer, ServerThread
from repro.workspace.fleet import (
    FLEET_DATASET,
    SCENARIOS,
    FleetDriver,
    FleetGenerator,
    build_fleet_dbms,
    derive_seed,
)


class TestDeriveSeed:
    def test_deterministic_and_label_sensitive(self):
        assert derive_seed(7, "fleet", "a", 0) == derive_seed(7, "fleet", "a", 0)
        assert derive_seed(7, "fleet", "a", 0) != derive_seed(7, "fleet", "a", 1)
        assert derive_seed(7, "fleet", "a", 0) != derive_seed(8, "fleet", "a", 0)

    def test_no_label_concatenation_collision(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestScripts:
    def test_every_scenario_produces_ops(self):
        generator = FleetGenerator(seed=3)
        for name, scenario in SCENARIOS.items():
            script = generator.script(name, client=0, n_ops=12, n_rows=100)
            assert script, name
            assert all(op.view for op in script)
            assert any(op.op == "query" for op in script), name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(WorkspaceError, match="unknown scenario"):
            FleetGenerator().script("nope", client=0, n_ops=4)

    def test_same_seed_same_stream(self):
        a = FleetGenerator(seed=11).script("undo_storm", 2, 30, n_rows=64)
        b = FleetGenerator(seed=11).script("undo_storm", 2, 30, n_rows=64)
        assert [op.to_record() for op in a] == [op.to_record() for op in b]

    def test_different_clients_diverge(self):
        generator = FleetGenerator(seed=11)
        a = generator.script("na_survey_corrections", 0, 30, n_rows=64)
        b = generator.script("na_survey_corrections", 1, 30, n_rows=64)
        assert [op.to_record() for op in a] != [op.to_record() for op in b]

    def test_session_events_deterministic(self):
        a = FleetGenerator(seed=5).session_events("timeseries_append", 1, 40)
        b = FleetGenerator(seed=5).session_events("timeseries_append", 1, 40)
        assert [(e.kind, e.attribute, e.row) for e in a] == [
            (e.kind, e.attribute, e.row) for e in b
        ]


def script_stream_in_subprocess(seed: int, hash_seed: str) -> list:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = "src"
    code = (
        "import json, sys\n"
        "from repro.workspace.fleet import SCENARIOS, FleetGenerator\n"
        "generator = FleetGenerator(seed=int(sys.argv[1]))\n"
        "stream = []\n"
        "for scenario in sorted(SCENARIOS):\n"
        "    for client in range(2):\n"
        "        for op in generator.script(scenario, client, 15, n_rows=80):\n"
        "            stream.append(op.to_record())\n"
        "print(json.dumps(stream))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code, str(seed)],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        check=True,
    )
    return json.loads(result.stdout)


class TestCrossProcessReproducibility:
    """The satellite regression: identical seeds -> identical op streams,

    even across interpreters with different ``PYTHONHASHSEED`` (i.e. no
    reliance on Python's salted ``hash()`` anywhere in the pipeline)."""

    def test_streams_identical_across_hash_seeds(self):
        first = script_stream_in_subprocess(42, hash_seed="1")
        second = script_stream_in_subprocess(42, hash_seed="31337")
        assert first == second
        assert first  # non-trivial stream

    def test_different_seeds_differ(self):
        assert script_stream_in_subprocess(1, "0") != script_stream_in_subprocess(
            2, "0"
        )


class TestLiveFleet:
    def test_three_scenarios_drive_live_server(self):
        scenarios = ["na_survey_corrections", "undo_storm", "publish_adopt_mesh"]
        dbms = StatisticalDBMS()
        build_fleet_dbms(dbms, scenarios, n_rows=60, seed=9)
        thread = ServerThread(AnalystServer(dbms)).start()
        try:
            driver = FleetDriver(
                port=thread.port,
                scenarios=scenarios,
                clients_per_scenario=1,
                requests_per_client=8,
                n_rows=60,
                seed=9,
            )
            results = driver.run()
        finally:
            thread.stop()
        assert sorted(results) == sorted(scenarios)
        for name, result in results.items():
            assert result.errors == 0, (name, result)
            assert result.requests > 0
            assert result.rps > 0

    def test_build_fleet_registers_dataset_and_views(self):
        dbms = StatisticalDBMS()
        views = build_fleet_dbms(dbms, ["codebook_churn"], n_rows=40, seed=1)
        assert views == {"codebook_churn": SCENARIOS["codebook_churn"].view}
        view = dbms.view(SCENARIOS["codebook_churn"].view)
        assert FLEET_DATASET in view.definition.canonical()
