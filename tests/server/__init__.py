"""Service-layer tests: protocol, locks, coordinator, wire server."""
