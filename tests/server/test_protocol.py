"""Frame protocol tests: length-prefixed JSON over byte streams."""

import asyncio
import socket
import struct

import pytest

from repro.core.errors import ProtocolError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    decode_payload,
    encode_frame,
    read_frame,
    read_frame_sync,
    write_frame_sync,
)


def roundtrip_async(frames):
    """Feed encoded frames through an asyncio StreamReader, collect decodes."""

    async def run():
        reader = asyncio.StreamReader()
        for message in frames:
            reader.feed_data(encode_frame(message))
        reader.feed_eof()
        out = []
        while True:
            message = await read_frame(reader)
            if message is None:
                return out
            out.append(message)

    return asyncio.run(run())


class TestEncoding:
    def test_frame_layout(self):
        frame = encode_frame({"op": "stats"})
        (length,) = struct.unpack("<I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == {"op": "stats"}

    def test_roundtrip_preserves_structure(self):
        message = {"op": "update", "id": 7, "assignments": {"x": 1.5}, "where": None}
        assert roundtrip_async([message]) == [message]

    def test_multiple_frames_on_one_stream(self):
        frames = [{"id": i} for i in range(5)]
        assert roundtrip_async(frames) == frames

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_payload(b"[1, 2]")

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_payload(b"{nope")

    def test_oversized_frame_refused_on_encode(self):
        with pytest.raises(ProtocolError, match="frame"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


class TestAsyncReads:
    def test_clean_eof_returns_none(self):
        assert roundtrip_async([]) == []

    def test_truncated_frame_is_protocol_error(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "stats"})[:-2])
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(ProtocolError, match="mid-frame"):
            asyncio.run(run())

    def test_oversized_header_refused_before_read(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack("<I", MAX_FRAME_BYTES + 1))
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(ProtocolError, match="frame"):
            asyncio.run(run())


class TestSyncHelpers:
    def test_socketpair_roundtrip(self):
        left, right = socket.socketpair()
        try:
            write_frame_sync(left, {"op": "handshake", "analyst": "alice"})
            message = read_frame_sync(right)
            assert message == {"op": "handshake", "analyst": "alice"}
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert read_frame_sync(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_is_protocol_error(self):
        left, right = socket.socketpair()
        try:
            left.sendall(encode_frame({"op": "stats"})[:-3])
            left.close()
            with pytest.raises(ProtocolError, match="unread"):
                read_frame_sync(right)
        finally:
            right.close()
