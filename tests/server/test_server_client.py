"""Wire server + blocking client: ops, errors, admission control."""

import pytest

from repro.concurrency import ConcurrentTracer
from repro.core.dbms import StatisticalDBMS
from repro.core.errors import ServerError
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.server import AnalystServer, ServerClient, ServerThread
from repro.views.materialize import SourceNode, ViewDefinition


def build_dbms(tracer=None):
    dbms = StatisticalDBMS(tracer=tracer)
    schema = Schema([measure("x"), measure("y")])
    rows = [(float(i), float(i * 2)) for i in range(10)]
    dbms.load_raw(Relation("census", schema, rows))
    dbms.create_view(ViewDefinition("v", SourceNode("census")), analyst="alice")
    return dbms


@pytest.fixture
def running():
    """A served DBMS; yields (thread, tracer) with teardown."""
    tracer = ConcurrentTracer()
    server = AnalystServer(build_dbms(tracer), tracer=tracer, allow_debug=True)
    thread = ServerThread(server).start()
    yield thread, tracer
    thread.stop()


@pytest.fixture
def client(running):
    thread, _ = running
    with ServerClient(port=thread.port) as conn:
        conn.handshake("alice")
        yield conn


class TestBasicOps:
    def test_handshake_assigns_sid_and_lists_views(self, running):
        thread, _ = running
        with ServerClient(port=thread.port) as conn:
            result = conn.handshake("bob")
            assert result["sid"] == conn.sid
            assert result["analyst"] == "bob"
            assert "v" in result["views"]

    def test_sids_are_distinct(self, running):
        thread, _ = running
        with ServerClient(port=thread.port) as a, ServerClient(port=thread.port) as b:
            assert a.handshake("a")["sid"] != b.handshake("b")["sid"]

    def test_open_view_metadata(self, client):
        result = client.open_view("v")
        assert result == {
            "view": "v",
            "version": 0,
            "rows": 10,
            "attributes": ["x", "y"],
        }

    def test_query_mean(self, client):
        result = client.query("v", "mean", "x")
        assert result["value"] == pytest.approx(4.5)
        assert result["version"] == 0

    def test_query_pair(self, client):
        result = client.query("v", "pearson", attributes=["x", "y"])
        assert result["value"] == pytest.approx(1.0)

    def test_update_then_query(self, client):
        result = client.update(
            "v", {"x": 100.0}, where={"attribute": "x", "equals": 0.0}
        )
        assert result["version"] > 0
        assert client.query("v", "mean", "x")["value"] == pytest.approx(14.5)

    def test_undo_reverts(self, client):
        client.update("v", {"x": 100.0}, where={"attribute": "x", "equals": 0.0})
        assert client.undo("v")["undone"] == 1
        assert client.query("v", "mean", "x")["value"] == pytest.approx(4.5)

    def test_undo_past_history_is_noop(self, client):
        assert client.undo("v", count=5)["undone"] == 0

    def test_columns_snapshot(self, client):
        result = client.columns("v", ["x", "y"])
        assert result["columns"]["x"][:3] == [0.0, 1.0, 2.0]
        assert result["columns"]["y"][:3] == [0.0, 2.0, 4.0]

    def test_history_lists_operations(self, client):
        client.update("v", {"x": 1.5}, where={"attribute": "x", "equals": 1.0})
        ops = client.history("v")["operations"]
        assert len(ops) == 1
        assert ops[0]["attribute"] == "x"

    def test_publish_adopt_roundtrip(self, running):
        thread, _ = running
        with ServerClient(port=thread.port) as alice, ServerClient(
            port=thread.port
        ) as bob:
            alice.handshake("alice")
            bob.handshake("bob")
            published = alice.publish("v")
            assert published["publisher"] == "alice"
            adopted = bob.adopt("v", "bobs_copy")
            assert adopted == {"view": "bobs_copy", "rows": 10}

    def test_stats_exposes_counters(self, client):
        client.query("v", "mean", "x")
        stats = client.stats()
        assert stats["counters"]["server.request"] >= 1
        assert stats["counters"]["lock.grant"] >= 1
        assert "v" in stats["views"]
        filtered = client.stats(prefix="server.")
        assert all(k.startswith("server.") for k in filtered["counters"])


class TestErrors:
    def test_unknown_op(self, client):
        with pytest.raises(ServerError) as exc:
            client.call("frobnicate")
        assert exc.value.code == "unknown_op"

    def test_missing_view_maps_to_error_code(self, client):
        with pytest.raises(ServerError) as exc:
            client.query("nope", "mean", "x")
        assert exc.value.code in {"ViewError", "MetadataError"}

    @pytest.mark.parametrize(
        "op,params",
        [
            ("query", {"view": "v"}),  # no function
            ("query", {"view": "v", "function": "mean"}),  # no attribute(s)
            ("query", {"view": "v", "function": "mean", "attributes": ["x"]}),
            ("update", {"view": "v"}),  # no assignments
            ("update", {"view": "v", "assignments": {"x": 1.0}, "where": {}}),
            ("undo", {"view": "v", "count": "many"}),
            ("adopt", {"view": "v"}),  # no new_name
            ("columns", {"view": "v", "attributes": []}),
        ],
    )
    def test_malformed_request_answers_error_frame(self, client, op, params):
        # A bad request must produce an error response, never a
        # connection teardown (which would release the session's locks).
        with pytest.raises(ServerError) as exc:
            client.call(op, **params)
        assert exc.value.code == "protocol"
        # The connection survives and keeps working.
        assert client.query("v", "mean", "x")["value"] == pytest.approx(4.5)

    def test_non_numeric_timeout_is_protocol_error(self, client):
        with pytest.raises(ServerError) as exc:
            client.call("query", view="v", function="mean", attribute="x", timeout_s="soon")
        assert exc.value.code == "protocol"
        with pytest.raises(ServerError) as exc:
            client.call("query", view="v", function="mean", attribute="x", timeout_s=-1)
        assert exc.value.code == "protocol"

    def test_debug_disabled_by_default(self):
        server = AnalystServer(build_dbms())
        thread = ServerThread(server).start()
        try:
            with ServerClient(port=thread.port) as conn:
                conn.handshake("x")
                with pytest.raises(ServerError) as exc:
                    conn.call("debug_sleep", seconds=0.01)
                assert exc.value.code == "forbidden"
        finally:
            thread.stop()


class TestAdmission:
    def test_queue_full_rejects(self):
        tracer = ConcurrentTracer()
        server = AnalystServer(
            build_dbms(tracer),
            tracer=tracer,
            allow_debug=True,
            max_workers=1,
            max_inflight=1,
            max_queue=1,
        )
        thread = ServerThread(server).start()
        try:
            import threading

            # Four concurrent one-second sleeps against 1 worker slot and
            # a queue of 1: at most two can be admitted (one in flight,
            # one queued), so at least two must bounce with "busy".
            outcomes = []
            latch = threading.Lock()

            def sleeper(index):
                with ServerClient(port=thread.port) as conn:
                    conn.handshake(f"sleeper{index}")
                    try:
                        conn.call("debug_sleep", seconds=1.0)
                        result = "ok"
                    except ServerError as exc:
                        result = exc.code
                    with latch:
                        outcomes.append(result)

            workers = [
                threading.Thread(target=sleeper, args=(i,), daemon=True)
                for i in range(4)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(15)
            assert outcomes.count("ok") >= 1
            assert outcomes.count("busy") >= 2
            assert set(outcomes) <= {"ok", "busy"}
        finally:
            thread.stop()

    def test_deadline_times_out(self, client):
        with pytest.raises(ServerError) as exc:
            client.call("debug_sleep", seconds=2.0, timeout_s=0.1)
        assert exc.value.code == "timeout"

    def test_timeout_does_not_free_the_worker_slot_early(self):
        # A timed-out request's thread keeps running; its inflight slot
        # must stay occupied until the thread actually finishes, so
        # max_inflight bounds real concurrent executions.
        server = AnalystServer(
            build_dbms(), allow_debug=True, max_workers=2, max_inflight=1
        )
        thread = ServerThread(server).start()
        try:
            import time

            with ServerClient(port=thread.port) as conn:
                conn.handshake("impatient")
                start = time.monotonic()
                with pytest.raises(ServerError) as exc:
                    conn.call("debug_sleep", seconds=0.6, timeout_s=0.1)
                assert exc.value.code == "timeout"
                # The follow-up must wait for the abandoned thread's slot.
                result = conn.call("debug_sleep", seconds=0.05)
                assert result["slept"] == pytest.approx(0.05)
                assert time.monotonic() - start >= 0.6
        finally:
            thread.stop()

    def test_locks_released_on_disconnect(self, running):
        thread, tracer = running
        with ServerClient(port=thread.port) as conn:
            conn.handshake("alice")
            conn.query("v", "mean", "x")
        # A second connection can immediately write: no lock leaked.
        with ServerClient(port=thread.port) as conn:
            conn.handshake("bob")
            result = conn.update(
                "v", {"x": 5.5}, where={"attribute": "x", "equals": 5.0}
            )
            assert result["version"] > 0
        assert tracer.counter_totals()["server.close"] >= 1
