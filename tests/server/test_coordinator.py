"""TransactionCoordinator tests: MVCC snapshots, serialized writes, quiesce."""

import threading

import pytest

from repro.concurrency import LockMode, TransactionCoordinator
from repro.concurrency.groupcommit import GroupCommitter
from repro.concurrency.transactions import REGISTRY_RESOURCE
from repro.core.dbms import StatisticalDBMS
from repro.durability.manager import DurabilityManager
from repro.relational.expressions import col
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.views.materialize import SourceNode, ViewDefinition


def build_dbms(durability_dir=None):
    durability = (
        DurabilityManager(durability_dir) if durability_dir is not None else None
    )
    dbms = StatisticalDBMS(durability=durability)
    schema = Schema([measure("x"), measure("y")])
    rows = [(float(i), float(i * 2)) for i in range(10)]
    dbms.load_raw(Relation("census", schema, rows))
    dbms.create_view(ViewDefinition("v", SourceNode("census")), analyst="alice")
    return dbms


class TestSessions:
    def test_session_cached_per_sid_and_view(self):
        coord = TransactionCoordinator(build_dbms())
        first = coord.session("s1", "v")
        assert coord.session("s1", "v") is first
        assert coord.session("s2", "v") is not first

    def test_release_drops_cache_and_locks(self):
        coord = TransactionCoordinator(build_dbms())
        first = coord.session("s1", "v")
        coord.locks.acquire("s1", "v", LockMode.SHARED)
        assert coord.release("s1") == 1
        assert coord.locks.held_by("s1") == []
        assert coord.session("s1", "v") is not first

    def test_summary_latch_installed(self):
        coord = TransactionCoordinator(build_dbms())
        session = coord.session("s1", "v")
        latch = session.view.summary.latch
        assert latch is not None
        with latch:  # usable as a context manager
            pass

    def test_summary_latch_installed_at_most_once(self):
        # A second connection opening the same view must NOT swap out the
        # latch other connections' threads may already be inside.
        coord = TransactionCoordinator(build_dbms())
        first = coord.session("s1", "v").view.summary.latch
        assert coord.session("s2", "v").view.summary.latch is first
        # Even after the first session is released, the latch survives.
        coord.release("s1")
        assert coord.session("s3", "v").view.summary.latch is first


class TestReadTransactions:
    def test_read_pins_version_and_computes(self):
        coord = TransactionCoordinator(build_dbms())
        with coord.read("s1", "v") as snap:
            assert snap.version == 0
            assert snap.compute("mean", "x") == pytest.approx(4.5)
            assert snap.operations() == []

    def test_read_sees_committed_writes(self):
        coord = TransactionCoordinator(build_dbms())
        with coord.write("s1", "v") as session:
            session.update(col("x") == 3.0, {"x": 30.0})
        with coord.read("s2", "v") as snap:
            assert snap.version > 0
            assert snap.compute("mean", "x") == pytest.approx(7.2)
            assert len(snap.operations()) == 1

    def test_rogue_write_invisible_until_publication_point(self):
        # MVCC replaces the old exit-time SnapshotError: a mutation that
        # skips coordinator.write() cannot tear an in-flight read (the
        # pinned version is immutable) — it simply stays invisible until
        # the next publication point picks it up.
        coord = TransactionCoordinator(build_dbms())
        rogue = coord.dbms.session("v", analyst="rogue")
        with coord.read("s1", "v") as snap:
            assert snap.compute("sum", "x") == pytest.approx(45.0)
            rogue.update(col("x") == 1.0, {"x": 10.0})
            # Still the published state, mid-read and after:
            assert snap.compute("sum", "x") == pytest.approx(45.0)
        with coord.read("s2", "v") as snap:
            assert snap.compute("sum", "x") == pytest.approx(45.0)
        # The next write transaction publishes, surfacing the mutation.
        with coord.write("s3", "v"):
            pass
        with coord.read("s4", "v") as snap:
            assert snap.compute("sum", "x") == pytest.approx(54.0)

    def test_reader_does_not_block_writer(self):
        # The 8-analyst cliff fix: a held read pins a version but takes
        # no view lock, so writers proceed immediately — and the reader
        # keeps serving its pinned pre-write state.
        coord = TransactionCoordinator(build_dbms(), timeout_s=0.05)
        entered = threading.Event()
        proceed = threading.Event()
        outcome = {}

        def reader():
            with coord.read("reader", "v") as snap:
                entered.set()
                proceed.wait(5)
                outcome["reader_sum"] = snap.compute("sum", "x")

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        entered.wait(1)
        try:
            with coord.write("writer", "v") as session:
                session.update(col("x") == 0.0, {"x": 100.0})
            outcome["writer"] = "entered"
        except Exception as exc:
            outcome["writer"] = type(exc).__name__
        proceed.set()
        thread.join(5)
        assert outcome["writer"] == "entered"
        assert outcome["reader_sum"] == pytest.approx(45.0)
        # A fresh read sees the committed write.
        with coord.read("after", "v") as snap:
            assert snap.compute("sum", "x") == pytest.approx(145.0)


class TestWriteTransactions:
    def test_writes_serialize(self):
        coord = TransactionCoordinator(build_dbms())
        order = []

        def writer(sid, value):
            with coord.write(sid, "v") as session:
                order.append((sid, "in"))
                session.update(col("x") == 0.0, {"y": value})
                order.append((sid, "out"))

        threads = [
            threading.Thread(target=writer, args=(f"s{i}", float(i)), daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        # Strict nesting: every "in" is immediately followed by its "out".
        for i in range(0, len(order), 2):
            assert order[i][0] == order[i + 1][0]
            assert (order[i][1], order[i + 1][1]) == ("in", "out")
        assert coord.dbms.view("v").version == 4


class TestGroupCommitInstall:
    def test_installed_on_durable_dbms(self, tmp_path):
        dbms = build_dbms(tmp_path)
        TransactionCoordinator(dbms)
        assert isinstance(dbms.durability.group_commit, GroupCommitter)

    def test_not_installed_without_durability(self):
        dbms = build_dbms()
        TransactionCoordinator(dbms)
        assert dbms.durability is None

    def test_existing_committer_respected(self, tmp_path):
        dbms = build_dbms(tmp_path)
        mine = GroupCommitter(dbms.durability.wal)
        dbms.durability.group_commit = mine
        TransactionCoordinator(dbms)
        assert dbms.durability.group_commit is mine

    def test_write_through_group_commit_is_durable(self, tmp_path):
        dbms = build_dbms(tmp_path)
        coord = TransactionCoordinator(dbms)
        with coord.write("s1", "v") as session:
            session.update(col("x") == 2.0, {"x": 20.0})
        frames = dbms.durability.wal.scan().records
        kinds = [frame["t"] for frame in frames]
        assert "begin" in kinds and "commit" in kinds
        # The session write's begin record carries the wire session id.
        stamped = [f for f in frames if f["t"] == "begin" and "sid" in f]
        assert [f["sid"] for f in stamped] == ["s1"]


class TestQuiesce:
    def test_quiesce_holds_registry_then_views(self):
        coord = TransactionCoordinator(build_dbms())
        with coord.quiesce("chk"):
            assert set(coord.locks.held_by("chk")) == {REGISTRY_RESOURCE, "v"}
        assert coord.locks.held_by("chk") == []

    def test_quiesce_excludes_writers(self):
        coord = TransactionCoordinator(build_dbms(), timeout_s=0.05)
        with coord.quiesce("chk"):
            with pytest.raises(Exception, match="timed out"):
                with coord.write("s1", "v"):
                    pass

    def test_checkpoint_writes_snapshot(self, tmp_path):
        dbms = build_dbms(tmp_path)
        coord = TransactionCoordinator(dbms)
        with coord.write("s1", "v") as session:
            session.update(col("x") == 1.0, {"x": 11.0})
        path = coord.checkpoint()
        assert path.exists()
        # All locks returned afterwards.
        assert coord.locks.held_by("__checkpoint__") == []
