"""Regression tests for the bugs the REPRO-C2xx analyzer found.

Each test pins one of the concrete fixes:

* REPRO-C205 — session teardown ran ``coordinator.release`` (which takes
  the coordinator's latches) directly on the event loop; it now runs on
  the inline executor.
* REPRO-C202 — ``checkpoint``/``quiesce`` acquired every lock with no
  deadline; they now accept ``timeout_s``, and the checkpoint handler
  passes the request's remaining deadline.
* REPRO-C204 — ``SummaryDatabase.lookup``/``mark_stale`` mutated shared
  stats outside the view latch; they now mutate under it.
"""

import threading
import time

import pytest

from repro.concurrency import LockMode, TransactionCoordinator
from repro.core.errors import LockTimeoutError
from repro.server import AnalystServer, ServerClient, ServerThread
from repro.summary.summarydb import SummaryDatabase

from tests.server.test_coordinator import build_dbms


class TestReleaseOffEventLoop:
    """REPRO-C205: disconnect cleanup must not block the event loop."""

    def test_teardown_release_runs_on_inline_executor(self):
        server = AnalystServer(build_dbms())
        release_threads = []
        original = server.coordinator.release

        def recording_release(sid):
            release_threads.append(threading.current_thread().name)
            return original(sid)

        server.coordinator.release = recording_release
        thread = ServerThread(server).start()
        try:
            with ServerClient(port=thread.port) as conn:
                conn.handshake("alice")
                conn.open_view("v")
            # Teardown is asynchronous to the client's close(): wait for it
            # so stop() cannot race the executor hand-off.
            deadline = time.monotonic() + 5
            while not release_threads and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            thread.stop()
        assert release_threads, "disconnect never reached coordinator.release"
        assert all(
            name.startswith("repro-inline") for name in release_threads
        ), release_threads


class TestBoundedCheckpoint:
    """REPRO-C202: every lock wait on the checkpoint path has a deadline."""

    def test_checkpoint_times_out_against_a_held_view_lock(self):
        coord = TransactionCoordinator(build_dbms())
        coord.locks.acquire("blocker", "v", LockMode.EXCLUSIVE)
        try:
            with pytest.raises(LockTimeoutError):
                coord.checkpoint("chk", timeout_s=0.05)
        finally:
            coord.locks.release_all("blocker")
        # The failed checkpoint must not leak its partial lock set.
        assert coord.locks.held_by("chk") == []

    def test_quiesce_forwards_the_timeout(self):
        coord = TransactionCoordinator(build_dbms())
        coord.locks.acquire("blocker", "v", LockMode.SHARED)
        try:
            with pytest.raises(LockTimeoutError):
                with coord.quiesce("q", timeout_s=0.05):
                    pass  # pragma: no cover - never quiesces
        finally:
            coord.locks.release_all("blocker")
        assert coord.locks.held_by("q") == []

    def test_checkpoint_succeeds_when_uncontended(self, tmp_path):
        coord = TransactionCoordinator(build_dbms(tmp_path))
        assert coord.checkpoint("chk", timeout_s=1.0) is not None
        assert coord.locks.held_by("chk") == []


class _RecordingLatch:
    """Counts acquisitions so tests can prove a section ran latched."""

    def __init__(self):
        self._lock = threading.Lock()
        self.entries = 0

    def __enter__(self):
        self._lock.acquire()
        self.entries += 1
        return self

    def __exit__(self, *exc):
        self._lock.release()


class TestLatchedSummaryStats:
    """REPRO-C204: cache statistics only move under the view latch."""

    def test_lookup_counts_hits_and_misses_under_the_latch(self):
        db = SummaryDatabase("v", entries_per_page=4)
        latch = _RecordingLatch()
        db.install_latch(latch)
        assert db.lookup("mean", "x") is None
        db.insert("mean", "x", 1.0)
        entry = db.lookup("mean", "x")
        assert entry is not None and entry.hit_count == 1
        assert db.stats.misses == 1 and db.stats.hits == 1
        # miss + insert + hit each took the latch at least once.
        assert latch.entries >= 3

    def test_mark_stale_counts_under_the_latch(self):
        db = SummaryDatabase("v", entries_per_page=4)
        db.insert("mean", "x", 1.0)
        entry = db.lookup("mean", "x")
        latch = _RecordingLatch()
        db.install_latch(latch)
        before = latch.entries
        assert db.mark_stale(entry, pending=2)
        assert db.stats.invalidations == 1
        assert entry.pending_updates == 2
        assert latch.entries > before
        # Re-marking an already-stale entry is a latched no-op.
        assert not db.mark_stale(entry)
        assert db.stats.invalidations == 1
