"""LockManager tests: grant rules, writer priority, deadlock, timeout."""

import threading

import pytest

from repro.concurrency.locks import (
    DeadlockError,
    LockManager,
    LockMode,
    LockTimeoutError,
)
from repro.core.errors import ConcurrencyError
from repro.obs.tracer import Tracer


class TestGrantRules:
    def test_shared_locks_coexist(self):
        locks = LockManager()
        locks.acquire("a", "v", LockMode.SHARED)
        locks.acquire("b", "v", LockMode.SHARED)
        assert set(locks.holders("v")) == {"a", "b"}

    def test_exclusive_excludes_shared(self):
        locks = LockManager()
        locks.acquire("a", "v", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire("b", "v", LockMode.SHARED, timeout_s=0.05)

    def test_reentrant_same_mode(self):
        locks = LockManager()
        locks.acquire("a", "v", LockMode.EXCLUSIVE)
        locks.acquire("a", "v", LockMode.EXCLUSIVE)
        locks.release("a", "v")
        # Still held after one release: the count was two.
        assert locks.holders("v") == {"a": LockMode.EXCLUSIVE}
        locks.release("a", "v")
        assert locks.holders("v") == {}

    def test_sole_holder_upgrades_in_place(self):
        locks = LockManager()
        locks.acquire("a", "v", LockMode.SHARED)
        locks.acquire("a", "v", LockMode.EXCLUSIVE)
        assert locks.holders("v") == {"a": LockMode.EXCLUSIVE}

    def test_upgrade_downgrades_when_exclusive_scope_released(self):
        locks = LockManager()
        locks.acquire("a", "v", LockMode.SHARED)
        locks.acquire("a", "v", LockMode.EXCLUSIVE)  # sole-holder upgrade
        locks.release("a", "v")  # inner exclusive scope ends
        # The remaining outer hold was acquired SHARED: other readers
        # must be admitted again.
        assert locks.holders("v") == {"a": LockMode.SHARED}
        locks.acquire("b", "v", LockMode.SHARED, timeout_s=0.05)
        assert set(locks.holders("v")) == {"a", "b"}

    def test_upgrade_survives_nested_exclusive_reentry(self):
        locks = LockManager()
        locks.acquire("a", "v", LockMode.SHARED)
        locks.acquire("a", "v", LockMode.EXCLUSIVE)  # upgrade at level 2
        locks.acquire("a", "v", LockMode.EXCLUSIVE)  # reentrant, level 3
        locks.release("a", "v")  # back to level 2: still inside the upgrade
        assert locks.holders("v") == {"a": LockMode.EXCLUSIVE}
        locks.release("a", "v")  # upgrade scope gone
        assert locks.holders("v") == {"a": LockMode.SHARED}
        locks.release("a", "v")
        assert locks.holders("v") == {}

    def test_upgrade_blocked_by_other_reader(self):
        locks = LockManager()
        locks.acquire("a", "v", LockMode.SHARED)
        locks.acquire("b", "v", LockMode.SHARED)
        with pytest.raises(LockTimeoutError):
            locks.acquire("a", "v", LockMode.EXCLUSIVE, timeout_s=0.05)

    def test_release_unheld_is_error(self):
        locks = LockManager()
        with pytest.raises(ConcurrencyError, match="does not hold"):
            locks.release("a", "v")

    def test_release_all_drops_every_resource(self):
        locks = LockManager()
        locks.acquire("a", "v1", LockMode.SHARED)
        locks.acquire("a", "v2", LockMode.EXCLUSIVE)
        locks.acquire("a", "v2", LockMode.EXCLUSIVE)
        assert locks.release_all("a") == 2
        assert locks.held_by("a") == []

    def test_context_managers(self):
        locks = LockManager()
        with locks.shared("a", "v"):
            assert locks.holders("v") == {"a": LockMode.SHARED}
        with locks.exclusive("a", "v"):
            assert locks.holders("v") == {"a": LockMode.EXCLUSIVE}
        assert locks.holders("v") == {}


class TestWriterPriority:
    def test_queued_writer_blocks_new_readers(self):
        locks = LockManager()
        locks.acquire("r1", "v", LockMode.SHARED)
        started = threading.Event()
        acquired = threading.Event()

        def writer():
            started.set()
            locks.acquire("w", "v", LockMode.EXCLUSIVE, timeout_s=5)
            acquired.set()
            locks.release("w", "v")

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        started.wait(1)
        # Give the writer time to register as a waiter, then try a new reader:
        # writer priority must refuse it even though r1's lock is SHARED.
        deadline_ok = False
        for _ in range(50):
            try:
                locks.acquire("r2", "v", LockMode.SHARED, timeout_s=0.01)
                locks.release("r2", "v")
            except LockTimeoutError:
                deadline_ok = True
                break
        assert deadline_ok, "new reader was admitted past a queued writer"
        locks.release("r1", "v")
        assert acquired.wait(5), "writer never got the lock"
        thread.join(5)


class TestDeadlock:
    def test_two_session_cycle_detected(self):
        locks = LockManager()
        locks.acquire("a", "v1", LockMode.EXCLUSIVE)
        locks.acquire("b", "v2", LockMode.EXCLUSIVE)
        blocked = threading.Event()
        results = {}

        def session_b():
            blocked.set()
            try:
                # b waits for v1 (held by a) -> edge b->a.
                locks.acquire("b", "v1", LockMode.EXCLUSIVE, timeout_s=5)
                results["b"] = "acquired"
            except DeadlockError:
                results["b"] = "deadlock"
            finally:
                locks.release_all("b")

        thread = threading.Thread(target=session_b, daemon=True)
        thread.start()
        blocked.wait(1)
        # a waits for v2 (held by b) -> edge a->b closes the cycle; exactly
        # one side must be chosen as victim and the other must proceed.
        try:
            locks.acquire("a", "v2", LockMode.EXCLUSIVE, timeout_s=5)
            results["a"] = "acquired"
        except DeadlockError as exc:
            results["a"] = "deadlock"
            assert "a" in str(exc) and "b" in str(exc)
        finally:
            locks.release_all("a")
        thread.join(5)
        assert sorted(results.values()) == ["acquired", "deadlock"]

    def test_victim_keeps_existing_locks(self):
        locks = LockManager()
        locks.acquire("a", "v1", LockMode.EXCLUSIVE)
        locks.acquire("b", "v2", LockMode.EXCLUSIVE)
        blocked = threading.Event()

        def session_b():
            blocked.set()
            try:
                locks.acquire("b", "v1", LockMode.EXCLUSIVE, timeout_s=5)
            except DeadlockError:
                pass

        thread = threading.Thread(target=session_b, daemon=True)
        thread.start()
        blocked.wait(1)
        try:
            locks.acquire("a", "v2", LockMode.EXCLUSIVE, timeout_s=5)
        except DeadlockError:
            # The victim still holds what it held before the doomed request.
            assert locks.held_by("a") == ["v1"]
        locks.release_all("a")
        thread.join(5)
        locks.release_all("b")


class TestTimeoutAndCounters:
    def test_default_timeout_applies(self):
        locks = LockManager(timeout_s=0.05)
        locks.acquire("a", "v", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError, match="v"):
            locks.acquire("b", "v", LockMode.SHARED)

    def test_counters_emitted(self):
        tracer = Tracer()
        locks = LockManager(timeout_s=0.05, tracer=tracer)
        locks.acquire("a", "v", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire("b", "v", LockMode.SHARED)
        totals = tracer.counter_totals()
        assert totals["lock.grant"] == 1
        assert totals["lock.wait"] == 1
        assert totals["lock.timeout"] == 1
