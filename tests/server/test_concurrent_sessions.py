"""The multi-analyst stress test (ISSUE acceptance criteria).

Eight concurrent wire clients interleave query/update/undo against one
served DBMS.  The invariants:

* **No deadlock** — every worker finishes inside a wall-clock bound.
* **Atomic snapshots** — attributes ``a`` and ``b`` are always written
  together with the same value (one multi-assignment update = one WAL
  transaction), so a read that ever sees ``a != b`` caught a half-applied
  update.  The ``columns`` op fetches both under a single snapshot.
* **Snapshot coherence** — after the run, results served by the MVCC
  read path (pinned published versions) match a from-scratch recompute
  over the final view contents.
* **Crash consistency** — a mid-run checkpoint followed by a ``kill()``
  and :func:`repro.durability.recovery.recover` restores a state where the
  invariant still holds: recovery replays only whole committed
  transactions.
"""

import threading
import time

import pytest

from repro.concurrency import (
    ConcurrentTracer,
    LockOrderSanitizer,
    install_sanitizer,
)
from repro.core.dbms import StatisticalDBMS
from repro.core.errors import ProtocolError, ServerError
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import recover
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.server import AnalystServer, ServerClient, ServerThread
from repro.views.materialize import SourceNode, ViewDefinition

SESSIONS = 8
ROWS = 12


def build_served_dbms(durability_dir, tracer):
    dbms = StatisticalDBMS(
        tracer=tracer, durability=DurabilityManager(durability_dir)
    )
    schema = Schema([measure("a"), measure("b")])
    dbms.load_raw(Relation("census", schema, [(1.0, 1.0)] * ROWS))
    dbms.create_view(ViewDefinition("v", SourceNode("census")), analyst="seed")
    return dbms


def assert_invariant(columns, context):
    assert columns["a"] == columns["b"], (
        f"{context}: snapshot saw a half-applied update: "
        f"a={columns['a']} b={columns['b']}"
    )


class TestInterleavedSessions:
    """Phase 1: full run to completion, then coherence checks."""

    def test_eight_sessions_no_deadlock_and_atomic_snapshots(self, tmp_path):
        tracer = ConcurrentTracer()
        dbms = build_served_dbms(tmp_path, tracer)
        server = AnalystServer(
            dbms, tracer=tracer, max_workers=SESSIONS, max_inflight=SESSIONS,
            max_queue=64,
        )
        thread = ServerThread(server).start()
        errors = []
        progress = []
        progress_latch = threading.Lock()
        checkpointed = threading.Event()

        def note_progress():
            with progress_latch:
                progress.append(1)
                return len(progress)

        def analyst(index):
            try:
                with ServerClient(port=thread.port, timeout_s=30) as conn:
                    conn.handshake(f"analyst{index}")
                    conn.open_view("v")
                    for i in range(10):
                        value = float(index * 1000 + i)
                        step = (index + i) % 4
                        if step == 0:
                            # Both attributes in ONE update: one WAL txn.
                            conn.update("v", {"a": value, "b": value})
                        elif step == 1:
                            probe = conn.columns("v", ["a", "b"])
                            assert_invariant(
                                probe["columns"], f"analyst{index} iter {i}"
                            )
                        elif step == 2:
                            conn.query("v", "mean", "a")
                        else:
                            # One update = two operations; undo the pair so
                            # the invariant survives partial rollback.
                            conn.undo("v", count=2)
                        note_progress()
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(f"analyst{index}: {type(exc).__name__}: {exc}")

        workers = [
            threading.Thread(target=analyst, args=(i,), daemon=True)
            for i in range(SESSIONS)
        ]
        started = time.monotonic()
        for worker in workers:
            worker.start()

        # Mid-run quiesced checkpoint from a ninth connection.
        def checkpointer():
            while len(progress) < SESSIONS * 3 and time.monotonic() - started < 30:
                time.sleep(0.01)
            try:
                with ServerClient(port=thread.port, timeout_s=30) as conn:
                    conn.handshake("checkpointer")
                    conn.checkpoint()
                    checkpointed.set()
            except Exception as exc:  # noqa: BLE001
                errors.append(f"checkpointer: {type(exc).__name__}: {exc}")

        chk = threading.Thread(target=checkpointer, daemon=True)
        chk.start()

        for worker in workers:
            worker.join(60)
        chk.join(60)
        elapsed = time.monotonic() - started
        try:
            assert all(not w.is_alive() for w in workers), (
                f"worker(s) still blocked after {elapsed:.0f}s — deadlock?"
            )
            assert not errors, errors
            assert checkpointed.is_set()
            assert elapsed < 60

            # Final state still satisfies the invariant.
            view = dbms.view("v")
            a = list(view.column("a"))
            b = list(view.column("b"))
            assert a == b

            # Snapshot coherence: results served end-to-end by the MVCC
            # read path (replica workers, pinned published versions)
            # match a from-scratch recompute over the final columns.
            checked = 0
            with ServerClient(port=thread.port, timeout_s=30) as conn:
                conn.handshake("verifier")
                for fn_name in ("mean", "sum", "min", "max"):
                    fn = dbms.management.functions.get(fn_name)
                    for attr in ("a", "b"):
                        served = conn.query("v", fn_name, attr)["value"]
                        scratch = fn.compute(view.column(attr))
                        assert served == pytest.approx(scratch), (
                            f"served {fn_name}({attr}) diverged from scratch"
                        )
                        checked += 1
            assert checked >= 1, "no served results to verify"

            # The service counters flowed through the shared tracer.
            totals = tracer.counter_totals()
            assert totals["server.accept"] >= SESSIONS
            assert totals["server.request"] > 0
            assert totals["lock.grant"] > 0  # writers still lock
            assert totals.get("wal.group_commit.txns", 0) >= 1
            # MVCC: writers published immutable versions, readers pinned
            # them, and no publication ever observed a regressed view.
            assert totals.get("mvcc.publish", 0) >= 1
            assert totals.get("mvcc.pin", 0) >= 1
            assert "txn.snapshot_violation" not in totals
        finally:
            thread.stop()


class TestSanitizedStress:
    """Phase 3: rerun the interleaved workload under the lock-order sanitizer.

    The runtime acquisition record must agree with the static REPRO-C2xx
    model: no raw inversions, no class edge contradicting the predicted
    order, and the core acquisition sites actually exercised (so the
    cross-check is not vacuous).
    """

    def test_stress_run_matches_static_lock_order(self, tmp_path):
        from repro.lint.concurrency import default_model

        # Install BEFORE building the stack: the manager and every named
        # latch bind the sanitizer at construction time.
        sanitizer = install_sanitizer(LockOrderSanitizer())
        try:
            tracer = ConcurrentTracer()
            dbms = build_served_dbms(tmp_path, tracer)
            server = AnalystServer(
                dbms, tracer=tracer, max_workers=SESSIONS,
                max_inflight=SESSIONS, max_queue=64,
            )
            thread = ServerThread(server).start()
            errors = []

            def analyst(index):
                try:
                    with ServerClient(port=thread.port, timeout_s=30) as conn:
                        conn.handshake(f"analyst{index}")
                        conn.open_view("v")
                        for i in range(6):
                            value = float(index * 1000 + i)
                            step = (index + i) % 4
                            if step == 0:
                                conn.update("v", {"a": value, "b": value})
                            elif step == 1:
                                probe = conn.columns("v", ["a", "b"])
                                assert_invariant(
                                    probe["columns"],
                                    f"analyst{index} iter {i}",
                                )
                            elif step == 2:
                                conn.query("v", "mean", "a")
                            else:
                                conn.undo("v", count=2)
                except Exception as exc:  # noqa: BLE001
                    errors.append(
                        f"analyst{index}: {type(exc).__name__}: {exc}"
                    )

            workers = [
                threading.Thread(target=analyst, args=(i,), daemon=True)
                for i in range(SESSIONS)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(60)
            try:
                assert all(not w.is_alive() for w in workers)
                assert not errors, errors
                # Exercise the quiesce path too: sorted multi-lock sweep.
                with ServerClient(port=thread.port, timeout_s=30) as conn:
                    conn.handshake("checkpointer")
                    conn.checkpoint()
            finally:
                thread.stop()
        finally:
            install_sanitizer(None)

        assert sanitizer.acquisitions > 0, "sanitizer saw no acquisitions"

        # (a) No raw-order inversions: no two resources were ever taken in
        # both orders, even transiently.
        assert sanitizer.inversions() == [], sanitizer.inversions()

        # (b) Nothing observed contradicts the static lock-order graph.
        model = default_model()
        violations = sanitizer.static_violations(model.lock_order_edges())
        assert violations == [], violations

        # (c) Coverage: the workload drove the core acquisition sites, so
        # (a) and (b) are claims about real traffic, not an idle server.
        # MVCC note: "read" is gone from the required set by design — the
        # steady-state read path acquires no locks at all (only the
        # one-time per-view bootstrap in ``chain`` does, and whether the
        # stress run hits it depends on whether a write published first).
        hit, _missed = sanitizer.coverage(model.instrumented_sites())
        hit_functions = {site.function.rsplit(".", 1)[-1] for site in hit}
        for required in ("shared", "exclusive", "write", "quiesce"):
            assert required in hit_functions, (
                f"site {required!r} never exercised; hit={sorted(hit_functions)}"
            )


class TestKillAndRecover:
    """Phase 2: checkpoint, crash mid-run, recover the committed prefix."""

    def test_midrun_kill_recovers_consistent_state(self, tmp_path):
        tracer = ConcurrentTracer()
        dbms = build_served_dbms(tmp_path, tracer)
        server = AnalystServer(
            dbms, tracer=tracer, max_workers=SESSIONS, max_inflight=SESSIONS,
            max_queue=64,
        )
        thread = ServerThread(server).start()
        stop = threading.Event()
        written = set()
        written_latch = threading.Lock()
        progress = []
        progress_latch = threading.Lock()

        def analyst(index):
            try:
                with ServerClient(port=thread.port, timeout_s=10) as conn:
                    conn.handshake(f"analyst{index}")
                    i = 0
                    while not stop.is_set() and i < 200:
                        value = float(index * 1000 + i)
                        with written_latch:
                            written.add(value)
                        if i % 3 == 2:
                            conn.undo("v", count=2)
                        else:
                            conn.update("v", {"a": value, "b": value})
                        with progress_latch:
                            progress.append(1)
                        i += 1
            except (ServerError, ProtocolError, ConnectionError, OSError):
                pass  # the crash severs connections mid-request

        workers = [
            threading.Thread(target=analyst, args=(i,), daemon=True)
            for i in range(SESSIONS)
        ]
        for worker in workers:
            worker.start()

        # Let updates accumulate, checkpoint, let more pile on top, crash.
        deadline = time.monotonic() + 30
        while len(progress) < SESSIONS * 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        with ServerClient(port=thread.port, timeout_s=30) as conn:
            conn.handshake("checkpointer")
            conn.checkpoint()
            checkpoint_version = conn.open_view("v")["version"]
        post_checkpoint = len(progress)
        while len(progress) < post_checkpoint + SESSIONS and (
            time.monotonic() < deadline
        ):
            time.sleep(0.01)
        thread.kill()
        stop.set()
        for worker in workers:
            worker.join(15)
        assert all(not w.is_alive() for w in workers)
        # Abandoned pool threads may still be draining one last commit.
        time.sleep(1.0)

        recovered, report = recover(tmp_path)
        view = recovered.view("v")
        a = list(view.column("a"))
        b = list(view.column("b"))
        # Committed-prefix consistency: only whole transactions replayed,
        # so the two-attribute invariant survives the crash...
        assert a == b
        # ...and every surviving value was actually written by someone.
        allowed = written | {1.0}
        assert set(a) <= allowed
        # Recovery moved past (or to) the checkpointed state.
        assert view.version >= 0
        assert checkpoint_version is not None
