"""End-to-end integration: the full Figure 3 analysis lifecycle."""

import statistics

import pytest

from repro.core.dbms import StatisticalDBMS
from repro.relational.expressions import col
from repro.relational.types import is_na
from repro.stats.eda import ExploratoryAnalyzer
from repro.views.materialize import (
    AggregateNode,
    JoinNode,
    SelectNode,
    SourceNode,
    ViewDefinition,
)
from repro.relational.aggregates import AggregateSpec
from repro.workloads.census import (
    age_group_codebook,
    figure1_dataset,
    generate_microdata,
)


@pytest.fixture()
def dbms():
    db = StatisticalDBMS()
    db.load_raw(generate_microdata(5000, seed=21, bad_value_rate=0.005))
    db.load_raw(figure1_dataset("census_fig1"))
    db.load_raw(age_group_codebook().to_relation())
    db.management.codebooks.register(age_group_codebook())
    return db


class TestAnalysisLifecycle:
    def test_eda_to_cda_lifecycle(self, dbms):
        """The SS2.2 story: explore, check, invalidate, confirm — with the

        Summary Database absorbing the repetition."""
        dbms.create_view(
            ViewDefinition("study", SourceNode("census_micro")), analyst="bates"
        )
        session = dbms.session("study", analyst="bates")
        eda = ExploratoryAnalyzer(session)

        # Exploration: ranges, distribution shape.
        summary = eda.distribution_summary("INCOME")
        assert summary["min"] < summary["median"] < summary["max"]
        histogram = eda.histogram("AGE", bins=10)
        assert histogram.total > 0

        # Data checking: the 1000-year-old person.
        check = eda.check_range("AGE", 0, 120)
        assert check.suspicious_count > 0
        session.mark_invalid("AGE", rows=list(check.suspicious))
        assert session.compute("na_count", "AGE") == check.suspicious_count

        # Outlier sweep with cached M and SD (SS3.1).
        sweep = eda.suggest_outliers("INCOME", k=4.0)
        assert sweep.outside_count >= 0

        # Confirmatory phase: the same statistics again, nearly free.
        scanned_before = session.stats.rows_scanned
        eda.distribution_summary("INCOME")
        eda.distribution_summary("INCOME")
        assert session.stats.rows_scanned == scanned_before

        # Trimmed mean bounded by the cached quantiles (SS3.1).
        trimmed = eda.trimmed_mean("INCOME")
        income = [v for v in session.view.relation.column("INCOME") if not is_na(v)]
        lo = session.compute("quantile_5", "INCOME")
        hi = session.compute("quantile_95", "INCOME")
        kept = [v for v in income if lo <= v <= hi]
        assert trimmed == pytest.approx(statistics.fmean(kept))

    def test_figure1_decode_and_aggregate_view(self, dbms):
        """Figures 1+2: decode through a join, then the SS2.2 coarsening."""
        decode = ViewDefinition(
            "decoded",
            JoinNode(
                SourceNode("census_fig1"),
                SourceNode("codebook_AGE_GROUP_1970"),
                ("AGE_GROUP",),
                ("CATEGORY",),
            ),
        )
        created = dbms.create_view(decode, analyst="boral")
        assert "VALUE" in created.view.schema

        coarse = ViewDefinition(
            "by_race_age",
            AggregateNode(
                SourceNode("census_fig1"),
                ("RACE", "AGE_GROUP"),
                (
                    AggregateSpec("sum", "POPULATION", "POP"),
                    AggregateSpec(
                        "weighted_avg", "AVE_SALARY", "SAL", weight="POPULATION"
                    ),
                ),
            ),
        )
        created = dbms.create_view(coarse, analyst="boral")
        assert len(created.view) == 5  # W x 4 age groups + B x 1

    def test_multi_analyst_sharing(self, dbms):
        """SS2.3: no duplicate tape materializations; published cleaning."""
        dbms.create_view(
            ViewDefinition("pollution_race", SourceNode("census_micro")),
            analyst="alice",
        )
        # Bob asks for the same data: served without tape access.
        creation = dbms.create_view(
            ViewDefinition("pollution_age", SourceNode("census_micro")),
            analyst="bob",
        )
        assert creation.reused is not None

        # Alice cleans and publishes; Carol adopts.
        alice = dbms.session("pollution_race", analyst="alice")
        check = alice.mark_invalid("AGE", predicate=col("AGE") > 150)
        dbms.publish("pollution_race", publisher="alice")
        carol_view = dbms.adopt_published("pollution_race", "carol_study", "carol")
        carol = dbms.session("carol_study", analyst="carol")
        assert carol.compute("na_count", "AGE") > 0

    def test_update_undo_cache_consistency_over_long_run(self, dbms):
        import random

        dbms.create_view(ViewDefinition("w", SourceNode("census_micro")), analyst="a")
        session = dbms.session("w", analyst="a")
        rng = random.Random(5)
        for fn in ("mean", "std", "median", "min", "max", "quantile_95"):
            session.compute(fn, "INCOME")
        for step in range(30):
            row = rng.randrange(len(session.view))
            session.update_cells("INCOME", [(row, rng.uniform(0, 100_000))])
            if step % 7 == 3:
                session.undo(1)
        income = [v for v in session.view.relation.column("INCOME") if not is_na(v)]
        assert session.compute("mean", "INCOME") == pytest.approx(statistics.fmean(income))
        assert session.compute("median", "INCOME") == pytest.approx(
            statistics.median(income)
        )
        assert session.compute("std", "INCOME") == pytest.approx(statistics.stdev(income))
        assert session.cache_stats.recomputations == 0  # purely incremental
