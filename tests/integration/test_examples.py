"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{name} produced no output"
