"""Integration: analyst sessions over storage-mirrored views, with real

I/O accounting end to end — the cache's savings measured in block reads,
not just rows."""

import pytest

from repro.core.accuracy import AccuracyLevel, AccuracyPreference
from repro.core.dbms import StatisticalDBMS
from repro.views.materialize import SourceNode, ViewDefinition
from repro.workloads.census import generate_microdata


@pytest.fixture()
def dbms():
    db = StatisticalDBMS(use_storage_mirrors=True)
    db.load_raw(generate_microdata(5000, seed=77, bad_value_rate=0.0))
    db.create_view(ViewDefinition("v", SourceNode("census_micro")), analyst="a")
    return db


class TestStorageBackedSessions:
    def test_first_compute_pays_io_second_does_not(self, dbms):
        session = dbms.session("v", analyst="a")
        storage = dbms.storage
        storage.pool.clear()
        storage.reset_stats()
        session.compute("median", "INCOME")
        first_reads = storage.report().io.block_reads
        assert first_reads > 0  # the column came off simulated disk
        session.compute("median", "INCOME")
        assert storage.report().io.block_reads == first_reads  # cache hit: zero I/O

    def test_column_scan_reads_only_that_column(self, dbms):
        session = dbms.session("v", analyst="a")
        view = session.view
        storage = dbms.storage
        storage.pool.clear()
        storage.reset_stats()
        session.compute("mean", "AGE")
        reads = storage.report().io.block_reads
        age_index = view.schema.index_of("AGE")
        assert reads == view.storage.column_page_count(age_index)
        assert reads < view.storage.page_count / 2

    def test_update_writes_through_and_survives_reload(self, dbms):
        session = dbms.session("v", analyst="a")
        view = session.view
        session.update_cells("INCOME", [(3, 123_456.0)])
        income_index = view.schema.index_of("INCOME")
        assert view.storage.get_value(3, income_index) == 123_456.0
        # The stored column agrees with memory everywhere.
        assert list(view.storage.scan_column(income_index)) == view.relation.column(
            "INCOME"
        )

    def test_undo_restores_storage_too(self, dbms):
        session = dbms.session("v", analyst="a")
        view = session.view
        income_index = view.schema.index_of("INCOME")
        original = view.storage.get_value(7, income_index)
        session.update_cells("INCOME", [(7, 1.0)])
        session.undo(1)
        assert view.storage.get_value(7, income_index) == original

    def test_mixed_policies_same_storage(self, dbms):
        dbms.management.set_policy(
            "b", "v", AccuracyPreference(AccuracyLevel.TOLERANT, parameter=3).to_policy()
        )
        precise = dbms.session("v", analyst="a")
        tolerant = dbms.session("v", analyst="b")
        before = precise.compute("mean", "INCOME")
        tolerant.compute("mean", "INCOME")
        precise.update_cells("INCOME", [(0, 0.0)])
        # Precise sees the change; both share the same view data.
        assert precise.compute("mean", "INCOME") != before
        assert tolerant.view is precise.view
