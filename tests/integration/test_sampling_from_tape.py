"""Integration: the SS2.2 sampling workflow against the raw tape.

"The statistician may base this preliminary analysis on a set of sample
records drawn at random" — including while the raw data streams off tape
(reservoir sampling needs no second pass), and the later CDA phase applies
tests "to the initial as well as other, perhaps enlarged, samples, and
finally the entire data set."
"""

import statistics

import pytest

from repro.relational.types import is_na
from repro.stats.sampling import reservoir_sample, sample_column
from repro.views.materialize import RawDatabase, SourceNode, ViewDefinition, materialize
from repro.workloads.census import generate_microdata


@pytest.fixture()
def raw():
    db = RawDatabase()
    db.store(generate_microdata(20_000, seed=88, bad_value_rate=0.0))
    return db


class TestReservoirFromTape:
    def test_one_pass_sample_off_tape(self, raw):
        """A k-sample of tape rows without materializing the view."""
        relation = raw.read("census_micro")  # one sequential tape pass
        income_index = relation.schema.index_of("INCOME")
        stream = (row[income_index] for row in relation)
        sample = reservoir_sample(stream, 500, seed=1)
        assert len(sample) == 500
        full_mean = statistics.fmean(relation.column("INCOME"))
        sample_mean = statistics.fmean(sample)
        assert abs(sample_mean - full_mean) / full_mean < 0.15

    def test_enlarged_samples_converge(self, raw):
        """The CDA ladder: initial sample -> enlarged sample -> full data."""
        relation, _ = materialize(ViewDefinition("v", SourceNode("census_micro")), raw)
        income = [v for v in relation.column("INCOME") if not is_na(v)]
        truth = statistics.fmean(income)
        errors = []
        for rate in (0.01, 0.10, 1.0):
            estimate = statistics.fmean(sample_column(income, rate, seed=7))
            errors.append(abs(estimate - truth) / truth)
        assert errors[2] == 0.0
        assert errors[2] <= errors[1] <= errors[0] + 0.02  # near-monotone ladder

    def test_sampled_session_compute(self, raw):
        from repro.core.session import AnalystSession
        from repro.metadata.management import ManagementDatabase
        from repro.views.view import ConcreteView

        relation, _ = materialize(ViewDefinition("v", SourceNode("census_micro")), raw)
        session = AnalystSession(ManagementDatabase(), ConcreteView("v", relation))
        full = session.compute("median", "INCOME")
        approx = session.compute("median", "INCOME", sample=0.02, seed=3)
        assert abs(approx - full) / full < 0.25
        # Preliminary answers cost a fraction of the rows.
        assert session.stats.sampled_queries == 1
