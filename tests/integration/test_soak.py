"""A long random soak: hundreds of mixed operations against one view,

with the cache model-checked against batch recomputation at every step
boundary.  The single-seed, larger-scale companion to the hypothesis
properties."""

import random
import statistics

import pytest

from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.relational.types import is_na
from repro.views.view import ConcreteView
from repro.workloads.census import generate_microdata

CHECK_FUNCTIONS = ("count", "mean", "std", "median", "min", "max", "quantile_90")


def batch_value(function, values, functions):
    return functions.get(function).compute(values)


@pytest.mark.parametrize("seed", [1982, 2026])
def test_soak_mixed_operations(seed):
    rng = random.Random(seed)
    relation = generate_microdata(3000, seed=seed, bad_value_rate=0.0)
    session = AnalystSession(ManagementDatabase(), ConcreteView("soak", relation))
    functions = session.management.functions
    attributes = ["AGE", "INCOME", "HOURS_WORKED", "YEARS_EDUCATION"]
    applied = 0

    for step in range(400):
        roll = rng.random()
        attr = rng.choice(attributes)
        if roll < 0.55:
            fn = rng.choice(CHECK_FUNCTIONS)
            got = session.compute(fn, attr)
            want = batch_value(fn, session.view.relation.column(attr), functions)
            if is_na(want):
                assert is_na(got)
            else:
                assert got == pytest.approx(want, rel=1e-7, abs=1e-7), (step, fn, attr)
        elif roll < 0.80:
            row = rng.randrange(len(session.view))
            value = rng.uniform(0, 100) if attr != "INCOME" else rng.uniform(0, 2e5)
            dtype = session.view.schema.attribute(attr).dtype
            from repro.relational.types import DataType

            if dtype is DataType.INT:
                new_value: object = int(value)
            else:
                new_value = round(value, 3)
            session.update_cells(attr, [(row, new_value)])
            applied += 1
        elif roll < 0.90:
            row = rng.randrange(len(session.view))
            session.mark_invalid(attr, rows=[row])
            applied += 1
        elif applied > 0:
            session.undo(1)
            applied -= 1

    # Terminal full audit across every attribute and function.
    for attr in attributes:
        column = session.view.relation.column(attr)
        for fn in CHECK_FUNCTIONS:
            got = session.compute(fn, attr)
            want = batch_value(fn, column, functions)
            if is_na(want):
                assert is_na(got)
            else:
                assert got == pytest.approx(want, rel=1e-7, abs=1e-7), (fn, attr)

    # The architecture's promise: all of that ran without one full
    # recomputation of a cached statistic.
    assert session.cache_stats.recomputations == 0
    assert session.cache_stats.incremental_updates > 0
