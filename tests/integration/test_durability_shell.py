"""End-to-end durability through the shell: checkpoint, kill, recover, explain.

The scenario the durability layer exists for: an analyst works in the
shell, the process dies, a fresh shell recovers the durability directory
and continues — cached statistics, update history, and EXPLAIN ANALYZE all
intact.  Tracer counters (``wal.*``, ``checkpoint.*``, ``recovery.*``)
verify the work actually flowed through the WAL and replay machinery.
"""

import io

import pytest

from repro.core.dbms import StatisticalDBMS
from repro.core.shell import AnalystShell
from repro.io import write_csv
from repro.obs.tracer import Tracer
from repro.workloads.census import figure1_dataset


def make_shell(dbms=None):
    out = io.StringIO()
    shell = AnalystShell(dbms or StatisticalDBMS(), stdout=out)
    shell._out = out  # type: ignore[attr-defined]
    return shell


def run(shell, command):
    shell._out.truncate(0)
    shell._out.seek(0)
    shell.onecmd(command)
    return shell._out.getvalue()


def counter_total(tracer, name):
    return tracer.counters.get(name, 0) + sum(
        root.total(name) for root in tracer.roots
    )


@pytest.fixture()
def census_csv(tmp_path):
    path = str(tmp_path / "census.csv")
    write_csv(figure1_dataset(), path)
    return path


def test_checkpoint_kill_recover_explain(tmp_path, census_csv):
    durability_dir = str(tmp_path / "dur")
    tracer = Tracer()

    # -- session one: work, checkpoint, more work, then die -----------------
    first = make_shell(StatisticalDBMS(tracer=tracer))
    run(first, f"load {census_csv} census")
    run(first, "view people census")
    run(first, "open people")
    out = run(first, f"durability {durability_dir}")
    assert "durability on" in out
    stat_out = run(first, "stat mean AVE_SALARY")
    live_mean = float(stat_out.strip().rsplit("=", 1)[1])
    run(first, "set AVE_SALARY 0 50")
    assert "checkpointed" in run(first, "checkpoint")
    run(first, "set AVE_SALARY 1 60")  # post-checkpoint: lives only in the WAL
    run(first, "undo 1")
    run(first, "set AVE_SALARY 2 70")

    assert counter_total(tracer, "wal.append") > 0
    assert counter_total(tracer, "wal.fsync") > 0
    assert counter_total(tracer, "checkpoint.write") >= 2  # enable + command
    killed_rows = [tuple(row) for row in first.dbms.view("people").relation]
    killed_version = first.dbms.view("people").history.version
    # Kill: flush what the OS had, abandon the process state.
    first.dbms.durability.wal.close()
    del first

    # -- session two: recover and continue ----------------------------------
    second_tracer = Tracer()
    second = make_shell(StatisticalDBMS(tracer=second_tracer))
    out = run(second, f"recover {durability_dir}")
    assert "recovered 1 view(s)" in out
    assert "checkpoint=yes" in out
    assert "people" in out

    view = second.dbms.view("people")
    assert [tuple(row) for row in view.relation] == killed_rows
    assert view.history.version == killed_version
    assert counter_total(second_tracer, "recovery.replayed") >= 2

    # The session continues exactly where the committed prefix ended.
    run(second, "open people")
    out = run(second, "stat mean AVE_SALARY")
    recovered_mean = float(out.strip().rsplit("=", 1)[1])
    ages = view.column("AVE_SALARY")
    assert recovered_mean == pytest.approx(sum(ages) / len(ages))
    assert recovered_mean != pytest.approx(live_mean)  # the edits survived

    out = run(second, "explain SELECT AVE_SALARY FROM v WHERE AVE_SALARY > 40")
    assert "scan" in out.lower()
    assert "rows" in out.lower()


def test_recover_discards_uncommitted_tail_via_shell(tmp_path, census_csv):
    durability_dir = str(tmp_path / "dur")
    first = make_shell()
    run(first, f"load {census_csv} census")
    run(first, "view people census")
    run(first, "open people")
    run(first, f"durability {durability_dir}")
    run(first, "set AVE_SALARY 0 50")
    # Simulate dying inside a transaction: append begin+op with no commit.
    manager = first.dbms.durability
    operations = first.dbms.view("people").history.operations()
    manager.wal.append({"t": "begin", "txn": 99, "view": "people"})
    manager.wal.close()

    tracer = Tracer()
    second = make_shell(StatisticalDBMS(tracer=tracer))
    out = run(second, f"recover {durability_dir}")
    assert "recovered 1 view(s)" in out
    view = second.dbms.view("people")
    assert view.relation.row(0)[view.schema.index_of("AVE_SALARY")] == 50
    assert len(view.history.operations()) == len(operations)
    assert counter_total(tracer, "recovery.discarded") >= 1


def test_checkpoint_without_durability_reports_cleanly(census_csv):
    shell = make_shell()
    out = run(shell, "checkpoint")
    assert "error" in out
    assert "durability" in out
