"""Failure injection: resource exhaustion and misuse leave clean errors

and consistent state (the library never corrupts data on the error path)."""

import pytest

from repro.core.errors import (
    BufferPoolError,
    DiskError,
    StorageError,
    SummaryError,
    TapeError,
)
from repro.relational.types import DataType
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.pager import BufferPool
from repro.storage.tape import TapeArchive
from repro.storage.transposed import TransposedFile


class TestDiskExhaustion:
    def test_heap_insert_fails_cleanly_when_disk_full(self):
        disk = SimulatedDisk(block_size=256, capacity_blocks=2)
        pool = BufferPool(disk, capacity=4)
        heap = HeapFile(pool, [DataType.INT])
        inserted = []
        with pytest.raises(DiskError, match="disk full"):
            for i in range(10_000):
                inserted.append(heap.insert((i,)))
        # Everything inserted before the failure is still readable.
        for i, rid in enumerate(inserted[: len(heap)]):
            assert heap.get(rid) == (i,)

    def test_transposed_append_fails_cleanly_when_disk_full(self):
        disk = SimulatedDisk(block_size=256, capacity_blocks=3)
        pool = BufferPool(disk, capacity=4)
        tf = TransposedFile(pool, [DataType.INT, DataType.INT])
        with pytest.raises(DiskError, match="disk full"):
            for i in range(10_000):
                tf.append_row((i, i))
        # The committed prefix scans consistently (columns may disagree in
        # length mid-failure; the shorter bound is consistent).
        first = list(tf.scan_column(0))
        assert first == list(range(len(first)))


class TestBufferPoolMisuse:
    def test_pinned_saturation_recovers_after_unpin(self):
        disk = SimulatedDisk(block_size=128)
        pool = BufferPool(disk, capacity=2)
        a, _ = pool.new_page()
        b, _ = pool.new_page()
        with pytest.raises(BufferPoolError):
            pool.new_page()
        pool.unpin(a, dirty=True)
        c, _ = pool.new_page()  # now succeeds
        pool.unpin(b)
        pool.unpin(c)
        pool.flush_all()

    def test_data_survives_error_path(self):
        disk = SimulatedDisk(block_size=256)
        pool = BufferPool(disk, capacity=2)
        heap = HeapFile(pool, [DataType.INT])
        rid = heap.insert((42,))
        with pytest.raises(BufferPoolError):
            pool.unpin(999_999)
        assert heap.get(rid) == (42,)


class TestTapeMisuse:
    def test_oversized_record_rejected_without_corruption(self):
        tape = TapeArchive(block_size=16)
        tape.write_dataset("good", b"x" * 32)
        with pytest.raises(TapeError):
            tape.write_dataset("bad", [b"y" * 64])
        # The earlier dataset remains fully readable.
        assert tape.read_dataset_bytes("good")[:32] == b"x" * 32

    def test_value_too_big_for_page(self):
        disk = SimulatedDisk(block_size=32)
        pool = BufferPool(disk, capacity=4)
        tf = TransposedFile(pool, [DataType.STR])
        with pytest.raises(StorageError, match="exceeds"):
            tf.append_row(("x" * 1000,))


class TestSessionErrorPaths:
    def test_failed_compute_leaves_cache_unpolluted(self):
        from repro.core.session import AnalystSession
        from repro.metadata.management import ManagementDatabase
        from repro.views.view import ConcreteView
        from repro.workloads.census import figure1_dataset

        session = AnalystSession(
            ManagementDatabase(), ConcreteView("v", figure1_dataset())
        )
        from repro.core.errors import FunctionError

        with pytest.raises(FunctionError):
            session.compute("median", "RACE")  # category attribute
        assert len(session.view.summary) == 0  # nothing cached for the failure

    def test_undo_on_empty_history_raises_and_preserves(self):
        from repro.core.errors import HistoryError
        from repro.core.session import AnalystSession
        from repro.metadata.management import ManagementDatabase
        from repro.views.view import ConcreteView
        from repro.workloads.census import figure1_dataset

        session = AnalystSession(
            ManagementDatabase(), ConcreteView("v", figure1_dataset())
        )
        mean_before = session.compute("mean", "AVE_SALARY")
        with pytest.raises(HistoryError):
            session.undo(1)
        assert session.compute("mean", "AVE_SALARY") == mean_before

    def test_summary_store_bad_lookup(self):
        from repro.storage.disk import SimulatedDisk
        from repro.storage.pager import BufferPool
        from repro.summary.stored import StoredSummaryStore
        from repro.summary.summarydb import SummaryDatabase

        disk = SimulatedDisk(block_size=512)
        store = StoredSummaryStore(BufferPool(disk, capacity=8))
        summary = SummaryDatabase("v")
        summary.insert("mean", "x", 1.0)
        store.save(summary)
        with pytest.raises(SummaryError):
            store.lookup("mean", "zzz")
