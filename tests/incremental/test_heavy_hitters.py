"""Tests for the CountMin-backed heavy-hitters sketch and stat function."""

import pytest

from repro.core.errors import FunctionError, StatisticsError
from repro.incremental.sketches import EPSILON_CM, HeavyHitterSketch
from repro.metadata.functions import FunctionRegistry, _heavy_hitters_exact
from repro.relational.types import NA


def build(values, k=3, **kwargs):
    sketch = HeavyHitterSketch(k=k, **kwargs)
    sketch.initialize(values)
    return sketch


SAMPLE = ["a"] * 5 + ["b"] * 3 + ["c"] * 2 + ["d"] + [NA, NA]


class TestSketch:
    def test_matches_exact_on_small_data(self):
        sketch = build(SAMPLE, k=3)
        assert sketch.value == _heavy_hitters_exact(SAMPLE, 3)
        assert sketch.value[0] == ("a", 5.0)

    def test_order_independent(self):
        assert build(SAMPLE, k=3).value == build(list(reversed(SAMPLE)), k=3).value

    def test_insert_promotes_grower(self):
        sketch = build(["a"] * 4 + ["b"] * 3, k=2)
        for _ in range(5):
            sketch.on_insert("c")
        values = [value for value, _ in sketch.value]
        assert "c" in values

    def test_delete_demotes(self):
        sketch = build(["a"] * 5 + ["b"] * 2, k=2)
        for _ in range(4):
            sketch.on_delete("a")
        assert sketch.value[0] == ("b", 2.0)

    def test_na_ignored(self):
        sketch = build([NA, NA, "x"], k=2)
        assert sketch.value == (("x", 1.0),)
        sketch.on_insert(NA)
        sketch.on_delete(NA)
        assert sketch.value == (("x", 1.0),)

    def test_empty(self):
        assert build([], k=3).value == ()

    def test_bad_k_rejected(self):
        with pytest.raises(StatisticsError):
            HeavyHitterSketch(k=0)

    def test_counts_never_underestimate(self):
        values = [i % 50 for i in range(2000)]
        sketch = build(values, k=5, width=256)
        for value, count in sketch.value:
            true = values.count(value)
            assert count >= true
            assert count <= true + EPSILON_CM * len(values) * 4


class TestPartials:
    def test_merge_equals_whole(self):
        left, right = SAMPLE[:6], SAMPLE[6:]
        a = build(left, k=3)
        b = build(right, k=3)
        a.merge_partial(b.partial_state())
        assert a.value == build(SAMPLE, k=3).value

    def test_merge_discovers_cross_shard_heavies(self):
        # 'x' is a minority in each shard but the global majority.
        a = build(["x"] * 3 + ["a"] * 4, k=1)
        b = build(["x"] * 3 + ["b"] * 4, k=1)
        a.merge_partial(b.partial_state())
        assert a.value[0][0] == "x"


class TestPersistence:
    def test_state_round_trip(self):
        sketch = build(SAMPLE, k=3)
        clone = HeavyHitterSketch.from_state(sketch.to_state())
        assert clone.value == sketch.value
        clone.on_insert("b")
        sketch.on_insert("b")
        assert clone.value == sketch.value

    def test_exotic_candidate_not_persistable(self):
        sketch = build([("tuple", "value")] * 3, k=2)
        with pytest.raises(StatisticsError, match="not persistable"):
            sketch.to_state()


class TestStatFunction:
    def test_registered_and_synthesized(self):
        repo = FunctionRegistry()
        default = repo.get("heavy_hitters")
        assert default.epsilon == EPSILON_CM
        assert repo.get("heavy_hitters_3").name == "heavy_hitters_3"
        with pytest.raises(FunctionError):
            repo.get("heavy_hitters_0")

    def test_exact_compute_tie_break(self):
        result = _heavy_hitters_exact(["b", "a", "b", "a", "c"], 2)
        # equal counts break ties by repr: 'a' before 'b'
        assert result == (("a", 2.0), ("b", 2.0))

    def test_maintainer_agrees_with_compute(self):
        repo = FunctionRegistry()
        function = repo.get("heavy_hitters_2")
        maintainer = function.make_maintainer(lambda: SAMPLE)
        assert maintainer.value == function.compute(SAMPLE)
