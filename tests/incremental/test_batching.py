"""Batched delta application: coalesce, apply_batch, and the report merge.

``apply_batch`` must be indistinguishable from folding the same burst one
delta at a time — the batch forms for sums, counts, and moments are a
perf optimisation, not a semantic change.
"""

import statistics

import pytest

from repro.core.propagation import PropagationReport, UpdatePropagator
from repro.incremental.differencing import AlgebraicForm, DEFINITIONS, Delta, derive_incremental
from repro.metadata.management import ManagementDatabase
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.relational.types import NA
from repro.summary.policies import PrecisePolicy
from repro.views.view import ConcreteView

DATA = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0]

BURST = [
    Delta(inserts=[7.0, 11.0]),
    Delta(deletes=[8.0]),
    Delta(updates=[(15.0, 150.0), (42.0, NA)]),
    Delta(inserts=[NA]),
    Delta(updates=[(4.0, 4.5)]),
]


class TestCoalesce:
    def test_concatenates_in_order(self):
        merged = Delta.coalesce(BURST)
        assert merged.inserts == [7.0, 11.0, NA]
        assert merged.deletes == [8.0]
        assert merged.updates == [(15.0, 150.0), (42.0, NA), (4.0, 4.5)]
        assert merged.size == sum(d.size for d in BURST)

    def test_empty_burst_is_empty_delta(self):
        merged = Delta.coalesce([])
        assert merged.size == 0


class TestApplyBatchParity:
    @pytest.mark.parametrize("name", ["count", "sum", "mean", "avg", "var", "std"])
    def test_batch_equals_per_delta_fold(self, name):
        one_by_one = derive_incremental(name)
        batched = derive_incremental(name)
        one_by_one.initialize(DATA)
        batched.initialize(DATA)

        for delta in BURST:
            one_by_one.apply_delta(delta)
        batched.apply_batch(BURST)

        assert batched.value == pytest.approx(one_by_one.value)

    def test_batch_value_matches_recompute(self):
        # After the burst the live multiset is DATA with the burst applied.
        expected = [7.0, 11.0, 4.5, 150.0, 16.0, 23.0]
        for name, reference in [
            ("sum", sum),
            ("mean", statistics.fmean),
            ("var", statistics.variance),
            ("std", statistics.stdev),
        ]:
            inc = derive_incremental(name)
            inc.initialize(DATA)
            value = inc.apply_batch(BURST)
            assert value == pytest.approx(reference(expected)), name

    def test_empty_batch_returns_current_value(self):
        inc = derive_incremental("sum")
        inc.initialize(DATA)
        assert inc.apply_batch([]) == pytest.approx(sum(DATA))

    def test_algebraic_form_batch_parity(self):
        definition = DEFINITIONS["var"]
        one_by_one = AlgebraicForm(definition)
        batched = AlgebraicForm(definition)
        one_by_one.initialize(DATA)
        batched.initialize(DATA)
        for delta in BURST:
            one_by_one.apply_delta(delta)
        value = batched.apply_batch(BURST)
        assert value == pytest.approx(one_by_one.value)

    def test_count_batch_is_exact(self):
        inc = derive_incremental("count")
        inc.initialize(DATA)
        # +3 inserts (one NA), -1 delete, one update to NA: 6 + 2 - 1 - 1 = 6
        assert inc.apply_batch(BURST) == 6.0


class TestReportMerge:
    def test_counters_add_and_names_dedup(self):
        a = PropagationReport(
            attributes=["x"],
            entries_visited=2,
            incremental_updates=1,
            derived_columns_touched=["resid_x"],
        )
        b = PropagationReport(
            attributes=["x", "y"],
            entries_visited=3,
            recomputations=1,
            derived_columns_touched=["resid_x", "z"],
        )
        a.merge(b)
        assert a.attributes == ["x", "y"]
        assert a.derived_columns_touched == ["resid_x", "z"]
        assert a.entries_visited == 5
        assert a.incremental_updates == 1
        assert a.recomputations == 1


@pytest.fixture()
def propagation_setup():
    management = ManagementDatabase()
    schema = Schema([measure("x")])
    relation = Relation("v", schema, [(float(i),) for i in range(50)])
    view = ConcreteView("v", relation)
    propagator = UpdatePropagator(management, view, PrecisePolicy())
    return management, view, propagator


def seed_cache(management, view, function, attr):
    fn = management.functions.get(function)
    maintainer = (
        fn.make_maintainer(view.column_provider(attr)) if fn.is_incremental else None
    )
    return view.summary.insert(
        function, attr, fn.compute(view.column(attr)), maintainer=maintainer
    )


class TestPropagateBatch:
    def test_matches_sequential_propagation(self, propagation_setup):
        management, view, propagator = propagation_setup
        # min/max/median exercise the provider-backed maintainers, which have
        # no algebraic batch form and go through the default fold.
        for fn in ["count", "sum", "mean", "var", "min", "max", "median"]:
            seed_cache(management, view, fn, "x")

        deltas, rows = [], []
        for row, new in [(0, 100.0), (7, -3.0), (49, 0.5)]:
            old = view.set_value(row, "x", new)
            deltas.append(Delta(updates=[(old, new)]))
            rows.append(row)

        report = propagator.propagate_batch("x", deltas, rows)
        column = view.column("x")
        assert view.summary.peek("sum", "x").result == pytest.approx(sum(column))
        assert view.summary.peek("mean", "x").result == pytest.approx(
            statistics.fmean(column)
        )
        assert view.summary.peek("var", "x").result == pytest.approx(
            statistics.variance(column)
        )
        assert view.summary.peek("min", "x").result == min(column)
        assert view.summary.peek("max", "x").result == max(column)
        assert view.summary.peek("median", "x").result == pytest.approx(
            statistics.median(column)
        )
        # One sweep over the entries, not one per delta.
        assert report.entries_visited == 7
        assert report.attributes == ["x"]

    def test_empty_burst_is_noop(self, propagation_setup):
        management, view, propagator = propagation_setup
        seed_cache(management, view, "sum", "x")
        before = view.summary.peek("sum", "x").result
        report = propagator.propagate_batch("x", [])
        assert view.summary.peek("sum", "x").result == before
        assert report.incremental_updates == 0
