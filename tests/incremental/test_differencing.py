"""Tests for the finite-differencing framework."""

import statistics

import pytest

from repro.core.errors import NotIncrementallyComputable
from repro.incremental.differencing import (
    DEFINITIONS,
    AlgebraicForm,
    Delta,
    derive_incremental,
)
from repro.relational.types import NA, is_na

DATA = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0]


class TestDelta:
    def test_size(self):
        d = Delta(inserts=[1], deletes=[2, 3], updates=[(4, 5)])
        assert d.size == 4

    def test_merge(self):
        a = Delta(inserts=[1])
        b = Delta(deletes=[2])
        merged = a.merged_with(b)
        assert merged.inserts == [1] and merged.deletes == [2]


class TestDerivation:
    @pytest.mark.parametrize(
        "name,reference",
        [
            ("count", lambda xs: float(len(xs))),
            ("sum", sum),
            ("mean", statistics.fmean),
            ("avg", statistics.fmean),
            ("var", statistics.variance),
            ("std", statistics.stdev),
        ],
    )
    def test_initialize_matches_batch(self, name, reference):
        inc = derive_incremental(name)
        inc.initialize(DATA)
        assert inc.value == pytest.approx(reference(DATA))

    @pytest.mark.parametrize("name", ["mean", "var", "std", "sum"])
    def test_updates_match_batch(self, name):
        import random

        rng = random.Random(1)
        inc = derive_incremental(name)
        work = list(DATA) * 20
        inc.initialize(work)
        reference = {
            "mean": statistics.fmean,
            "var": statistics.variance,
            "std": statistics.stdev,
            "sum": sum,
        }[name]
        for _ in range(100):
            i = rng.randrange(len(work))
            new = rng.uniform(0, 100)
            inc.on_update(work[i], new)
            work[i] = new
            assert inc.value == pytest.approx(reference(work))

    def test_deltas_batch_application(self):
        inc = derive_incremental("mean")
        inc.initialize([1.0, 2.0, 3.0])
        value = inc.apply_delta(Delta(inserts=[6.0], deletes=[1.0]))
        assert value == pytest.approx((2 + 3 + 6) / 3)

    def test_na_ignored(self):
        inc = derive_incremental("mean")
        inc.initialize([1.0, NA, 3.0])
        assert inc.value == 2.0
        inc.on_insert(NA)
        assert inc.value == 2.0
        inc.on_update(NA, 5.0)  # validates a marked value being corrected
        assert inc.value == pytest.approx(3.0)

    def test_empty_is_na(self):
        inc = derive_incremental("sum")
        inc.initialize([])
        assert is_na(inc.value)
        inc = derive_incremental("var")
        inc.initialize([5.0])
        assert is_na(inc.value)  # ddof=1 undefined for n=1

    def test_median_not_derivable(self):
        """The paper's SS4.2 limitation: ordering-dependent functions."""
        with pytest.raises(NotIncrementallyComputable):
            derive_incremental("median")

    def test_unknown_function(self):
        with pytest.raises(NotIncrementallyComputable):
            derive_incremental("kurtosis")


class TestAlgebraicForm:
    def test_custom_definition(self):
        # Root mean square: sqrt(sumsq / count).
        rms = AlgebraicForm(("sqrt", ("div", ("sumsq",), ("count",))))
        rms.initialize([3.0, 4.0])
        assert rms.value == pytest.approx((12.5) ** 0.5)

    def test_const_arithmetic(self):
        doubled_mean = AlgebraicForm(
            ("mul", ("const", 2), ("div", ("sum",), ("count",)))
        )
        doubled_mean.initialize([1.0, 3.0])
        assert doubled_mean.value == 4.0

    def test_sqrt_of_negative_is_na(self):
        weird = AlgebraicForm(("sqrt", ("sub", ("const", 0), ("sumsq",))))
        weird.initialize([2.0])
        assert is_na(weird.value)

    def test_division_by_zero_na(self):
        form = AlgebraicForm(("div", ("sum",), ("sub", ("count",), ("count",))))
        form.initialize([1.0])
        assert is_na(form.value)

    def test_invalid_operator_rejected(self):
        with pytest.raises(NotIncrementallyComputable, match="not in the differencable"):
            AlgebraicForm(("sort", ("sum",)))

    def test_all_definitions_valid(self):
        for name, definition in DEFINITIONS.items():
            form = AlgebraicForm(definition)
            form.initialize(DATA)
            assert form.value is not None


class TestDeltaNAHandling:
    """NA edge cases: marking an observation invalid is the update (x, NA)
    (paper SS3.1), and it must be counted exactly once."""

    def test_x_to_na_update_counts_as_removal(self):
        form = derive_incremental("mean")
        form.initialize(DATA)
        delta = Delta(updates=[(4.0, NA)])
        form.apply_delta(delta)
        expected = statistics.fmean([x for x in DATA if x != 4.0])
        assert form.value == pytest.approx(expected)

    def test_na_to_x_update_counts_as_insertion(self):
        form = derive_incremental("count")
        form.initialize([1.0, NA, 3.0])
        form.apply_delta(Delta(updates=[(NA, 2.0)]))
        assert form.value == 3.0

    def test_na_to_na_update_is_a_noop(self):
        form = derive_incremental("var")
        form.initialize(DATA)
        before = form.value
        form.apply_delta(Delta(updates=[(NA, NA)]))
        assert form.value == pytest.approx(before)

    def test_mixed_delta_size_counts_na_updates(self):
        delta = Delta(inserts=[1.0, NA], deletes=[2.0], updates=[(3.0, NA)])
        assert delta.size == 4

    def test_na_inserts_do_not_shift_sum(self):
        form = derive_incremental("sum")
        form.initialize(DATA)
        form.apply_delta(Delta(inserts=[NA, NA]))
        assert form.value == pytest.approx(sum(DATA))

    def test_invalidating_every_value_returns_na(self):
        values = [1.0, 2.0]
        form = derive_incremental("mean")
        form.initialize(values)
        form.apply_delta(Delta(updates=[(1.0, NA), (2.0, NA)]))
        assert is_na(form.value)

    def test_round_trip_invalidate_then_restore(self):
        form = derive_incremental("std")
        form.initialize(DATA)
        before = form.value
        form.apply_delta(Delta(updates=[(16.0, NA)]))
        form.apply_delta(Delta(updates=[(NA, 16.0)]))
        assert form.value == pytest.approx(before)


class TestSumlogNonpositive:
    """Regression: a non-positive observation must not poison sumlog forms.

    ``log`` of a non-positive value used to inject NaN into the sumlog
    measure, and the NaN survived even after the offending value was
    deleted — the geometric mean never recovered.  The form now counts
    non-positive contributions and reports NA only while any remain.
    """

    def geo(self):
        return AlgebraicForm(DEFINITIONS["geometric_mean"])

    def test_insert_then_delete_recovers(self):
        form = self.geo()
        form.initialize([2.0, 8.0])
        assert form.value == pytest.approx(4.0)
        form.on_insert(-1.0)
        assert is_na(form.value)
        form.on_delete(-1.0)
        assert form.value == pytest.approx(4.0)

    def test_zero_counts_as_nonpositive(self):
        form = self.geo()
        form.initialize([1.0, 0.0, 4.0])
        assert is_na(form.value)
        form.on_delete(0.0)
        assert form.value == pytest.approx(2.0)

    def test_update_replacing_nonpositive_recovers(self):
        form = self.geo()
        form.initialize([3.0, -2.0])
        assert is_na(form.value)
        form.on_update(-2.0, 27.0)
        assert form.value == pytest.approx(9.0)

    def test_all_positive_unaffected(self):
        form = self.geo()
        form.initialize([1.0, 10.0, 100.0])
        assert form.value == pytest.approx(10.0)

    def test_partial_merge_carries_nonpositive_count(self):
        left, right = self.geo(), self.geo()
        left.initialize([2.0, 8.0])
        right.initialize([-5.0])
        left.merge_partial(right.partial_state())
        assert is_na(left.value)
        left.on_delete(-5.0)
        assert left.value == pytest.approx(4.0)
