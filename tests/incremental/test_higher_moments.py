"""Tests for the extended differencing algebra: higher moments and the

geometric mean, all derived mechanically from their definitions."""

import random

import pytest
import scipy.stats as ss

from repro.incremental.differencing import AlgebraicForm, derive_incremental
from repro.relational.types import NA, is_na
from repro.stats import descriptive as d


@pytest.fixture()
def data():
    rng = random.Random(9)
    return [rng.lognormvariate(1.0, 0.5) for _ in range(2000)]


class TestBatchAgainstScipy:
    def test_skewness(self, data):
        assert d.skewness(data) == pytest.approx(ss.skew(data))

    def test_kurtosis(self, data):
        assert d.kurtosis_excess(data) == pytest.approx(ss.kurtosis(data))

    def test_geometric_mean(self, data):
        assert d.geometric_mean(data) == pytest.approx(ss.gmean(data))

    def test_geometric_mean_nonpositive_na(self):
        assert is_na(d.geometric_mean([1.0, -2.0]))
        assert is_na(d.geometric_mean([0.0]))

    def test_rms(self):
        assert d.rms([3.0, 4.0]) == pytest.approx((12.5) ** 0.5)

    def test_cv(self):
        assert d.cv([10.0, 20.0]) == pytest.approx(d.std([10.0, 20.0]) / 15.0)
        assert is_na(d.cv([0.0, 0.0]))

    def test_degenerate_na(self):
        assert is_na(d.skewness([5.0]))
        assert is_na(d.kurtosis_excess([5.0, 5.0]))  # zero m2


class TestIncrementalForms:
    @pytest.mark.parametrize(
        "name,batch",
        [
            ("skewness", d.skewness),
            ("kurtosis_excess", d.kurtosis_excess),
            ("geometric_mean", d.geometric_mean),
            ("rms", d.rms),
            ("cv", d.cv),
        ],
    )
    def test_tracks_updates(self, data, name, batch):
        rng = random.Random(10)
        work = list(data)
        computation = derive_incremental(name)
        computation.initialize(work)
        assert computation.value == pytest.approx(batch(work), rel=1e-6)
        for _ in range(300):
            index = rng.randrange(len(work))
            new = rng.lognormvariate(1.0, 0.5)
            computation.on_update(work[index], new)
            work[index] = new
        assert computation.value == pytest.approx(batch(work), rel=1e-5)

    def test_na_values_skipped(self):
        computation = derive_incremental("skewness")
        computation.initialize([1.0, NA, 2.0, 10.0, NA])
        assert computation.value == pytest.approx(d.skewness([1.0, 2.0, 10.0]))

    def test_geometric_mean_poisoned_by_nonpositive(self):
        computation = derive_incremental("geometric_mean")
        computation.initialize([1.0, 2.0, -3.0])
        assert is_na(computation.value)

    def test_pow_operator(self):
        cube_mean = AlgebraicForm(("pow", ("div", ("sum",), ("count",)), 3))
        cube_mean.initialize([2.0, 4.0])
        assert cube_mean.value == 27.0

    def test_pow_negative_base_fractional_exp_na(self):
        form = AlgebraicForm(("pow", ("sum",), 0.5))
        form.initialize([-4.0])
        assert is_na(form.value)

    def test_exp_overflow_na(self):
        form = AlgebraicForm(("exp", ("sum",)))
        form.initialize([1e6])
        assert is_na(form.value)


class TestRegistryIntegration:
    def test_functions_registered_and_incremental(self):
        from repro.metadata.functions import FunctionRegistry

        registry = FunctionRegistry()
        for name in ("skewness", "kurtosis_excess", "geometric_mean", "rms", "cv"):
            fn = registry.get(name)
            assert fn.is_incremental

    def test_session_caches_higher_moments(self):
        from repro.core.session import AnalystSession
        from repro.metadata.management import ManagementDatabase
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema, measure
        from repro.views.view import ConcreteView

        rng = random.Random(11)
        relation = Relation(
            "v",
            Schema([measure("x")]),
            [(rng.lognormvariate(0, 0.4),) for _ in range(500)],
        )
        session = AnalystSession(ManagementDatabase(), ConcreteView("v", relation))
        before = session.compute("skewness", "x")
        session.update_cells("x", [(0, 100.0)])
        after = session.compute("skewness", "x")
        assert after == pytest.approx(d.skewness(relation.column("x")), rel=1e-6)
        assert after != before
        assert session.cache_stats.recomputations == 0  # maintained, not redone
