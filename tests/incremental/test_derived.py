"""Tests for derived-column rules (local vs global, paper SS3.2)."""

import math

import pytest

from repro.core.errors import RuleError
from repro.incremental.derived import (
    DerivedColumnManager,
    GlobalDerivation,
    LocalDerivation,
    RefreshMode,
)
from repro.relational.expressions import col, func
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.relational.types import NA, DataType, is_na
from repro.stats.regression import residual_computer


def make_relation():
    schema = Schema([measure("x"), measure("y"), measure("z")])
    rows = [(float(i), 2.0 * i + 1.0, 5.0) for i in range(20)]
    return Relation("r", schema, rows)


class TestLocalDerivation:
    def test_sum_of_attributes(self):
        """The paper's example: a new column = x + y + z."""
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        mgr.add(LocalDerivation("total", col("x") + col("y") + col("z")))
        assert "total" in rel.schema
        assert rel.column("total")[2] == 2.0 + 5.0 + 5.0

    def test_log_column(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        mgr.add(LocalDerivation("logx", func("log", col("x") + 1)))
        assert rel.column("logx")[0] == pytest.approx(0.0)
        assert rel.column("logx")[9] == pytest.approx(math.log(10))

    def test_point_update_recomputes_one_cell(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        deriv = LocalDerivation("total", col("x") + col("y"))
        mgr.add(deriv)
        rel.set_value(3, "x", 100.0)
        mgr.on_base_change("x", [3])
        assert rel.column("total")[3] == 100.0 + 7.0
        assert deriv.stats.cell_recomputes == 1  # exactly one cell

    def test_na_propagates(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        mgr.add(LocalDerivation("total", col("x") + col("y")))
        rel.set_value(0, "x", NA)
        mgr.on_base_change("x", [0])
        assert is_na(rel.column("total")[0])

    def test_requires_dependencies(self):
        from repro.relational.expressions import Const

        with pytest.raises(RuleError):
            LocalDerivation("c", Const(5))


class TestGlobalDerivation:
    def test_residuals_eager(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        deriv = GlobalDerivation(
            "resid", ["x", "y"], residual_computer("y", ["x"]), RefreshMode.EAGER
        )
        mgr.add(deriv)
        # y is exactly linear in x, so residuals are ~0.
        assert max(abs(v) for v in rel.column("resid")) < 1e-9
        rel.set_value(5, "y", 999.0)
        mgr.on_base_change("y", [5])
        # The whole vector was regenerated (model changed).
        assert deriv.stats.vector_regenerations == 1  # the add() itself uses initial_values
        assert abs(rel.column("resid")[5]) > 100

    def test_mark_stale_defers(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        deriv = GlobalDerivation(
            "resid", ["x", "y"], residual_computer("y", ["x"]), RefreshMode.MARK_STALE
        )
        mgr.add(deriv)
        rel.set_value(5, "y", 999.0)
        mgr.on_base_change("y", [5])
        assert deriv.stale
        assert deriv.stats.vector_regenerations == 0
        values = mgr.read_column("resid")  # lazy refresh happens here
        assert not deriv.stale
        assert deriv.stats.vector_regenerations == 1
        assert abs(values[5]) > 100


class TestManager:
    def test_duplicate_rejected(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        mgr.add(LocalDerivation("t", col("x") + 1))
        with pytest.raises(RuleError, match="already"):
            mgr.add(LocalDerivation("t", col("x") + 2))

    def test_unknown_dependency_rejected(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError):
            mgr.add(LocalDerivation("t", col("nope") + 1))

    def test_transitive_cascade(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        mgr.add(LocalDerivation("a1", col("x") * 2))
        mgr.add(LocalDerivation("a2", col("a1") + 1))
        rel.set_value(0, "x", 50.0)
        touched = mgr.on_base_change("x", [0])
        assert set(touched) == {"a1", "a2"}
        assert rel.column("a2")[0] == 101.0

    def test_untouched_attr_no_cascade(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        mgr.add(LocalDerivation("a1", col("x") * 2))
        assert mgr.on_base_change("z", [0]) == []

    def test_names_and_lookup(self):
        rel = make_relation()
        mgr = DerivedColumnManager(rel)
        mgr.add(LocalDerivation("t", col("x") + 1))
        assert mgr.names == ["t"]
        assert mgr.derivation("t").name == "t"
        with pytest.raises(RuleError):
            mgr.derivation("missing")
