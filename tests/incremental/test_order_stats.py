"""Tests for the median/quantile histogram window (paper SS4.2)."""

import random
import statistics

import numpy as np
import pytest

from repro.core.errors import StatisticsError
from repro.incremental.order_stats import MedianWindow, QuantileWindow
from repro.relational.types import NA, is_na


class Backing:
    """A mutable value store honouring the provider contract: data is

    changed *before* the window is notified."""

    def __init__(self, values):
        self.values = list(values)

    def provider(self):
        return list(self.values)

    def update(self, window, index, new):
        old = self.values[index]
        self.values[index] = new
        window.on_update(old, new)

    def insert(self, window, value):
        self.values.append(value)
        window.on_insert(value)

    def delete(self, window, index):
        old = self.values.pop(index)
        window.on_delete(old)


class TestMedianWindow:
    def test_initial_matches_true_median(self):
        backing = Backing(range(1001))
        window = MedianWindow(backing.provider, window_size=50)
        assert window.value == 500

    def test_even_count_interpolates(self):
        backing = Backing([1.0, 2.0, 3.0, 4.0])
        window = MedianWindow(backing.provider)
        assert window.value == 2.5

    def test_empty_is_na(self):
        backing = Backing([])
        window = MedianWindow(backing.provider)
        assert is_na(window.value)

    def test_na_values_ignored(self):
        backing = Backing([1.0, NA, 3.0, NA, 5.0])
        window = MedianWindow(backing.provider)
        assert window.value == 3.0
        window.on_insert(NA)
        assert window.value == 3.0

    def test_stationary_updates_exact(self):
        rng = random.Random(0)
        backing = Backing([rng.gauss(50, 10) for _ in range(2000)])
        window = MedianWindow(backing.provider, window_size=100)
        for _ in range(1000):
            backing.update(window, rng.randrange(2000), rng.gauss(50, 10))
            assert window.value == pytest.approx(statistics.median(backing.values))

    def test_stationary_updates_rarely_regenerate(self):
        """The paper's claim: the pointer wanders, regeneration is rare."""
        rng = random.Random(1)
        backing = Backing([rng.gauss(50, 10) for _ in range(5000)])
        window = MedianWindow(backing.provider, window_size=100)
        window.value
        for _ in range(2000):
            backing.update(window, rng.randrange(5000), rng.gauss(50, 10))
        window.value
        assert window.stats.regenerations <= 5
        assert window.stats.pointer_moves == 4000

    def test_regeneration_is_single_pass(self):
        """Each regeneration after drift makes exactly one data pass."""
        rng = random.Random(2)
        backing = Backing([rng.gauss(0, 5) for _ in range(3000)])
        window = MedianWindow(backing.provider, window_size=80)
        window.value
        passes_before = window.stats.data_passes
        for step in range(2000):
            backing.update(window, rng.randrange(3000), rng.gauss(step * 0.1, 5))
            window.value
        extra_regens = window.stats.regenerations - 1
        extra_passes = window.stats.data_passes - passes_before
        assert extra_regens > 3  # drift forced pointer run-offs
        assert extra_passes == extra_regens + window.stats.extra_passes
        assert window.stats.extra_passes <= extra_regens  # mostly single-pass

    def test_inserts_and_deletes(self):
        rng = random.Random(3)
        backing = Backing([float(i) for i in range(100)])
        window = MedianWindow(backing.provider, window_size=20)
        for _ in range(300):
            if rng.random() < 0.5 and len(backing.values) > 10:
                backing.delete(window, rng.randrange(len(backing.values)))
            else:
                backing.insert(window, rng.uniform(0, 100))
            assert window.value == pytest.approx(statistics.median(backing.values))

    def test_duplicate_heavy_data(self):
        rng = random.Random(4)
        backing = Backing([rng.randrange(5) for _ in range(1000)])
        window = MedianWindow(backing.provider, window_size=32)
        for _ in range(1000):
            backing.update(window, rng.randrange(1000), rng.randrange(5))
            assert window.value == statistics.median(backing.values)

    def test_delete_out_of_window_range_value_errors_if_absent(self):
        backing = Backing([1.0, 2.0, 3.0])
        window = MedianWindow(backing.provider, digest_fallback=False)
        window.value
        with pytest.raises(StatisticsError):
            window.on_delete(2.5)  # inside bounds, never present

    def test_delete_absent_value_enters_digest_mode(self):
        # Default behavior: the invariant break degrades to digest-served
        # reads off the provider instead of raising mid-propagation.
        backing = Backing([1.0, 2.0, 3.0])
        window = MedianWindow(backing.provider)
        window.value
        window.on_delete(2.5)  # inside bounds, never present
        assert window.in_digest_mode
        assert window.stats.invariant_breaks == 1
        assert window.value == pytest.approx(2.0)

    def test_window_size_validation(self):
        with pytest.raises(StatisticsError):
            MedianWindow(lambda: [], window_size=4)
        with pytest.raises(StatisticsError):
            MedianWindow(lambda: [], window_size=10, margin=5)

    def test_delete_everything(self):
        backing = Backing([1.0, 2.0])
        window = MedianWindow(backing.provider)
        window.value
        backing.delete(window, 0)
        backing.delete(window, 0)
        assert is_na(window.value)


class TestQuantileWindow:
    @pytest.mark.parametrize("q", [0.05, 0.25, 0.5, 0.75, 0.95])
    def test_matches_numpy(self, q):
        rng = random.Random(5)
        values = [rng.gauss(0, 1) for _ in range(1500)]
        window = QuantileWindow(q, lambda: values, window_size=80)
        assert window.value == pytest.approx(float(np.quantile(values, q)))

    def test_extreme_quantiles(self):
        values = [float(i) for i in range(100)]
        assert QuantileWindow(0.0, lambda: values).value == 0.0
        assert QuantileWindow(1.0, lambda: values).value == 99.0

    def test_drift_tracks_quantile(self):
        rng = random.Random(6)
        backing = Backing([rng.gauss(100, 15) for _ in range(2000)])
        window = QuantileWindow(0.9, backing.provider, window_size=100)
        for step in range(1500):
            backing.update(window, rng.randrange(2000), rng.gauss(100 + step * 0.1, 15))
        assert window.value == pytest.approx(float(np.quantile(backing.values, 0.9)))
        assert window.stats.regenerations < 100

    def test_invalid_q(self):
        with pytest.raises(StatisticsError):
            QuantileWindow(1.5, lambda: [])

    def test_initialize_protocol(self):
        window = MedianWindow(lambda: [1.0, 2.0, 3.0])
        window.initialize([5.0, 6.0, 7.0])
        assert window.value == 6.0  # uses the initialized data
