"""Regression tests for the median maintainer's mixed-burst drift.

``Delta.coalesce`` reorders a mixed burst into inserts → deletes →
updates.  A legitimate analyst burst such as ``update(30 → 25)`` followed
by ``delete(25)`` therefore reaches :class:`MedianWindow` with the delete
*first* — deleting a value the window has never seen.  When that value
falls inside the window bounds (or the window is empty), the paper's
histogram-window scheme has no way to classify it and historically raised
``StatisticsError`` mid-propagation, wedging the entry.  The fix routes
the window through a t-digest rebuild when the invariant breaks instead
of raising: the provider already reflects the post-burst data (the
documented contract), so one provider pass restores a correct answer.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import StatisticsError
from repro.incremental.differencing import Delta
from repro.incremental.order_stats import MedianWindow, QuantileWindow
from repro.relational.types import NA


def test_coalesced_update_then_delete_inside_bounds() -> None:
    """update(30→25) + delete(25) coalesces to delete-first; 25 is in
    [10, 30] but absent from the window — must recover, not raise."""
    data = [10.0, 20.0, 30.0]
    window = MedianWindow(lambda: list(data))
    window.initialize(data)
    assert window.value == 20.0

    burst = Delta.coalesce(
        [Delta(updates=[(30.0, 25.0)]), Delta(deletes=[25.0])]
    )
    # Provider contract: data reflects the burst before notification.
    data[:] = [10.0, 20.0]
    window.apply_batch((burst,))
    assert window.value == pytest.approx(15.0)
    assert window.stats.invariant_breaks >= 1


def test_coalesced_burst_on_empty_multiset() -> None:
    """update(NA→5) + delete(5) against an all-NA column: the coalesced
    delete hits an empty multiset."""
    data: list[object] = [NA, NA]
    window = MedianWindow(lambda: list(data))
    window.initialize(data)
    assert window.value is NA

    burst = Delta.coalesce([Delta(updates=[(NA, 5.0)]), Delta(deletes=[5.0])])
    data[:] = [NA]
    window.apply_batch((burst,))
    assert window.value is NA
    assert window.stats.invariant_breaks >= 1


def test_digest_mode_tracks_later_mutations() -> None:
    """After the invariant breaks, later inserts/deletes must still be
    reflected in reads (digest mode stays provider-correct)."""
    data = [float(v) for v in range(1, 8)]  # 1..7, median 4
    window = MedianWindow(lambda: list(data))
    window.initialize(data)

    burst = Delta.coalesce([Delta(updates=[(7.0, 6.5)]), Delta(deletes=[6.5])])
    data[:] = [float(v) for v in range(1, 7)]  # 1..6
    window.apply_batch((burst,))
    assert window.value == pytest.approx(3.5)

    # Ordinary maintenance continues after the break.
    data.append(100.0)
    window.on_insert(100.0)
    assert window.value == pytest.approx(4.0)
    data.remove(1.0)
    window.on_delete(1.0)
    assert window.value == pytest.approx(4.5)


def test_explicit_regenerate_restores_exact_window() -> None:
    """regenerate() exits digest mode and rebuilds the exact window."""
    data = [10.0, 20.0, 30.0]
    window = MedianWindow(lambda: list(data))
    window.initialize(data)
    burst = Delta.coalesce(
        [Delta(updates=[(30.0, 25.0)]), Delta(deletes=[25.0])]
    )
    data[:] = [10.0, 20.0]
    window.apply_batch((burst,))
    assert window.stats.invariant_breaks >= 1

    window.regenerate()
    assert not window.in_digest_mode
    assert window.value == pytest.approx(15.0)
    # Exact maintenance resumes: a clean delete must not re-break.
    data.remove(10.0)
    window.on_delete(10.0)
    assert window.value == pytest.approx(20.0)
    assert window.stats.invariant_breaks == 1


def test_quantile_window_survives_mixed_burst() -> None:
    data = [float(v) for v in range(1, 11)]
    window = QuantileWindow(0.75, lambda: list(data))
    window.initialize(data)
    burst = Delta.coalesce([Delta(updates=[(10.0, 9.5)]), Delta(deletes=[9.5])])
    data[:] = [float(v) for v in range(1, 10)]
    window.apply_batch((burst,))
    expected = sorted(data)[6]  # q=0.75 over 9 values → position 6 exactly
    assert window.value == pytest.approx(expected)


def test_mixed_storm_matches_sorted_truth() -> None:
    """A long randomized storm of coalesced mixed bursts (with NA churn)
    must track the sorted-truth median within digest accuracy (exact at
    these sizes: unit centroids)."""
    rng = random.Random(90210)
    data: list[object] = [float(rng.randint(0, 50)) for _ in range(40)]
    window = MedianWindow(lambda: list(data), window_size=8, margin=1)
    window.initialize(data)
    for _ in range(60):
        deltas: list[Delta] = []
        for _ in range(rng.randint(1, 4)):
            kind = rng.random()
            if kind < 0.4 and data:
                i = rng.randrange(len(data))
                old = data[i]
                new = NA if rng.random() < 0.3 else float(rng.randint(0, 50))
                data[i] = new
                deltas.append(Delta(updates=[(old, new)]))
            elif kind < 0.7:
                v = float(rng.randint(0, 50))
                data.append(v)
                deltas.append(Delta(inserts=[v]))
            elif data:
                i = rng.randrange(len(data))
                v = data.pop(i)
                deltas.append(Delta(deletes=[v]))
        if not deltas:
            continue
        window.apply_batch((Delta.coalesce(deltas),))
        clean = sorted(float(v) for v in data if v is not NA)
        if not clean:
            assert window.value is NA
            continue
        n = len(clean)
        if n % 2 == 1:
            truth = clean[n // 2]
        else:
            truth = (clean[n // 2 - 1] + clean[n // 2]) / 2.0
        assert window.value == pytest.approx(truth)


def test_pre_fix_failure_mode_documented() -> None:
    """The historical failure: a bare on_delete of an in-bounds absent
    value still raises when digest routing is disabled — the raise is the
    invariant violation the routing exists to absorb."""
    window = MedianWindow(lambda: [10.0, 20.0, 30.0], digest_fallback=False)
    window.initialize([10.0, 20.0, 30.0])
    with pytest.raises(StatisticsError):
        window.on_delete(25.0)
