"""Tests for the maintained histogram."""

import pytest

from repro.core.errors import StatisticsError
from repro.incremental.histogram import MaintainedHistogram
from repro.relational.types import NA


class TestMaintainedHistogram:
    def test_initialize_counts(self):
        h = MaintainedHistogram(0, 10, bins=5)
        h.initialize([0.5, 1.5, 2.5, 9.9, NA])
        assert h.total == 4
        assert h.counts[0] == 2  # [0, 2) holds 0.5 and 1.5

    def test_edges_vector(self):
        h = MaintainedHistogram(0, 10, bins=5)
        assert h.edges == [0, 2, 4, 6, 8, 10]
        edges, counts = h.value
        assert len(edges) == 6 and len(counts) == 5

    def test_insert_delete_roundtrip(self):
        h = MaintainedHistogram(0, 10, bins=2)
        h.initialize([1.0, 6.0])
        h.on_insert(2.0)
        h.on_delete(1.0)
        assert h.counts == [1, 1]

    def test_out_of_range_tracked(self):
        h = MaintainedHistogram(0, 10, bins=2)
        h.initialize([1.0])
        h.on_insert(-5.0)
        h.on_insert(50.0)
        assert h.underflow == 1 and h.overflow == 1
        assert h.escaped_fraction == pytest.approx(2 / 3)

    def test_delete_from_empty_bucket_rejected(self):
        h = MaintainedHistogram(0, 10, bins=2)
        h.initialize([])
        with pytest.raises(StatisticsError):
            h.on_delete(1.0)

    def test_updates(self):
        h = MaintainedHistogram(0, 10, bins=2)
        h.initialize([1.0])
        h.on_update(1.0, 9.0)
        assert h.counts == [0, 1]

    def test_auto_rebin_on_escape(self):
        values = list(range(10))
        work = [float(v) for v in values]
        h = MaintainedHistogram(0, 10, bins=5, values_provider=lambda: work)
        h.initialize(work)
        # Push lots of mass far above the range; rebinning should trigger.
        for i in range(5):
            work.append(100.0 + i)
            h.on_insert(100.0 + i)
        assert h.rebins >= 1
        # Only the values inserted after the last rebin can still overflow.
        assert h.overflow <= 2
        assert h.total == len(work)

    def test_rebin_requires_provider(self):
        h = MaintainedHistogram(0, 10, bins=2)
        with pytest.raises(StatisticsError, match="provider"):
            h.rebin()

    def test_rebin_empty_data(self):
        work = []
        h = MaintainedHistogram(0, 10, bins=2, values_provider=lambda: work)
        h.rebin()
        assert h.total == 0

    def test_validation(self):
        with pytest.raises(StatisticsError):
            MaintainedHistogram(0, 10, bins=0)
        with pytest.raises(StatisticsError):
            MaintainedHistogram(5, 5, bins=2)
