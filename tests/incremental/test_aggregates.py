"""Tests for hand-built incremental aggregates."""

import random
import statistics

import pytest

from repro.core.errors import StatisticsError
from repro.incremental.aggregates import (
    IncrementalCount,
    IncrementalMax,
    IncrementalMean,
    IncrementalMin,
    IncrementalMinMax,
    IncrementalStd,
    IncrementalSum,
    IncrementalVariance,
    IncrementalWeightedMean,
)
from repro.relational.types import NA, is_na

DATA = [5.0, 1.0, 9.0, 3.0, 7.0]


class TestCount:
    def test_basic(self):
        c = IncrementalCount()
        c.initialize([1, NA, 2, NA])
        assert c.value == 2
        assert c.na_count == 2

    def test_updates(self):
        c = IncrementalCount()
        c.initialize([1, 2])
        c.on_update(2, NA)  # marking invalid
        assert c.value == 1 and c.na_count == 1
        c.on_update(NA, 5)  # restoring
        assert c.value == 2 and c.na_count == 0


class TestSumMeanVar:
    def test_sum_kahan_stability(self):
        s = IncrementalSum()
        s.initialize([1e16, 1.0, -1e16])
        assert s.value == 1.0

    def test_mean_insert_delete(self):
        m = IncrementalMean()
        m.initialize(DATA)
        m.on_insert(100.0)
        assert m.value == pytest.approx(statistics.fmean(DATA + [100.0]))
        m.on_delete(100.0)
        assert m.value == pytest.approx(statistics.fmean(DATA))

    def test_mean_empty(self):
        m = IncrementalMean()
        m.initialize([])
        assert is_na(m.value)
        m.on_insert(5.0)
        m.on_delete(5.0)
        assert is_na(m.value)

    def test_variance_long_random_walk(self):
        rng = random.Random(3)
        v = IncrementalVariance()
        work = [rng.gauss(0, 1) for _ in range(500)]
        v.initialize(work)
        for _ in range(1000):
            i = rng.randrange(len(work))
            new = rng.gauss(0, 1)
            v.on_update(work[i], new)
            work[i] = new
        assert v.value == pytest.approx(statistics.variance(work), rel=1e-9)

    def test_std(self):
        s = IncrementalStd()
        s.initialize(DATA)
        assert s.value == pytest.approx(statistics.stdev(DATA))

    def test_variance_below_two_na(self):
        v = IncrementalVariance()
        v.initialize([1.0, 2.0])
        v.on_delete(1.0)
        assert is_na(v.value)


class TestMinMax:
    def test_initial(self):
        mm = IncrementalMinMax()
        mm.initialize(DATA)
        assert mm.value == (1.0, 9.0)

    def test_insert_new_extremes(self):
        mm = IncrementalMinMax()
        mm.initialize(DATA)
        mm.on_insert(0.5)
        mm.on_insert(99.0)
        assert mm.min == 0.5 and mm.max == 99.0

    def test_delete_extreme_finds_next(self):
        mm = IncrementalMinMax()
        mm.initialize(DATA)
        mm.on_delete(9.0)
        assert mm.max == 7.0
        mm.on_delete(1.0)
        assert mm.min == 3.0

    def test_duplicate_extremes(self):
        mm = IncrementalMinMax()
        mm.initialize([1.0, 1.0, 5.0])
        mm.on_delete(1.0)
        assert mm.min == 1.0  # one copy remains

    def test_delete_absent_rejected(self):
        mm = IncrementalMinMax()
        mm.initialize(DATA)
        with pytest.raises(StatisticsError):
            mm.on_delete(123.0)

    def test_empty(self):
        mm = IncrementalMinMax()
        mm.initialize([])
        assert is_na(mm.min) and is_na(mm.max)
        mm.on_insert(2.0)
        mm.on_delete(2.0)
        assert is_na(mm.min)

    def test_min_max_subclasses(self):
        lo = IncrementalMin()
        lo.initialize(DATA)
        assert lo.value == 1.0
        hi = IncrementalMax()
        hi.initialize(DATA)
        assert hi.value == 9.0

    def test_na_ignored(self):
        mm = IncrementalMinMax()
        mm.initialize([NA, 2.0, NA])
        assert mm.value == (2.0, 2.0)


class TestWeightedMean:
    def test_basic(self):
        wm = IncrementalWeightedMean()
        wm.initialize([(10.0, 1.0), (20.0, 3.0)])
        assert wm.value == pytest.approx(17.5)

    def test_update_pair(self):
        wm = IncrementalWeightedMean()
        wm.initialize([(10.0, 1.0), (20.0, 1.0)])
        wm.on_update((10.0, 1.0), (40.0, 1.0))
        assert wm.value == pytest.approx(30.0)

    def test_na_pairs_skipped(self):
        wm = IncrementalWeightedMean()
        wm.initialize([(10.0, 1.0), (NA, 5.0), (20.0, NA)])
        assert wm.value == pytest.approx(10.0)

    def test_empty_na(self):
        wm = IncrementalWeightedMean()
        wm.initialize([])
        assert is_na(wm.value)


class TestVarianceDeleteGuards:
    """Deletes of values the state never saw must fail loudly (SS4.2).

    Before the fix, deleting down to one remaining value silently zeroed
    M2 even when the deleted value was never inserted — corrupting the
    running variance instead of surfacing the phantom delete.
    """

    def test_delete_from_empty_state_raises(self):
        var = IncrementalVariance()
        with pytest.raises(StatisticsError):
            var.on_delete(1.0)

    def test_delete_absent_last_value_raises(self):
        var = IncrementalVariance()
        var.initialize([3.0])
        with pytest.raises(StatisticsError):
            var.on_delete(100.0)  # never inserted; state must not reset

    def test_delete_present_value_at_n2_succeeds(self):
        var = IncrementalVariance()
        var.initialize([3.0, 5.0])
        var.on_delete(5.0)
        assert var.mean == pytest.approx(3.0)
        assert is_na(var.value)  # n=1: variance undefined

    def test_round_trip_still_exact(self):
        var = IncrementalVariance()
        var.initialize(DATA)
        var.on_insert(11.0)
        var.on_delete(11.0)
        assert var.value == pytest.approx(statistics.variance(DATA))


class TestPartialMerge:
    """Scatter-gather contract: merged shard partials == one-shot state."""

    def split_halves(self, values):
        return values[0::2], values[1::2]

    def merged(self, cls, values):
        left, right = self.split_halves(values)
        a, b = cls(), cls()
        a.initialize(left)
        b.initialize(right)
        a.merge_partial(b.partial_state())
        return a

    def test_sum_mean_var_std_merge(self):
        data = DATA + [NA, 2.5, NA, -4.0]
        for cls in (IncrementalSum, IncrementalMean, IncrementalVariance, IncrementalStd):
            whole = cls()
            whole.initialize(data)
            assert self.merged(cls, data).value == pytest.approx(whole.value)

    def test_count_merge_tracks_na(self):
        data = [1.0, NA, 3.0, NA, NA]
        merged = self.merged(IncrementalCount, data)
        assert merged.value == 2
        assert merged.na_count == 3

    def test_minmax_merge(self):
        data = [5.0, -2.0, 9.0, 0.0, 7.5]
        merged = self.merged(IncrementalMinMax, data)
        assert merged.min == -2.0
        assert merged.max == 9.0
        # Merged multiset still supports subsequent deletes.
        merged.on_delete(9.0)
        assert merged.max == 7.5

    def test_weighted_mean_merge(self):
        values = [1.0, 2.0, 3.0, 4.0]
        weights = [1.0, 1.0, 2.0, 4.0]
        a, b = IncrementalWeightedMean(), IncrementalWeightedMean()
        a.initialize(zip(values[:2], weights[:2]))
        b.initialize(zip(values[2:], weights[2:]))
        a.merge_partial(b.partial_state())
        whole = IncrementalWeightedMean()
        whole.initialize(zip(values, weights))
        assert a.value == pytest.approx(whole.value)

    def test_merge_empty_partial_is_identity(self):
        full = IncrementalMean()
        full.initialize(DATA)
        empty = IncrementalMean()
        empty.initialize([])
        before = full.value
        full.merge_partial(empty.partial_state())
        assert full.value == pytest.approx(before)
