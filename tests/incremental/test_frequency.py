"""Tests for incremental frequency / mode / unique count."""

import pytest

from repro.core.errors import StatisticsError
from repro.incremental.frequency import IncrementalFrequency
from repro.relational.types import NA, is_na


class TestFrequency:
    def test_mode_and_counts(self):
        f = IncrementalFrequency()
        f.initialize([1, 2, 2, 3, 3, 3, NA])
        assert f.mode == 3
        assert f.unique_count == 3
        assert f.na_count == 1
        assert f.frequency_of(2) == 2

    def test_mode_updates_on_insert(self):
        f = IncrementalFrequency()
        f.initialize([1, 2])
        f.on_insert(2)
        assert f.mode == 2

    def test_mode_recovers_after_delete(self):
        f = IncrementalFrequency()
        f.initialize([1, 1, 1, 2, 2])
        f.on_delete(1)
        f.on_delete(1)
        assert f.mode == 2

    def test_delete_absent_rejected(self):
        f = IncrementalFrequency()
        f.initialize([1])
        with pytest.raises(StatisticsError):
            f.on_delete(9)

    def test_na_insert_delete(self):
        f = IncrementalFrequency()
        f.initialize([])
        f.on_insert(NA)
        assert f.na_count == 1
        f.on_delete(NA)
        assert f.na_count == 0

    def test_empty_mode_na(self):
        f = IncrementalFrequency()
        f.initialize([])
        assert is_na(f.value)

    def test_top_k(self):
        f = IncrementalFrequency()
        f.initialize(["a"] * 5 + ["b"] * 3 + ["c"])
        assert f.top_k(2) == [("a", 5), ("b", 3)]

    def test_table_copy(self):
        f = IncrementalFrequency()
        f.initialize([1, 1, 2])
        table = f.table()
        table[1] = 999
        assert f.frequency_of(1) == 2

    def test_update_protocol(self):
        f = IncrementalFrequency()
        f.initialize([1, 2])
        f.on_update(1, 2)
        assert f.mode == 2 and f.unique_count == 1
