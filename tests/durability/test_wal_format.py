"""WAL frame-format unit tests: torn tails, bit rot, malformed records.

The contract under test: ``WriteAheadLog.scan`` returns the longest
trustworthy prefix and *never* raises on log damage — every anomaly is a
warning on the scan result.
"""

import json
import struct
import zlib

import pytest

from repro.core.errors import DurabilityError
from repro.durability.recovery import RecoveryReport, recover
from repro.durability.wal import (
    MAX_FRAME_BYTES,
    WriteAheadLog,
    frame_record,
    ensure_directory,
)

from tests.durability.helpers import durable_dbms


@pytest.fixture
def wal(tmp_path):
    return WriteAheadLog(tmp_path / "log.wal")


def test_append_scan_roundtrip(wal):
    records = [
        {"t": "begin", "txn": 1, "view": "v"},
        {"t": "op", "txn": 1, "view": "v", "op": {"version": 1}},
        {"t": "commit", "txn": 1},
    ]
    for record in records:
        wal.append(record)
    wal.close()
    scan = wal.scan()
    assert scan.clean
    assert scan.records == records
    assert scan.bytes_scanned == wal.size_bytes


def test_scan_of_missing_file_is_empty(wal):
    scan = wal.scan()
    assert scan.clean
    assert scan.records == []
    assert wal.size_bytes == 0


def test_truncated_final_frame_is_a_warning_not_an_error(wal, tmp_path):
    wal.append({"t": "begin", "txn": 1, "view": "v"})
    wal.append({"t": "commit", "txn": 1}, sync=True)
    wal.close()
    path = tmp_path / "log.wal"
    data = path.read_bytes()
    path.write_bytes(data[:-4])  # tear the commit frame's payload
    scan = wal.scan()
    assert scan.torn_tail
    assert len(scan.records) == 1
    assert any("torn frame payload" in w for w in scan.warnings)


def test_truncation_inside_header_is_detected(wal, tmp_path):
    wal.append({"t": "begin", "txn": 1, "view": "v"}, sync=True)
    wal.close()
    path = tmp_path / "log.wal"
    data = path.read_bytes()
    path.write_bytes(data + b"\x01\x02\x03")  # 3 trailing bytes < header size
    scan = wal.scan()
    assert scan.torn_tail
    assert len(scan.records) == 1
    assert any("torn frame header" in w for w in scan.warnings)


def test_bit_flipped_payload_fails_the_checksum(wal, tmp_path):
    wal.append({"t": "begin", "txn": 1, "view": "v"})
    wal.append({"t": "commit", "txn": 1}, sync=True)
    wal.close()
    path = tmp_path / "log.wal"
    data = bytearray(path.read_bytes())
    data[-2] ^= 0x40  # flip one bit inside the last frame's payload
    path.write_bytes(bytes(data))
    scan = wal.scan()
    assert scan.torn_tail
    assert len(scan.records) == 1
    assert any("checksum mismatch" in w for w in scan.warnings)


def test_implausible_frame_length_stops_the_scan(wal, tmp_path):
    wal.append({"t": "begin", "txn": 1, "view": "v"}, sync=True)
    wal.close()
    path = tmp_path / "log.wal"
    bogus = struct.pack("<II", MAX_FRAME_BYTES + 1, 0)
    path.write_bytes(path.read_bytes() + bogus + b"x" * 16)
    scan = wal.scan()
    assert scan.torn_tail
    assert len(scan.records) == 1
    assert any("implausible frame length" in w for w in scan.warnings)


def test_valid_frame_with_non_dict_payload_is_malformed(wal, tmp_path):
    path = tmp_path / "log.wal"
    payload = json.dumps([1, 2, 3]).encode()
    path.write_bytes(struct.pack("<II", len(payload), zlib.crc32(payload)) + payload)
    scan = wal.scan()
    assert scan.torn_tail
    assert scan.records == []
    assert any("missing type tag" in w for w in scan.warnings)


def test_valid_frame_with_undecodable_json_is_a_warning(wal, tmp_path):
    path = tmp_path / "log.wal"
    payload = b"\xff\xfe not json"
    path.write_bytes(struct.pack("<II", len(payload), zlib.crc32(payload)) + payload)
    scan = wal.scan()
    assert scan.torn_tail
    assert scan.records == []
    assert any("undecodable record" in w for w in scan.warnings)


def test_truncate_empties_the_log(wal):
    wal.append({"t": "begin", "txn": 1, "view": "v"}, sync=True)
    assert wal.size_bytes > 0
    wal.truncate()
    assert wal.size_bytes == 0
    assert wal.scan().records == []


def test_frame_record_matches_append_framing(wal, tmp_path):
    record = {"t": "commit", "txn": 9}
    wal.append(record, sync=True)
    wal.close()
    assert (tmp_path / "log.wal").read_bytes() == frame_record(record)


def test_ensure_directory_rejects_files(tmp_path):
    target = tmp_path / "occupied"
    target.write_text("not a directory")
    with pytest.raises((DurabilityError, FileExistsError, NotADirectoryError)):
        ensure_directory(target)


# -- damage through full recovery (warnings, never unhandled exceptions) ------


def _wal_path(dbms):
    return dbms.durability.wal_path


def test_recovery_survives_duplicate_commit_records(tmp_path):
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 99.0)])
    dbms.durability.wal.close()
    with open(_wal_path(dbms), "ab") as handle:  # test-only tampering
        handle.write(frame_record({"t": "commit", "txn": 2}))
    recovered, report = recover(tmp_path)
    assert isinstance(report, RecoveryReport)
    assert any("duplicate or orphan commit" in w for w in report.warnings)
    assert report.records_discarded >= 1
    assert recovered.view("v1").relation.row(0)[1] == 99.0


def test_recovery_survives_orphan_op_records(tmp_path):
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 99.0)])
    dbms.durability.wal.close()
    orphan = {"t": "op", "txn": 77, "view": "v1", "op": {"version": 9}}
    with open(_wal_path(dbms), "ab") as handle:  # test-only tampering
        handle.write(frame_record(orphan))
    recovered, report = recover(tmp_path)
    assert any("outside its transaction" in w for w in report.warnings)
    assert recovered.view("v1").relation.row(0)[1] == 99.0


def test_recovery_survives_unknown_record_types(tmp_path):
    dbms = durable_dbms(tmp_path)
    dbms.durability.wal.close()
    with open(_wal_path(dbms), "ab") as handle:  # test-only tampering
        handle.write(frame_record({"t": "vacuum", "txn": 50}))
    recovered, report = recover(tmp_path)
    assert any("unknown record type" in w for w in report.warnings)
    assert recovered.registry.names() == ["v1"]


def test_recovery_survives_a_torn_tail_mid_transaction(tmp_path):
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 99.0)])
    session.update_cells("x", [(1, 42.0)])
    dbms.durability.wal.close()
    path = _wal_path(dbms)
    path.write_bytes(path.read_bytes()[:-6])
    recovered, report = recover(tmp_path)
    assert report.torn_tail
    # First transaction survives; the torn one is discarded.
    assert recovered.view("v1").relation.row(0)[1] == 99.0
    assert recovered.view("v1").relation.row(1)[1] == 1.0
