"""Recovery unit tests: checkpoint + replay semantics, counters, anomalies."""

import math

import pytest

from repro.core.dbms import StatisticalDBMS
from repro.core.errors import DurabilityError
from repro.durability.checkpoint import Checkpointer
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import recover
from repro.obs.tracer import Tracer
from repro.views.materialize import SourceNode, ViewDefinition

from tests.durability.helpers import durable_dbms, people_relation


def test_update_and_undo_replay_without_a_checkpoint(tmp_path):
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    session.update_cells("x", [(1, 50.0)])
    session.undo(1)

    recovered, report = recover(tmp_path)
    assert not report.checkpoint_loaded
    assert report.operations_replayed == 2
    assert report.undos_replayed == 1
    assert recovered.view("v1").relation.row(0)[1] == 100.0
    assert recovered.view("v1").relation.row(1)[1] == 1.0
    assert recovered.view("v1").history.version == dbms.view("v1").history.version


def test_checkpoint_bounds_replay(tmp_path):
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    dbms.checkpoint()
    assert dbms.durability.wal.size_bytes == 0
    session.update_cells("x", [(1, 50.0)])

    recovered, report = recover(tmp_path)
    assert report.checkpoint_loaded
    assert report.operations_replayed == 1  # only the post-checkpoint update
    assert recovered.view("v1").relation.row(0)[1] == 100.0
    assert recovered.view("v1").relation.row(1)[1] == 50.0


def test_checkpointed_summary_entries_are_maintained_incrementally(tmp_path):
    tracer = Tracer()
    dbms = durable_dbms(tmp_path, tracer=tracer)
    session = dbms.session("v1")
    live_sum = session.compute("sum", "x")
    dbms.checkpoint()
    session.update_cells("x", [(0, 100.0)])

    recovered, report = recover(tmp_path)
    entry = recovered.view("v1").summary.peek("sum", "x")
    assert entry is not None
    assert math.isclose(entry.result, live_sum + 100.0)
    # Replay maintained the entry from the log: no stale flag, no rescan
    # needed on the next lookup.
    assert not entry.stale
    assert report.operations_replayed == 1


def test_recovered_history_versions_support_operations_since(tmp_path):
    """Sharing peers that consumed the log pre-crash see identical versions."""
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    session.undo(1)  # burns v1
    session.update_cells("x", [(1, 50.0)])  # gets v2
    live = [(op.version, op.attribute) for op in dbms.view("v1").history.operations()]

    recovered, _ = recover(tmp_path)
    replayed = [
        (op.version, op.attribute)
        for op in recovered.view("v1").history.operations()
    ]
    assert replayed == live == [(2, "x")]
    assert recovered.view("v1").history.operations_since(1)[0].version == 2


def test_view_creation_and_drop_replay(tmp_path):
    dbms = durable_dbms(tmp_path)
    dbms.create_view(
        ViewDefinition("v2", SourceNode("people")), allow_duplicate=True
    )
    dbms.drop_view("v2")
    recovered, _ = recover(tmp_path)
    assert recovered.registry.names() == ["v1"]
    assert "v2" not in recovered.management.view_names()


def test_adopted_view_recovers_via_inline_history(tmp_path):
    dbms = durable_dbms(tmp_path)
    owner = dbms.session("v1")
    owner.update_cells("x", [(0, 100.0)])
    dbms.publish("v1", publisher="alice")
    dbms.adopt_published("v1", "mine", "bob")
    mine = dbms.session("mine", analyst="bob")
    mine.update_cells("x", [(2, 7.0)])
    dbms.checkpoint()

    recovered, _ = recover(tmp_path)
    adopted = recovered.view("mine")
    assert adopted.owner == "bob"
    assert adopted.relation.row(0)[1] == 100.0  # published edit carried over
    assert adopted.relation.row(2)[1] == 7.0


def test_replay_is_idempotent_against_duplicate_operations(tmp_path):
    """An op at or below the history's version is a duplicate: skipped."""
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    # Re-log the same transaction records wholesale (replayed log segment).
    manager = dbms.durability
    operations = dbms.view("v1").history.operations()
    manager.log_operations("v1", operations)

    recovered, report = recover(tmp_path)
    assert report.operations_replayed == 1
    assert any("duplicate operation" in w for w in report.warnings)
    assert recovered.view("v1").relation.row(0)[1] == 100.0
    assert recovered.view("v1").history.version == 1


def test_operations_for_unknown_views_are_skipped(tmp_path):
    dbms = durable_dbms(tmp_path)
    manager = dbms.durability
    manager._log_transaction(
        "ghost",
        [{"t": "op", "view": "ghost", "op": {"version": 1, "kind": "update",
                                             "attribute": "x", "changes": []}}],
    )
    recovered, report = recover(tmp_path)
    assert any("unknown view" in w for w in report.warnings)
    assert recovered.registry.names() == ["v1"]


def test_torn_tail_marks_mentioned_attributes_stale(tmp_path):
    tracer = Tracer()
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.compute("sum", "x")
    session.update_cells("x", [(0, 100.0)])
    dbms.checkpoint()  # snapshot carries the cached sum
    session.update_cells("x", [(1, 50.0)])
    # Tear the log inside the last transaction: keep begin+op, lose commit.
    dbms.durability.wal.close()
    path = dbms.durability.wal_path
    path.write_bytes(path.read_bytes()[:-12])

    recovered, report = recover(tmp_path, tracer=tracer)
    assert report.torn_tail
    assert report.entries_marked_stale >= 1
    entry = recovered.view("v1").summary.peek("sum", "x")
    assert entry is not None and entry.stale
    # The discarded write itself never happened.
    assert recovered.view("v1").relation.row(1)[1] == 1.0
    assert tracer.counters.get("recovery.stale_marked", 0) >= 1
    assert tracer.counters.get("recovery.discarded", 0) >= 1


def test_undo_replay_is_idempotent_after_untruncated_checkpoint(tmp_path):
    """A checkpoint that lands before the WAL truncation must not re-undo.

    Crash window: ``Checkpointer.write`` finished (os.replace durable) but
    ``wal.truncate`` never ran.  The snapshot already reflects the undo;
    replaying the log's undo record against it used to revert the *older*
    committed operation (111.0 back to 0.0).
    """
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 111.0)])
    session.update_cells("x", [(0, 222.0)])
    session.undo(1)
    # The checkpoint without the truncation == dying between the two.
    dbms.durability.checkpointer.write(dbms)

    recovered, report = recover(tmp_path)
    assert recovered.view("v1").relation.row(0)[1] == 111.0
    assert recovered.view("v1").history.version == dbms.view("v1").history.version
    assert report.undos_replayed == 0
    assert any("already reflected" in w for w in report.warnings)
    # The recovered system keeps working: a fresh undo reverts 111.0.
    recovered.session("v1").undo(1)
    assert recovered.view("v1").relation.row(0)[1] == 0.0


def test_recovery_truncates_corrupt_tail_so_new_commits_survive(tmp_path):
    """Work committed after a torn-tail recovery must survive the *next* one.

    Recovery used to leave the corrupt bytes in place; the new manager
    appended perfectly good transactions after them, and the next scan
    stopped at the old damage — silently discarding the new commits.
    """
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    dbms.durability.wal.close()
    path = dbms.durability.wal_path
    path.write_bytes(path.read_bytes() + b"\x13\x37corrupt-tail")

    recovered, report = recover(tmp_path)
    assert report.torn_tail
    assert report.tail_bytes_truncated == len(b"\x13\x37corrupt-tail")
    # New work on the recovered system lands after the trusted prefix...
    recovered.session("v1").update_cells("x", [(1, 50.0)])

    recovered2, report2 = recover(tmp_path)
    assert not report2.torn_tail
    assert recovered2.view("v1").relation.row(0)[1] == 100.0
    assert recovered2.view("v1").relation.row(1)[1] == 50.0


def test_recovery_tracer_counters(tmp_path):
    tracer = Tracer()
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    session.update_cells("x", [(1, 50.0)])
    recovered, report = recover(tmp_path, tracer=tracer)
    # One view-creation txn + two update txns.
    assert report.transactions_committed == 3
    assert tracer.counters["recovery.replayed"] == 3
    assert "recovery.discarded" not in tracer.counters


def _counter_total(tracer, name):
    """A counter's grand total: tracer-level plus every recorded span."""
    return tracer.counters.get(name, 0) + sum(
        root.total(name) for root in tracer.roots
    )


def test_wal_and_checkpoint_tracer_counters(tmp_path):
    tracer = Tracer()
    dbms = durable_dbms(tmp_path, tracer=tracer)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    # view txn (3 frames) + update txn (3 frames)
    assert _counter_total(tracer, "wal.append") == 6
    assert _counter_total(tracer, "wal.fsync") == 2
    dbms.checkpoint()
    assert _counter_total(tracer, "checkpoint.write") == 1
    assert _counter_total(tracer, "checkpoint.bytes") > 0


def test_recovered_dbms_continues_logging_past_old_transactions(tmp_path):
    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    recovered, _ = recover(tmp_path)
    # New work on the recovered system lands in fresh transactions and is
    # itself recoverable.
    session2 = recovered.session("v1")
    session2.update_cells("x", [(1, 50.0)])
    recovered2, report2 = recover(tmp_path)
    assert recovered2.view("v1").relation.row(0)[1] == 100.0
    assert recovered2.view("v1").relation.row(1)[1] == 50.0
    assert not any("duplicate" in w for w in report2.warnings)


def test_checkpoint_requires_configured_durability(tmp_path):
    dbms = StatisticalDBMS()
    with pytest.raises(DurabilityError):
        dbms.checkpoint()
    manager = DurabilityManager(tmp_path)
    with pytest.raises(DurabilityError):
        manager.checkpoint()  # never bound to a DBMS


def test_corrupt_checkpoint_raises_durability_error(tmp_path):
    dbms = durable_dbms(tmp_path)
    dbms.checkpoint()
    dbms.durability.checkpoint_path.write_text("{ not json")
    with pytest.raises(DurabilityError):
        recover(tmp_path)


def test_unsupported_checkpoint_format_raises(tmp_path):
    Checkpointer(tmp_path).path.write_text('{"format": 99}')
    with pytest.raises(DurabilityError):
        recover(tmp_path)


def test_checkpoint_write_is_atomic_under_fault(tmp_path):
    """A crash mid-snapshot leaves the previous checkpoint untouched."""
    from repro.core.errors import InjectedFault
    from repro.durability.faults import FaultInjector, FaultPlan

    dbms = durable_dbms(tmp_path)
    session = dbms.session("v1")
    session.update_cells("x", [(0, 100.0)])
    dbms.checkpoint()
    before = dbms.durability.checkpoint_path.read_bytes()

    session.update_cells("x", [(1, 50.0)])
    faulty = Checkpointer(tmp_path, faults=FaultInjector(FaultPlan(fail_on_write=1)))
    with pytest.raises(InjectedFault):
        faulty.write(dbms)
    assert dbms.durability.checkpoint_path.read_bytes() == before
    recovered, _ = recover(tmp_path)
    assert recovered.view("v1").relation.row(1)[1] == 50.0  # from the WAL
