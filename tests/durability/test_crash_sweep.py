"""Crash-point sweeps: recovery yields a committed prefix at *every* fault.

The harness runs one workload many times, killing it with a deterministic
:class:`~repro.durability.faults.FaultInjector` at the k-th write (or
fsync) for **every** k the schedule contains, then recovers and checks
three invariants:

1. **Committed prefix** — the recovered view (rows + history version)
   equals the state after some prefix of the workload's actions; every
   action that completed before the fault is included (its commit frame
   was fsynced), and at most the single in-flight action may additionally
   appear.
2. **Summary consistency** — every fresh (non-stale) cached entry equals a
   recomputation over the recovered view's data.
3. **Version monotonicity** — the recovered history's version matches the
   reference prefix exactly, so ``operations_since`` peers see no
   regression.

Crash model: a write that returned is durable (the harness flushes the
abandoned handle, simulating buffered bytes that reached the OS); the
fsync on a commit frame is the transaction's durability point; everything
after the last committed transaction is an uncommitted tail for recovery
to discard.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbms import StatisticalDBMS
from repro.core.errors import InjectedFault
from repro.durability.faults import FaultInjector, FaultPlan
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import recover
from repro.views.materialize import SourceNode, ViewDefinition

from tests.durability.helpers import people_relation

ROWS = 12
STATS = ("sum", "mean", "count")


# -- workload ----------------------------------------------------------------


def build_actions(rng: random.Random, count: int) -> list[tuple]:
    """A reproducible schedule of point updates and undos."""
    actions: list[tuple] = []
    for _ in range(count):
        if rng.random() < 0.25:
            actions.append(("undo", rng.randint(1, 3)))
        else:
            actions.append(
                ("set", rng.randrange(ROWS), round(rng.uniform(-100, 100), 3))
            )
    return actions


def apply_action(session, action) -> None:
    if action[0] == "set":
        _, row, value = action
        session.update_cells("x", [(row, value)])
    else:
        count = min(action[1], len(session.view.history))
        if count:
            session.undo(count)


def run_workload(dbms, actions, checkpoint_at, progress) -> None:
    """Drive the workload, bumping ``progress['completed']`` per action."""
    session = dbms.session("v1")
    for fn in STATS:
        session.compute(fn, "x")
    for index, action in enumerate(actions):
        apply_action(session, action)
        progress["completed"] = index + 1
        if index == checkpoint_at and dbms.durability is not None:
            dbms.checkpoint()


def make_durable_dbms(directory, injector) -> StatisticalDBMS:
    manager = DurabilityManager(directory, faults=injector)
    dbms = StatisticalDBMS(durability=manager)
    dbms.load_raw(people_relation(ROWS))
    dbms.create_view(ViewDefinition("v1", SourceNode("people")))
    return dbms


# -- reference states --------------------------------------------------------


def view_state(dbms) -> tuple:
    view = dbms.view("v1")
    return (tuple(tuple(row) for row in view.relation), view.history.version)


def reference_states(actions) -> list[tuple]:
    """``states[m]`` is the (rows, version) state after ``m`` actions."""
    dbms = StatisticalDBMS()
    dbms.load_raw(people_relation(ROWS))
    dbms.create_view(ViewDefinition("v1", SourceNode("people")))
    session = dbms.session("v1")
    states = [view_state(dbms)]
    for action in actions:
        apply_action(session, action)
        states.append(view_state(dbms))
    return states


# -- the sweep ---------------------------------------------------------------


def schedule_size(tmp_path, actions, checkpoint_at) -> tuple[int, int, int, int]:
    """Dry-run the workload; returns total (writes, fsyncs, opens, replaces)."""
    injector = FaultInjector()
    dbms = make_durable_dbms(tmp_path / "dry", injector)
    progress = {"completed": 0}
    run_workload(dbms, actions, checkpoint_at, progress)
    assert progress["completed"] == len(actions)
    dbms.durability.close()
    return injector.writes, injector.fsyncs, injector.opens, injector.replaces


def crash_and_check(directory, actions, checkpoint_at, plan, states) -> None:
    """One crash run: execute under ``plan``, recover, check invariants."""
    injector = FaultInjector(plan)
    manager = DurabilityManager(directory, faults=injector)
    progress = {"completed": 0}
    crashed = False
    try:
        dbms = StatisticalDBMS(durability=manager)
        dbms.load_raw(people_relation(ROWS))
        dbms.create_view(ViewDefinition("v1", SourceNode("people")))
        run_workload(dbms, actions, checkpoint_at, progress)
    except InjectedFault:
        crashed = True
    # Crash model: buffered bytes reached the OS — flush the abandoned
    # handle, then throw the in-memory system away.
    manager.wal.close()

    recovered, report = recover(directory)
    completed = progress["completed"]

    if "v1" not in recovered.registry.names():
        # The fault predates the view-creation commit: nothing to recover.
        assert crashed and completed == 0
        assert report.transactions_committed == 0
        return

    state = view_state(recovered)
    assert state in states, (
        f"recovered state matches no action prefix (plan={plan}, "
        f"completed={completed})"
    )
    matches = [m for m, s in enumerate(states) if s == state]
    assert any(completed <= m <= completed + 1 for m in matches), (
        f"recovered prefix {matches} outside [{completed}, {completed + 1}] "
        f"(plan={plan})"
    )

    # Version monotonicity: nothing a sharing peer consumed can regress.
    assert state[1] >= states[completed][1]

    # Summary consistency: fresh cached entries equal recomputation.
    view = recovered.view("v1")
    functions = recovered.management.functions
    for entry in view.summary.entries():
        if entry.stale or entry.key.function not in STATS:
            continue
        expected = functions.get(entry.key.function).compute(view.column("x"))
        assert math.isclose(entry.result, expected, rel_tol=1e-9, abs_tol=1e-9), (
            f"{entry.key.function} cached {entry.result} != recomputed "
            f"{expected} (plan={plan})"
        )


def sweep(tmp_path, actions, checkpoint_at, modes=("raise", "torn")) -> None:
    states = reference_states(actions)
    writes, fsyncs, opens, replaces = schedule_size(tmp_path, actions, checkpoint_at)
    for mode in modes:
        for k in range(1, writes + 1):
            crash_and_check(
                tmp_path / f"w{k}-{mode}",
                actions,
                checkpoint_at,
                FaultPlan(fail_on_write=k, mode=mode),
                states,
            )
    for k in range(1, fsyncs + 1):
        crash_and_check(
            tmp_path / f"f{k}",
            actions,
            checkpoint_at,
            FaultPlan(fail_on_fsync=k),
            states,
        )
    # Opens and replaces cover the protocol's structural seams: dying at
    # the checkpoint's os.replace, or at the truncating open that follows
    # it (checkpoint durable, WAL still holding already-snapshotted
    # transactions), must leave replay idempotent.
    for k in range(1, opens + 1):
        crash_and_check(
            tmp_path / f"o{k}",
            actions,
            checkpoint_at,
            FaultPlan(fail_on_open=k),
            states,
        )
    for k in range(1, replaces + 1):
        crash_and_check(
            tmp_path / f"r{k}",
            actions,
            checkpoint_at,
            FaultPlan(fail_on_replace=k),
            states,
        )


# -- entry points ------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_crash_sweep_covers_every_write_point(tmp_path, seed):
    """Every write and fsync ordinal of a >=50-write schedule, three seeds."""
    actions = build_actions(random.Random(seed), 17)
    checkpoint_at = len(actions) // 2
    writes, _, _, _ = schedule_size(tmp_path / "size", actions, checkpoint_at)
    assert writes >= 50, "schedule must contain at least 50 writes"
    sweep(tmp_path, actions, checkpoint_at)


@pytest.mark.parametrize("checkpoint_at", [None, 0])
def test_crash_sweep_checkpoint_placement(tmp_path, checkpoint_at):
    """Sweeps with no checkpoint and with an immediate one both hold."""
    actions = build_actions(random.Random(7), 6)
    sweep(tmp_path / str(checkpoint_at), actions, checkpoint_at)


actions_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("set"),
            st.integers(min_value=0, max_value=ROWS - 1),
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        ),
        st.tuples(st.just("undo"), st.integers(min_value=1, max_value=3)),
    ),
    min_size=3,
    max_size=8,
)


@settings(max_examples=5, deadline=None)
@given(actions=actions_strategy, data=st.data())
def test_crash_sweep_hypothesis_workloads(tmp_path_factory, actions, data):
    """Hypothesis-generated schedules survive a fault at any chosen write."""
    tmp_path = tmp_path_factory.mktemp("sweep")
    checkpoint_at = data.draw(
        st.one_of(
            st.none(), st.integers(min_value=0, max_value=len(actions) - 1)
        ),
        label="checkpoint_at",
    )
    states = reference_states(actions)
    writes, fsyncs, opens, _ = schedule_size(tmp_path, actions, checkpoint_at)
    k = data.draw(st.integers(min_value=1, max_value=writes), label="crash write")
    mode = data.draw(st.sampled_from(["raise", "torn"]), label="mode")
    crash_and_check(
        tmp_path / f"hyp-w{k}-{mode}",
        actions,
        checkpoint_at,
        FaultPlan(fail_on_write=k, mode=mode),
        states,
    )
    j = data.draw(st.integers(min_value=1, max_value=fsyncs), label="crash fsync")
    crash_and_check(
        tmp_path / f"hyp-f{j}",
        actions,
        checkpoint_at,
        FaultPlan(fail_on_fsync=j),
        states,
    )
    o = data.draw(st.integers(min_value=1, max_value=opens), label="crash open")
    crash_and_check(
        tmp_path / f"hyp-o{o}",
        actions,
        checkpoint_at,
        FaultPlan(fail_on_open=o),
        states,
    )
