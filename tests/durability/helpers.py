"""Shared builders for the durability test suite."""

from __future__ import annotations

from repro.core.dbms import StatisticalDBMS
from repro.durability.faults import FaultInjector
from repro.durability.manager import DurabilityManager
from repro.obs.tracer import AbstractTracer
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType
from repro.views.materialize import SourceNode, ViewDefinition


def people_relation(rows: int = 20) -> Relation:
    """A small numeric dataset: id (int) + x (float)."""
    schema = Schema([Attribute("id", DataType.INT), Attribute("x", DataType.FLOAT)])
    return Relation("people", schema, [[i, float(i)] for i in range(rows)])


def durable_dbms(
    directory,
    rows: int = 20,
    faults: FaultInjector | None = None,
    tracer: AbstractTracer | None = None,
) -> StatisticalDBMS:
    """A DBMS with durability under ``directory`` and one view ``v1``."""
    manager = DurabilityManager(directory, faults=faults, tracer=tracer)
    dbms = StatisticalDBMS(tracer=tracer, durability=manager)
    dbms.load_raw(people_relation(rows))
    dbms.create_view(ViewDefinition("v1", SourceNode("people")))
    return dbms


def plain_dbms(rows: int = 20) -> StatisticalDBMS:
    """The same system without durability — the reference for sweeps."""
    dbms = StatisticalDBMS()
    dbms.load_raw(people_relation(rows))
    dbms.create_view(ViewDefinition("v1", SourceNode("people")))
    return dbms
