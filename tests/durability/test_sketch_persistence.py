"""Sketch & model summary entries through checkpoint, crash, and recovery.

ISSUE 9 satellite: a checkpoint persists sketch/model maintainer state
(:data:`repro.durability.checkpoint.SKETCH_KINDS`), recovery rebuilds the
entries *exactly* — including replaying post-checkpoint WAL deltas
through the restored maintainers — or marks them stale.  Never silently
wrong.
"""

import math
import statistics

import pytest

from repro.core.dbms import StatisticalDBMS
from repro.core.errors import InjectedFault
from repro.durability.checkpoint import SKETCH_KINDS, restore_summary_entries
from repro.durability.faults import FaultInjector, FaultPlan
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import recover
from repro.incremental.sketches import HyperLogLog, ReservoirSample, TDigest
from repro.relational.types import is_na
from repro.stats.models import IncrementalLinearRegression
from repro.stats.regression import fit_ols
from repro.summary.summarydb import SummaryDatabase
from repro.views.materialize import SourceNode, ViewDefinition

from tests.durability.helpers import people_relation

ROWS = 10
SKETCH_STATS = ("approx_median", "approx_distinct", "reservoir")


def make_dbms(directory, injector=None):
    manager = DurabilityManager(directory, faults=injector)
    dbms = StatisticalDBMS(durability=manager)
    dbms.load_raw(people_relation(ROWS))
    dbms.create_view(ViewDefinition("v1", SourceNode("people")))
    return dbms


def warm_session(dbms):
    session = dbms.session("v1")
    for fn in SKETCH_STATS:
        session.compute(fn, "x")
    session.fit_model("x", ["id"])
    return session


class TestRoundTrip:
    def test_sketch_entries_round_trip(self, tmp_path):
        dbms = make_dbms(tmp_path)
        warm_session(dbms)
        dbms.checkpoint()
        dbms.durability.close()
        recovered, _ = recover(tmp_path)
        summary = recovered.view("v1").summary
        median_entry = summary.peek("approx_median", "x")
        assert not median_entry.stale
        assert median_entry.kind == "sketch"
        assert median_entry.epsilon is not None
        assert isinstance(median_entry.maintainer, TDigest)
        assert median_entry.maintainer.value == pytest.approx(
            statistics.median(range(ROWS))
        )
        distinct_entry = summary.peek("approx_distinct", "x")
        assert isinstance(distinct_entry.maintainer, HyperLogLog)
        assert distinct_entry.maintainer.value == ROWS
        reservoir_entry = summary.peek("reservoir", "x")
        assert isinstance(reservoir_entry.maintainer, ReservoirSample)
        assert sorted(reservoir_entry.maintainer.value) == sorted(
            float(i) for i in range(ROWS)
        )

    def test_model_entry_round_trips_and_stays_warm(self, tmp_path):
        dbms = make_dbms(tmp_path)
        before = warm_session(dbms).fit_model("x", ["id"])
        dbms.checkpoint()
        dbms.durability.close()
        recovered, _ = recover(tmp_path)
        entry = recovered.view("v1").summary.peek("ols_model", ("x", "id"))
        assert not entry.stale
        assert entry.kind == "model"
        assert isinstance(entry.maintainer, IncrementalLinearRegression)
        session = recovered.session("v1")
        restored = session.fit_model("x", ["id"])
        assert list(restored.coefficients) == pytest.approx(
            list(before.coefficients), rel=1e-12
        )
        # The restored maintainer must keep absorbing row-wise updates.
        session.update_cells("x", [(3, 77.5)])
        assert not entry.stale
        warm = session.fit_model("x", ["id"])
        reference = fit_ols(session.view.relation, "x", ["id"])
        assert list(warm.coefficients) == pytest.approx(
            list(reference.coefficients), rel=1e-8
        )

    def test_post_checkpoint_wal_replays_through_restored_sketches(self, tmp_path):
        dbms = make_dbms(tmp_path)
        session = warm_session(dbms)
        dbms.checkpoint()
        session.update_cells("x", [(0, 42.0), (5, -3.25)])
        dbms.durability.close()
        recovered, _ = recover(tmp_path)
        view = recovered.view("v1")
        entry = view.summary.peek("approx_median", "x")
        if not entry.stale:
            exact = statistics.median(view.column("x"))
            assert entry.result == pytest.approx(exact)
        distinct = view.summary.peek("approx_distinct", "x")
        if not distinct.stale:
            assert distinct.result == len(set(view.column("x")))


class TestNeverSilentlyWrong:
    def _record(self, **overrides):
        digest = TDigest()
        digest.absorb([1.0, 2.0, 3.0])
        from repro.summary.entries import encode_result

        record = {
            "function": "approx_median",
            "attributes": ["x"],
            "result": encode_result(2.0).hex(),
            "stale": False,
            "version": 1,
            "pending": 0,
            "compute_cost_rows": 3,
            "kind": "sketch",
            "maintainer": {"kind": "tdigest", "state": digest.to_state()},
        }
        record.update(overrides)
        return record

    def test_known_kind_restores_live(self):
        summary = SummaryDatabase(view_name="v")
        restore_summary_entries(summary, [self._record()])
        entry = summary.peek("approx_median", "x")
        assert not entry.stale
        assert isinstance(entry.maintainer, TDigest)
        assert entry.maintainer.value == pytest.approx(2.0)

    def test_unknown_kind_restores_stale_and_detached(self):
        summary = SummaryDatabase(view_name="v")
        record = self._record(maintainer={"kind": "bogus", "state": {}})
        restore_summary_entries(summary, [record])
        entry = summary.peek("approx_median", "x")
        assert entry.stale
        assert entry.maintainer is None

    def test_corrupt_state_restores_stale_and_detached(self):
        summary = SummaryDatabase(view_name="v")
        record = self._record(
            maintainer={"kind": "tdigest", "state": {"garbage": True}}
        )
        restore_summary_entries(summary, [record])
        entry = summary.peek("approx_median", "x")
        assert entry.stale
        assert entry.maintainer is None

    def test_maintainer_lost_flag_restores_stale(self):
        summary = SummaryDatabase(view_name="v")
        record = self._record(maintainer_lost=True)
        del record["maintainer"]
        restore_summary_entries(summary, [record])
        assert summary.peek("approx_median", "x").stale

    def test_registry_covers_all_families(self):
        assert set(SKETCH_KINDS) == {
            "tdigest",
            "hll",
            "reservoir",
            "countmin",
            "heavy_hitters",
            "linreg",
        }


# -- crash sweep -------------------------------------------------------------


ACTIONS = [(0, 42.0), (5, -3.25), (9, 9.0), (2, 0.5)]
CHECKPOINT_AT = 1  # checkpoint after the second action


def run_workload(dbms):
    session = warm_session(dbms)
    for index, (row, value) in enumerate(ACTIONS):
        session.update_cells("x", [(row, value)])
        if index == CHECKPOINT_AT:
            dbms.checkpoint()


def check_recovered(directory):
    """Fresh sketch/model entries must match recomputation; stale is fine."""
    recovered, _ = recover(directory)
    if "v1" not in recovered.registry.names():
        return
    view = recovered.view("v1")
    column = view.column("x")
    values = [v for v in column if not is_na(v)]
    summary = view.summary
    entry = summary.peek("approx_median", "x")
    if entry is not None and not entry.stale:
        assert entry.result == pytest.approx(statistics.median(values))
    entry = summary.peek("approx_distinct", "x")
    if entry is not None and not entry.stale:
        assert entry.result == len(set(values))
    entry = summary.peek("reservoir", "x")
    if entry is not None and not entry.stale:
        assert set(entry.result) <= set(values)
    entry = summary.peek("ols_model", ("x", "id"))
    if entry is not None and not entry.stale:
        reference = fit_ols(view.relation, "x", ["id"])
        stored = entry.result
        assert stored[3:] == pytest.approx(list(reference.coefficients), rel=1e-8)


def test_crash_sweep_never_silently_wrong(tmp_path):
    # Dry run to size the write schedule.
    injector = FaultInjector()
    dbms = make_dbms(tmp_path / "dry", injector)
    run_workload(dbms)
    dbms.durability.close()
    writes = injector.writes
    assert writes > 0

    for k in range(1, writes + 1):
        directory = tmp_path / f"w{k}"
        plan = FaultPlan(fail_on_write=k)
        crash_injector = FaultInjector(plan)
        manager = DurabilityManager(directory, faults=crash_injector)
        try:
            crashed_dbms = StatisticalDBMS(durability=manager)
            crashed_dbms.load_raw(people_relation(ROWS))
            crashed_dbms.create_view(ViewDefinition("v1", SourceNode("people")))
            run_workload(crashed_dbms)
        except InjectedFault:
            pass
        manager.wal.close()
        check_recovered(directory)
