"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.core.errors import DurabilityError, InjectedFault
from repro.durability.faults import NO_FAULTS, FaultInjector, FaultPlan
from repro.durability.wal import WriteAheadLog
from repro.storage.disk import SimulatedDisk


def test_plan_rejects_unknown_mode():
    with pytest.raises(DurabilityError):
        FaultPlan(mode="explode")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"fail_on_write": 0},
        {"fail_on_fsync": -1},
        {"fail_on_open": 0},
        {"fail_on_replace": -2},
        {"fail_on_block_write": 0},
    ],
)
def test_plan_rejects_non_positive_ordinals(kwargs):
    with pytest.raises(DurabilityError):
        FaultPlan(**kwargs)


def test_no_faults_plan_never_fires(tmp_path):
    injector = FaultInjector(NO_FAULTS)
    with injector.open(tmp_path / "f.bin", "wb") as handle:
        for _ in range(100):
            handle.write(b"data")
        handle.sync()
    assert injector.writes == 100
    assert injector.fsyncs == 1


def test_raise_mode_dies_before_the_doomed_write(tmp_path):
    injector = FaultInjector(FaultPlan(fail_on_write=3))
    path = tmp_path / "f.bin"
    with injector.open(path, "wb") as handle:
        handle.write(b"aa")
        handle.write(b"bb")
        with pytest.raises(InjectedFault):
            handle.write(b"cc")
        handle.flush()
    assert path.read_bytes() == b"aabb"
    assert injector.writes == 3


def test_torn_mode_writes_half_the_buffer_first(tmp_path):
    injector = FaultInjector(FaultPlan(fail_on_write=1, mode="torn"))
    path = tmp_path / "f.bin"
    handle = injector.open(path, "wb")
    with pytest.raises(InjectedFault):
        handle.write(b"abcdefgh")
    handle.close()
    assert path.read_bytes() == b"abcd"


def test_fsync_fault_counts_separately_from_writes(tmp_path):
    injector = FaultInjector(FaultPlan(fail_on_fsync=2))
    with injector.open(tmp_path / "f.bin", "wb") as handle:
        handle.write(b"one")
        handle.sync()
        handle.write(b"two")
        with pytest.raises(InjectedFault):
            handle.sync()
    assert injector.writes == 2
    assert injector.fsyncs == 2


def test_ordinals_are_global_across_files(tmp_path):
    """One injector spans the WAL and the checkpointer: shared schedule."""
    injector = FaultInjector(FaultPlan(fail_on_write=3))
    a = injector.open(tmp_path / "a.bin", "wb")
    b = injector.open(tmp_path / "b.bin", "wb")
    a.write(b"1")
    b.write(b"2")
    with pytest.raises(InjectedFault):
        a.write(b"3")
    a.close()
    b.close()


def test_wal_appends_route_through_the_injector(tmp_path):
    injector = FaultInjector(FaultPlan(fail_on_write=2))
    wal = WriteAheadLog(tmp_path / "log.wal", faults=injector)
    wal.append({"t": "begin", "txn": 1, "view": "v"})
    with pytest.raises(InjectedFault):
        wal.append({"t": "commit", "txn": 1}, sync=True)
    wal.close()
    # Only the first frame reached the file; the scan sees a clean prefix.
    scan = wal.scan()
    assert scan.clean
    assert [r["t"] for r in scan.records] == ["begin"]


def test_open_fault_fires_before_a_truncating_open(tmp_path):
    """Dying at a 'wb' open must leave the old contents on disk."""
    path = tmp_path / "f.bin"
    path.write_bytes(b"precious")
    injector = FaultInjector(FaultPlan(fail_on_open=1))
    with pytest.raises(InjectedFault):
        injector.open(path, "wb")
    assert path.read_bytes() == b"precious"
    assert injector.opens == 1


def test_replace_fault_leaves_the_destination_untouched(tmp_path):
    src, dst = tmp_path / "new", tmp_path / "cur"
    src.write_bytes(b"new")
    dst.write_bytes(b"old")
    injector = FaultInjector(FaultPlan(fail_on_replace=1))
    with pytest.raises(InjectedFault):
        injector.replace(src, dst)
    assert dst.read_bytes() == b"old"
    FaultInjector().replace(src, dst)
    assert dst.read_bytes() == b"new"


def test_directory_fsync_counts_toward_the_fsync_plan(tmp_path):
    injector = FaultInjector(FaultPlan(fail_on_fsync=1))
    with pytest.raises(InjectedFault):
        injector.fsync_directory(tmp_path)
    assert injector.fsyncs == 1


def test_simulated_disk_honours_block_write_plan():
    injector = FaultInjector(FaultPlan(fail_on_block_write=2))
    disk = SimulatedDisk(fault_injector=injector)
    first, second = disk.allocate(), disk.allocate()
    disk.write_block(first, b"one")
    with pytest.raises(InjectedFault):
        disk.write_block(second, b"two")
    # The fault fired before the block mutated or was accounted.
    assert disk.read_block(second) == bytes(disk.block_size)
    assert disk.stats.block_writes == 1
    assert injector.block_writes == 2


def test_faulty_file_proxies_unknown_attributes(tmp_path):
    injector = FaultInjector()
    path = tmp_path / "f.bin"
    with injector.open(path, "wb") as handle:
        handle.write(b"abc")
        assert handle.seekable()  # falls through to the real handle
    assert handle.closed
