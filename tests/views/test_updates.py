"""Tests for predicate-driven updates and invalidation."""

import pytest

from repro.core.errors import ViewError
from repro.relational.expressions import col
from repro.relational.relation import Relation
from repro.relational.schema import Schema, category, measure
from repro.relational.types import NA, DataType, is_na
from repro.views.updates import apply_update, invalidate_rows, invalidate_where, update_rows
from repro.views.view import ConcreteView


def make_view():
    schema = Schema(
        [
            category("id", DataType.INT),
            measure("age", DataType.INT),
            measure("income", DataType.FLOAT),
        ]
    )
    rows = [(i, 20 + i, 1000.0 * (i + 1)) for i in range(10)]
    return ConcreteView("v", Relation("v", schema, rows))


class TestApplyUpdate:
    def test_predicate_update(self):
        view = make_view()
        deltas = apply_update(view, col("age") > 27, {"income": 0.0})
        assert "income" in deltas
        assert deltas["income"].size == 2  # ages 28, 29
        assert view.relation.column("income")[8] == 0.0
        assert view.relation.column("income")[0] == 1000.0

    def test_expression_assignment(self):
        view = make_view()
        apply_update(view, None, {"income": col("income") * 2})
        assert view.relation.column("income")[0] == 2000.0

    def test_callable_assignment(self):
        view = make_view()
        apply_update(view, col("id") == 0, {"age": lambda row: row[1] + 100})
        assert view.relation.column("age")[0] == 120

    def test_multiple_attributes_logged_separately(self):
        view = make_view()
        deltas = apply_update(view, col("id") == 1, {"age": 0, "income": 0.0})
        assert set(deltas) == {"age", "income"}
        assert len(view.history) == 2

    def test_no_match_no_history(self):
        view = make_view()
        deltas = apply_update(view, col("id") == 999, {"age": 0})
        assert deltas == {}
        assert len(view.history) == 0

    def test_empty_assignments_rejected(self):
        with pytest.raises(ViewError):
            apply_update(make_view(), None, {})

    def test_unknown_attribute_rejected(self):
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError):
            apply_update(make_view(), None, {"nope": 1})

    def test_history_captures_old_values(self):
        view = make_view()
        apply_update(view, col("id") == 2, {"income": -1.0})
        op = view.history.operations()[0]
        assert op.changes[0].old == 3000.0
        assert op.changes[0].new == -1.0
        assert op.changes[0].row == 2


class TestPointUpdates:
    def test_update_rows(self):
        view = make_view()
        delta = update_rows(view, "income", [(0, 5.0), (1, 6.0)])
        assert delta.size == 2
        assert view.relation.column("income")[:2] == [5.0, 6.0]


class TestInvalidate:
    def test_invalidate_where(self):
        """The 1000-year-old person of SS3.1 gets marked NA."""
        view = make_view()
        view.set_value(4, "age", 1000)
        delta, rows = invalidate_where(view, col("age") > 150, "age")
        assert delta.size == 1
        assert rows == [4]
        assert is_na(view.relation.column("age")[4])
        op = view.history.operations()[-1]
        assert op.kind.value == "invalidate"
        assert op.changes[0].old == 1000

    def test_invalidate_where_no_match_returns_no_rows(self):
        view = make_view()
        delta, rows = invalidate_where(view, col("age") > 150, "age")
        assert delta.size == 0
        assert rows == []
        assert len(view.history) == 0

    def test_invalidate_rows(self):
        view = make_view()
        _, rows = invalidate_rows(view, [0, 2], "income")
        assert rows == [0, 2]
        incomes = view.relation.column("income")
        assert is_na(incomes[0]) and is_na(incomes[2]) and incomes[1] == 2000.0

    def test_invalidate_then_undo(self):
        view = make_view()
        invalidate_rows(view, [3], "age")
        view.history.undo_last(view.relation, 1)
        assert view.relation.column("age")[3] == 23


class TestUpdateRowsByShard:
    def sharded_view(self, shards=3):
        from repro.storage.sharded import ShardedTransposedFile
        from repro.views.updates import update_rows_by_shard

        schema = Schema(
            [
                category("id", DataType.INT),
                measure("age", DataType.INT),
                measure("income", DataType.FLOAT),
            ]
        )
        rows = [(i, 20 + i, 1000.0 * (i + 1)) for i in range(10)]
        storage = ShardedTransposedFile(schema.types, shards=shards, name="v")
        view = ConcreteView("v", Relation("v", schema, rows), storage=storage)
        return view, update_rows_by_shard

    def test_burst_split_by_owning_shard(self):
        view, update_by_shard = self.sharded_view(shards=3)
        deltas = update_by_shard(
            view, "income", [(0, 0.0), (1, 0.0), (3, 0.0), (6, 0.0)]
        )
        # rows 0,3,6 -> shard 0; row 1 -> shard 1
        assert set(deltas) == {0, 1}
        assert deltas[0].size == 3
        assert deltas[1].size == 1

    def test_writes_reach_relation_and_mirror(self):
        view, update_by_shard = self.sharded_view()
        update_by_shard(view, "income", [(2, -1.0), (5, -2.0)])
        assert view.relation.column("income")[2] == -1.0
        assert view.storage.get_value(5, 2) == -2.0

    def test_each_shard_burst_logged_separately(self):
        view, update_by_shard = self.sharded_view(shards=2)
        before = view.version
        update_by_shard(view, "income", [(0, 0.0), (1, 0.0)])
        assert view.version == before + 2  # one history op per shard

    def test_unsharded_view_degrades_to_single_burst(self):
        from repro.views.updates import update_rows_by_shard

        view = make_view()
        deltas = update_rows_by_shard(view, "income", [(0, 0.0), (9, 0.0)])
        assert set(deltas) == {0}
        assert deltas[0].size == 2
