"""Tests for update histories: undo, rollback, replay."""

import pytest

from repro.core.errors import HistoryError
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.views.history import CellChange, OpKind, UpdateHistory


def make_relation():
    schema = Schema([measure("x"), measure("y")])
    return Relation("r", schema, [(float(i), float(i * 10)) for i in range(10)])


def change(relation, history, row, attr, new, kind=OpKind.UPDATE):
    old = relation.set_value(row, attr, new)
    history.record(kind, attr, [CellChange(row=row, old=old, new=new)])


class TestRecording:
    def test_versions_increment(self):
        history = UpdateHistory("v")
        assert history.version == 0
        relation = make_relation()
        change(relation, history, 0, "x", 99.0)
        change(relation, history, 1, "x", 98.0)
        assert history.version == 2
        assert len(history) == 2

    def test_operations_since(self):
        history = UpdateHistory("v")
        relation = make_relation()
        for i in range(5):
            change(relation, history, i, "x", -1.0)
        assert len(history.operations_since(3)) == 2

    def test_cells_changed(self):
        history = UpdateHistory("v")
        op = history.record(
            OpKind.UPDATE,
            "x",
            [CellChange(0, 1.0, 2.0), CellChange(1, 3.0, 4.0)],
        )
        assert op.cells_changed == 2


class TestUndo:
    def test_undo_restores_values(self):
        history = UpdateHistory("v")
        relation = make_relation()
        change(relation, history, 3, "x", 99.0)
        assert relation.row(3)[0] == 99.0
        undone = history.undo_last(relation, 1)
        assert relation.row(3)[0] == 3.0
        assert len(undone) == 1
        # The version high-water mark does not move backwards: v1 stays
        # burned so peers that consumed the log never see it reused.
        assert history.version == 1
        assert history.operations() == []

    def test_undo_multiple_in_reverse(self):
        history = UpdateHistory("v")
        relation = make_relation()
        change(relation, history, 0, "x", 100.0)
        change(relation, history, 0, "x", 200.0)
        history.undo_last(relation, 2)
        assert relation.row(0)[0] == 0.0

    def test_undo_partial(self):
        history = UpdateHistory("v")
        relation = make_relation()
        change(relation, history, 0, "x", 100.0)
        change(relation, history, 0, "x", 200.0)
        history.undo_last(relation, 1)
        assert relation.row(0)[0] == 100.0
        assert history.version == 2  # monotonic: v2 is burned, not reissued
        assert [op.version for op in history.operations()] == [1]

    def test_undo_too_many_rejected(self):
        history = UpdateHistory("v")
        with pytest.raises(HistoryError, match="cannot undo"):
            history.undo_last(make_relation(), 1)

    def test_undo_count_validation(self):
        history = UpdateHistory("v")
        with pytest.raises(HistoryError):
            history.undo_last(make_relation(), 0)

    def test_undo_add_column_rejected(self):
        history = UpdateHistory("v")
        relation = make_relation()
        history.record(OpKind.ADD_COLUMN, "derived", [])
        with pytest.raises(HistoryError, match="column addition"):
            history.undo_last(relation, 1)


class TestVersionMonotonicity:
    def test_undo_then_record_never_reuses_a_version(self):
        """Regression (sharing scenario, SS3.2): a peer that consumed the
        log up to some version must never see a *different* operation
        reissued under a version it already processed."""
        history = UpdateHistory("v")
        relation = make_relation()
        change(relation, history, 0, "x", 99.0)  # v1
        peer_seen = {op.version: op for op in history.operations_since(0)}
        history.undo_last(relation, 1)
        change(relation, history, 1, "x", 42.0)  # must not become v1 again
        fresh = history.operations_since(max(peer_seen))
        assert [op.version for op in fresh] == [2]
        for op in history.operations():
            if op.version in peer_seen:
                assert op == peer_seen[op.version]


class TestRollback:
    def test_rollback_to_version(self):
        history = UpdateHistory("v")
        relation = make_relation()
        change(relation, history, 0, "x", 10.0)  # v1
        change(relation, history, 0, "x", 20.0)  # v2
        change(relation, history, 0, "x", 30.0)  # v3
        history.rollback_to(relation, 1)
        assert relation.row(0)[0] == 10.0
        assert history.version == 3  # monotonic high-water mark
        assert [op.version for op in history.operations()] == [1]

    def test_rollback_to_pristine(self):
        history = UpdateHistory("v")
        relation = make_relation()
        change(relation, history, 5, "y", -1.0)
        history.rollback_to(relation, 0)
        assert relation.row(5)[1] == 50.0

    def test_rollback_noop(self):
        history = UpdateHistory("v")
        relation = make_relation()
        change(relation, history, 0, "x", 1.5)
        assert history.rollback_to(relation, 1) == []

    def test_rollback_bad_version(self):
        history = UpdateHistory("v")
        with pytest.raises(HistoryError, match="out of range"):
            history.rollback_to(make_relation(), 5)


class TestReplay:
    def test_replay_applies_edits(self):
        """SS3.2: a second analyst adopts a predecessor's data checking."""
        history = UpdateHistory("v")
        first_copy = make_relation()
        change(first_copy, history, 2, "x", 99.0)
        change(first_copy, history, 3, "y", -1.0, kind=OpKind.INVALIDATE)
        second_copy = make_relation()
        cells = history.replay_onto(second_copy)
        assert cells == 2
        assert second_copy.row(2)[0] == 99.0
        assert second_copy.row(3)[1] == -1.0

    def test_replay_skips_column_ops(self):
        history = UpdateHistory("v")
        history.record(OpKind.ADD_COLUMN, "d", [])
        assert history.replay_onto(make_relation()) == 0
