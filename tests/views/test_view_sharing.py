"""Tests for concrete views and the sharing registry."""

import pytest

from repro.core.errors import ViewError
from repro.incremental.derived import LocalDerivation
from repro.relational.expressions import col
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.relational.types import DataType
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.transposed import TransposedFile
from repro.views.materialize import ProjectNode, SelectNode, SourceNode, ViewDefinition
from repro.views.sharing import ViewRegistry
from repro.views.view import ConcreteView


def simple_relation(n=20):
    schema = Schema([measure("x"), measure("y")])
    return Relation("v", schema, [(float(i), float(i * 2)) for i in range(n)])


def make_view(name="v", definition=None, storage=False):
    relation = simple_relation()
    store = None
    if storage:
        disk = SimulatedDisk(block_size=256)
        pool = BufferPool(disk, capacity=16)
        store = TransposedFile(pool, relation.schema.types)
    return ConcreteView(name, relation, definition=definition, storage=store)


class TestConcreteView:
    def test_basics(self):
        view = make_view()
        assert len(view) == 20
        assert view.version == 0
        assert "v" in repr(view)

    def test_column_via_storage(self):
        view = make_view(storage=True)
        disk = view.storage.pool.disk
        view.storage.pool.clear()
        disk.reset_stats()
        assert view.column("y") == [float(i * 2) for i in range(20)]
        assert disk.stats.block_reads > 0

    def test_set_value_writes_through(self):
        view = make_view(storage=True)
        view.set_value(5, "x", -1.0)
        assert view.relation.column("x")[5] == -1.0
        assert view.storage.get_value(5, 0) == -1.0

    def test_storage_size_mismatch_rejected(self):
        relation = simple_relation()
        disk = SimulatedDisk(block_size=256)
        pool = BufferPool(disk, capacity=8)
        store = TransposedFile(pool, relation.schema.types)
        store.append_row((1.0, 1.0))
        with pytest.raises(ViewError):
            ConcreteView("v", relation, storage=store)

    def test_derived_column_memory_only(self):
        view = make_view(storage=True)
        view.add_derived_column(LocalDerivation("total", col("x") + col("y")))
        assert view.column("total")[3] == 9.0
        # The stored mirror keeps only the base columns.
        assert view.storage.column_count == 2


class TestSharingRegistry:
    def make_registered(self):
        registry = ViewRegistry()
        definition = ViewDefinition("base", SourceNode("census"))
        view = make_view("base", definition=definition)
        registry.register(view)
        return registry, view

    def test_register_get(self):
        registry, view = self.make_registered()
        assert registry.get("base") is view
        assert registry.names() == ["base"]
        with pytest.raises(ViewError):
            registry.register(view)
        with pytest.raises(ViewError):
            registry.get("missing")

    def test_identical_detection(self):
        registry, _ = self.make_registered()
        request = ViewDefinition("dup", SourceNode("census"))
        match = registry.find_match(request)
        assert match is not None
        assert match.kind == "identical" and match.operations == 0

    def test_derivable_detection(self):
        registry, _ = self.make_registered()
        request = ViewDefinition(
            "subset",
            ProjectNode(
                SelectNode(SourceNode("census"), col("x") > 5),
                ("x",),
            ),
        )
        match = registry.find_match(request)
        assert match is not None
        assert match.kind == "derivable" and match.operations == 2

    def test_too_many_ops_not_derivable(self):
        registry, _ = self.make_registered()
        node = SourceNode("census")
        for i in range(5):
            node = SelectNode(node, col("x") > i)
        assert registry.find_match(ViewDefinition("deep", node)) is None

    def test_unrelated_not_matched(self):
        registry, _ = self.make_registered()
        request = ViewDefinition("other", SourceNode("different_dataset"))
        assert registry.find_match(request) is None

    def test_derive_from_existing_data(self):
        registry, _ = self.make_registered()
        request = ViewDefinition(
            "subset", SelectNode(SourceNode("census"), col("x") > 15)
        )
        match = registry.find_match(request)
        derived = registry.derive_from(request, match)
        assert len(derived) == 4  # x in 16..19
        assert derived.name == "subset"

    def test_unregister(self):
        registry, _ = self.make_registered()
        registry.unregister("base")
        assert registry.names() == []
        with pytest.raises(ViewError):
            registry.unregister("base")


class TestPublishing:
    def test_publish_snapshot(self):
        registry = ViewRegistry()
        view = make_view("v", definition=ViewDefinition("v", SourceNode("d")))
        registry.register(view)
        edits = registry.publish(view, publisher="alice")
        # Later private changes do not leak into the snapshot.
        view.set_value(0, "x", -99.0)
        assert edits.relation.column("x")[0] == 0.0
        assert edits.publisher == "alice"
        assert registry.published("v") is edits
        assert registry.published_names() == ["v"]

    def test_unpublished_lookup_rejected(self):
        with pytest.raises(ViewError):
            ViewRegistry().published("nope")
