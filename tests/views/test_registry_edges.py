"""Edge cases of ViewRegistry derivable matching, plus publish provenance.

Satellites of the service-layer PR: the derivable-match walk has corners
(``max_ops=0``, nested Select-of-Project wrapping, several covering views)
that the happy-path tests in test_view_sharing.py never exercise, and the
publish path now records provenance the Management Database can verify.
"""

import pytest

from repro.core.errors import ViewError
from repro.core.dbms import StatisticalDBMS
from repro.relational.expressions import col
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.views.materialize import (
    ProjectNode,
    SelectNode,
    SourceNode,
    ViewDefinition,
)
from repro.views.sharing import ViewRegistry
from repro.views.view import ConcreteView


def simple_relation(name="v", n=20):
    schema = Schema([measure("x"), measure("y")])
    return Relation(name, schema, [(float(i), float(i * 2)) for i in range(n)])


def registered(registry, name, definition):
    view = ConcreteView(name, simple_relation(name), definition=definition)
    registry.register(view)
    return view


class TestMaxOpsZero:
    """max_derivation_ops=0: identical matches only, never derivable."""

    def test_identical_still_found(self):
        registry = ViewRegistry(max_derivation_ops=0)
        registered(registry, "base", ViewDefinition("base", SourceNode("census")))
        match = registry.find_match(ViewDefinition("dup", SourceNode("census")))
        assert match is not None
        assert match.kind == "identical"
        assert match.operations == 0

    def test_one_layer_not_derivable(self):
        registry = ViewRegistry(max_derivation_ops=0)
        registered(registry, "base", ViewDefinition("base", SourceNode("census")))
        request = ViewDefinition(
            "subset", SelectNode(SourceNode("census"), col("x") > 5)
        )
        assert registry.find_match(request) is None


class TestNestedWrapping:
    """Select-of-Project (and deeper sandwiches) strip layer by layer."""

    def test_select_of_project_derivable(self):
        registry = ViewRegistry()
        registered(registry, "base", ViewDefinition("base", SourceNode("census")))
        request = ViewDefinition(
            "narrow",
            SelectNode(
                ProjectNode(SourceNode("census"), ("x",)),
                col("x") > 3,
            ),
        )
        match = registry.find_match(request)
        assert match is not None
        assert match.kind == "derivable"
        assert match.operations == 2

    def test_derive_evaluates_layers_inside_out(self):
        registry = ViewRegistry()
        registered(registry, "base", ViewDefinition("base", SourceNode("census")))
        request = ViewDefinition(
            "narrow",
            SelectNode(
                ProjectNode(SourceNode("census"), ("x",)),
                col("x") > 15,
            ),
        )
        match = registry.find_match(request)
        derived = registry.derive_from(request, match)
        # Project first (x only), then select x > 15 -> rows 16..19.
        assert derived.schema.names == ["x"]
        assert len(derived) == 4

    def test_intermediate_layer_can_match(self):
        """The walk must test after each strip, not only at the bottom."""
        registry = ViewRegistry()
        registered(
            registry,
            "projected",
            ViewDefinition("projected", ProjectNode(SourceNode("census"), ("x",))),
        )
        request = ViewDefinition(
            "narrow",
            SelectNode(
                ProjectNode(SourceNode("census"), ("x",)),
                col("x") > 3,
            ),
        )
        match = registry.find_match(request)
        assert match is not None
        assert match.existing == "projected"
        assert match.operations == 1


class TestTieBreaking:
    """A request matching several views must resolve deterministically."""

    def request(self):
        return ViewDefinition(
            "sub", SelectNode(SourceNode("census"), col("x") > 5)
        )

    def test_two_identical_candidates_smallest_name_wins(self):
        registry = ViewRegistry()
        registered(registry, "beta", ViewDefinition("beta", SourceNode("census")))
        registered(registry, "alpha", ViewDefinition("alpha", SourceNode("census")))
        match = registry.find_match(self.request())
        assert match is not None
        assert match.existing == "alpha"

    def test_registration_order_is_irrelevant(self):
        forward = ViewRegistry()
        registered(forward, "alpha", ViewDefinition("alpha", SourceNode("census")))
        registered(forward, "beta", ViewDefinition("beta", SourceNode("census")))
        backward = ViewRegistry()
        registered(backward, "beta", ViewDefinition("beta", SourceNode("census")))
        registered(backward, "alpha", ViewDefinition("alpha", SourceNode("census")))
        assert (
            forward.find_match(self.request()).existing
            == backward.find_match(self.request()).existing
            == "alpha"
        )


class TestPublishProvenance:
    """publish() records analyst + version; adoption verifies them."""

    def build_dbms(self):
        dbms = StatisticalDBMS()
        dbms.load_raw(simple_relation("census"))
        dbms.create_view(
            ViewDefinition("mine", SourceNode("census")), analyst="alice"
        )
        return dbms

    def test_publication_recorded_in_management(self):
        dbms = self.build_dbms()
        edits = dbms.publish("mine", publisher="alice")
        record = dbms.management.publication("mine")
        assert record.publisher == "alice" == edits.publisher
        assert record.version == edits.version == 0
        assert "mine" in dbms.management.describe()["publications"]

    def test_publication_version_tracks_history(self):
        dbms = self.build_dbms()
        session = dbms.session("mine", analyst="alice")
        session.update(col("x") == 3.0, {"x": -1.0})
        edits = dbms.publish("mine", publisher="alice")
        assert edits.version == dbms.view("mine").version > 0
        assert dbms.management.publication("mine").version == edits.version

    def test_adoption_verifies_provenance(self):
        dbms = self.build_dbms()
        dbms.publish("mine", publisher="alice")
        adopted = dbms.adopt_published("mine", "theirs", analyst="bob")
        assert adopted.owner == "bob"
        assert len(adopted) == 20

    def test_adoption_refused_without_record(self):
        dbms = self.build_dbms()
        # A snapshot planted directly in the registry has no control record.
        dbms.registry.publish(dbms.view("mine"), publisher="mallory")
        with pytest.raises(ViewError, match="provenance"):
            dbms.adopt_published("mine", "theirs", analyst="bob")

    def test_adoption_refused_on_mismatch(self):
        dbms = self.build_dbms()
        dbms.publish("mine", publisher="alice")
        # The registry snapshot is replaced behind the Management DB's back.
        dbms.registry.publish(dbms.view("mine"), publisher="mallory")
        with pytest.raises(ViewError, match="provenance mismatch"):
            dbms.adopt_published("mine", "theirs", analyst="bob")

    def test_drop_view_clears_publication(self):
        dbms = self.build_dbms()
        dbms.publish("mine", publisher="alice")
        dbms.drop_view("mine")
        assert dbms.management.publications() == {}
