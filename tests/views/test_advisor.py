"""Tests for the access-pattern advisor (paper SS2.3, SS2.7)."""

import pytest

from repro.core.errors import ViewError
from repro.views.advisor import AccessAdvisor, LayoutAdvice


class TestLayoutAdvice:
    def test_column_dominated_advises_transposed(self):
        advisor = AccessAdvisor(n_columns=8)
        for _ in range(50):
            advisor.observe_column_scan("INCOME")
        advisor.observe_row_read()
        assert advisor.layout_advice() is LayoutAdvice.TRANSPOSED

    def test_row_dominated_advises_row_store(self):
        advisor = AccessAdvisor(n_columns=8)
        advisor.observe_column_scan("INCOME")
        for _ in range(100):
            advisor.observe_row_read()
        assert advisor.layout_advice() is LayoutAdvice.ROW_STORE

    def test_balanced_is_either(self):
        advisor = AccessAdvisor(n_columns=8)
        for _ in range(10):
            advisor.observe_column_scan("A")
            advisor.observe_row_read()
        assert advisor.layout_advice() is LayoutAdvice.EITHER

    def test_statistical_workload_shape(self):
        """The paper's premise: EDA is column scans, so transposed wins."""
        advisor = AccessAdvisor(n_columns=16)
        for attr in ("AGE", "INCOME", "HOURS"):
            for _ in range(20):
                advisor.observe_column_scan(attr)
        for _ in range(5):  # a few outlier investigations
            advisor.observe_row_read()
        assert advisor.layout_advice() is LayoutAdvice.TRANSPOSED


class TestIndexAdvice:
    def test_selective_repeated_predicate(self):
        advisor = AccessAdvisor(n_columns=4, index_threshold=3)
        for _ in range(5):
            advisor.observe_predicate("REGION", selectivity=0.02)
        assert advisor.index_advice() == ["REGION"]

    def test_unselective_predicate_not_indexed(self):
        advisor = AccessAdvisor(n_columns=4, index_threshold=3)
        for _ in range(10):
            advisor.observe_predicate("SEX", selectivity=0.5)
        assert advisor.index_advice() == []

    def test_rare_predicate_not_indexed(self):
        advisor = AccessAdvisor(n_columns=4, index_threshold=5)
        advisor.observe_predicate("REGION", selectivity=0.01)
        assert advisor.index_advice() == []

    def test_mean_selectivity_used(self):
        advisor = AccessAdvisor(n_columns=4, index_threshold=2, selectivity_cutoff=0.1)
        advisor.observe_predicate("A", 0.01)
        advisor.observe_predicate("A", 0.5)  # mean ~0.25: too coarse
        assert advisor.index_advice() == []

    def test_selectivity_validation(self):
        with pytest.raises(ViewError):
            AccessAdvisor(4).observe_predicate("A", 1.5)


class TestCompressionAdvice:
    def test_low_cardinality_scanned_column(self):
        advisor = AccessAdvisor(n_columns=4)
        advisor.observe_cardinality("AGE_GROUP", distinct=4, rows=10_000)
        for _ in range(5):
            advisor.observe_column_scan("AGE_GROUP")
        assert advisor.compression_advice() == ["AGE_GROUP"]

    def test_high_cardinality_not_compressed(self):
        advisor = AccessAdvisor(n_columns=4)
        advisor.observe_cardinality("INCOME", distinct=9_000, rows=10_000)
        for _ in range(5):
            advisor.observe_column_scan("INCOME")
        assert advisor.compression_advice() == []

    def test_unscanned_not_compressed(self):
        advisor = AccessAdvisor(n_columns=4)
        advisor.observe_cardinality("AGE_GROUP", distinct=4, rows=10_000)
        assert advisor.compression_advice() == []

    def test_cardinality_validation(self):
        with pytest.raises(ViewError):
            AccessAdvisor(4).observe_cardinality("A", 1, 0)


class TestRecommendation:
    def test_full_recommendation(self):
        advisor = AccessAdvisor(n_columns=8, index_threshold=2)
        for _ in range(30):
            advisor.observe_column_scan("INCOME")
        advisor.observe_cardinality("REGION", distinct=10, rows=10_000)
        for _ in range(4):
            advisor.observe_column_scan("REGION")
        for _ in range(3):
            advisor.observe_predicate("REGION", 0.05)
        rec = advisor.recommend()
        assert rec.layout is LayoutAdvice.TRANSPOSED
        assert rec.index_attributes == ("REGION",)
        assert rec.compress_attributes == ("REGION",)
        assert "column scans" in rec.rationale

    def test_constructor_validation(self):
        with pytest.raises(ViewError):
            AccessAdvisor(0)
