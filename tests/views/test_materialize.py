"""Tests for view definitions, the raw tape database, and materialization."""

import pytest

from repro.core.errors import ViewError
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import col
from repro.views.materialize import (
    AggregateNode,
    JoinNode,
    ProjectNode,
    RawDatabase,
    SelectNode,
    SourceNode,
    ViewDefinition,
    materialize,
)
from repro.workloads.census import age_group_codebook, figure1_dataset, generate_microdata


@pytest.fixture()
def raw():
    db = RawDatabase()
    db.store(figure1_dataset("census"))
    db.store(age_group_codebook().to_relation())
    return db


class TestDefinitionTree:
    def test_canonical_equality(self):
        a = ViewDefinition("v1", SelectNode(SourceNode("census"), col("SEX") == "M"))
        b = ViewDefinition("v2", SelectNode(SourceNode("census"), col("SEX") == "M"))
        c = ViewDefinition("v3", SelectNode(SourceNode("census"), col("SEX") == "F"))
        assert a.canonical() == b.canonical()
        assert a.canonical() != c.canonical()
        assert a.root == b.root
        assert a.root != c.root

    def test_sources(self):
        node = JoinNode(
            SourceNode("census"),
            SourceNode("codes"),
            ("AGE_GROUP",),
            ("CATEGORY",),
        )
        assert ViewDefinition("v", node).sources() == {"census", "codes"}

    def test_nodes_hashable(self):
        assert len({SourceNode("a"), SourceNode("a"), SourceNode("b")}) == 2


class TestRawDatabase:
    def test_store_and_read_roundtrip(self, raw):
        got = raw.read("census")
        assert list(got) == list(figure1_dataset())
        assert got.schema.names == figure1_dataset().schema.names

    def test_duplicate_rejected(self, raw):
        with pytest.raises(ViewError, match="already on tape"):
            raw.store(figure1_dataset("census"))

    def test_missing_rejected(self, raw):
        with pytest.raises(ViewError, match="no raw dataset"):
            raw.read("nope")

    def test_reads_are_accounted(self, raw):
        before = raw.tape.stats.blocks_streamed
        raw.read("census")
        assert raw.tape.stats.blocks_streamed > before

    def test_large_dataset_roundtrip(self):
        db = RawDatabase()
        micro = generate_microdata(2000, seed=1)
        db.store(micro)
        got = db.read("census_micro")
        assert len(got) == 2000
        assert got.row(100) == micro.row(100)


class TestMaterialize:
    def test_source_only(self, raw):
        relation, report = materialize(ViewDefinition("v", SourceNode("census")), raw)
        assert len(relation) == 9
        assert report.rows == 9
        assert report.tape.mounts >= 1
        assert report.tape_time_ms > 0
        assert "rows" in str(report)

    def test_select_project(self, raw):
        node = ProjectNode(
            SelectNode(SourceNode("census"), col("SEX") == "M"),
            ("RACE", "POPULATION"),
        )
        relation, _ = materialize(ViewDefinition("v", node), raw)
        assert len(relation) == 5
        assert relation.schema.names == ["RACE", "POPULATION"]

    def test_join_decodes(self, raw):
        node = JoinNode(
            SourceNode("census"),
            SourceNode("codebook_AGE_GROUP_1970"),
            ("AGE_GROUP",),
            ("CATEGORY",),
        )
        relation, _ = materialize(ViewDefinition("v", node), raw)
        assert len(relation) == 9
        assert "VALUE" in relation.schema

    def test_aggregate(self, raw):
        node = AggregateNode(
            SourceNode("census"),
            ("RACE",),
            (AggregateSpec("sum", "POPULATION", "POP"),),
        )
        relation, _ = materialize(ViewDefinition("v", node), raw)
        assert len(relation) == 2

    def test_multi_source_costs_both(self, raw):
        single = ViewDefinition("v1", SourceNode("census"))
        double = ViewDefinition(
            "v2",
            JoinNode(
                SourceNode("census"),
                SourceNode("codebook_AGE_GROUP_1970"),
                ("AGE_GROUP",),
                ("CATEGORY",),
            ),
        )
        _, single_report = materialize(single, raw)
        _, double_report = materialize(double, raw)
        assert double_report.tape.blocks_streamed > single_report.tape.blocks_streamed
