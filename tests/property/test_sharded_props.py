"""Property tests for the scatter-gather path and partial-state protocol.

Two invariants from ISSUE 8:

* insert-then-delete returns every incremental computation to a state
  equivalent to never having seen the values (including ``AlgebraicForm``
  with a ``sumlog`` measure, whose non-positive counter must unwind);
* sharded scatter-gather produces exactly the single-stream vectorized
  answer for every shard count, on NA-heavy columns.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.incremental.aggregates import (
    IncrementalCount,
    IncrementalMean,
    IncrementalMinMax,
    IncrementalStd,
    IncrementalSum,
    IncrementalVariance,
)
from repro.incremental.differencing import DEFINITIONS, AlgebraicForm
from repro.relational.catalog import Catalog
from repro.relational.planner import plan
from repro.relational.relation import StoredRelation
from repro.relational.schema import Schema, category, measure
from repro.relational.sql import parse
from repro.relational.types import NA, DataType, is_na
from repro.storage.sharded import ShardedTransposedFile

# +-1e3 keeps Welford downdate cancellation (~eps * n * range^2) well
# below the comparison tolerance; the property hunts state corruption,
# not last-ulp float noise.
finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
value_or_na = st.one_of(finite, st.just(NA))

COMPUTATIONS = [
    IncrementalCount,
    IncrementalSum,
    IncrementalMean,
    IncrementalVariance,
    IncrementalStd,
    IncrementalMinMax,
]


def equivalent(a, b):
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(map(equivalent, a, b))
    if is_na(a) and is_na(b):
        return True
    if is_na(a) or is_na(b):
        return False
    # abs soaks up sqrt-amplified downdate residue near zero (std of an
    # all-equal column after a large insert/delete pair).
    return a == pytest.approx(b, rel=1e-6, abs=1e-3)


@given(
    st.lists(value_or_na, min_size=1, max_size=40),
    st.lists(value_or_na, min_size=0, max_size=20),
)
@settings(max_examples=120, deadline=None)
def test_insert_then_delete_round_trips(base, burst):
    for cls in COMPUTATIONS:
        comp = cls()
        comp.initialize(base)
        reference = cls()
        reference.initialize(base)
        for value in burst:
            comp.on_insert(value)
        for value in reversed(burst):
            comp.on_delete(value)
        assert equivalent(comp.value, reference.value), cls.__name__


@given(
    st.lists(st.one_of(finite, st.just(NA), st.just(0.0)), min_size=1, max_size=30),
    st.lists(st.one_of(finite, st.just(NA), st.just(0.0)), max_size=12),
)
@settings(max_examples=120, deadline=None)
def test_sumlog_form_round_trips(base, burst):
    form = AlgebraicForm(DEFINITIONS["geometric_mean"])
    form.initialize(base)
    reference = AlgebraicForm(DEFINITIONS["geometric_mean"])
    reference.initialize(base)
    for value in burst:
        form.on_insert(value)
    for value in reversed(burst):
        form.on_delete(value)
    assert equivalent(form.value, reference.value)


# Integer-valued measures keep float addition associative, so the sharded
# answer must be *identical* (==, not approx) for every shard count.
int_measure = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(float), st.just(NA)
)


def rows_strategy():
    return st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d"]), int_measure, int_measure),
        min_size=1,
        max_size=50,
    )


def run_query(rows, shards, text=None):
    schema = Schema([category("G", DataType.STR), measure("X"), measure("Y")])
    storage = ShardedTransposedFile(schema.types, shards=shards, name="t")
    stored = StoredRelation.load("t", schema, rows, storage)
    catalog = Catalog()
    catalog.register(stored)
    if text is None:
        text = (
            "SELECT G, count(X) AS n, sum(X) AS s, avg(X) AS a, "
            "min(Y) AS mn, max(Y) AS mx FROM t GROUP BY G"
        )
    return list(plan(parse(text), catalog))


@given(rows_strategy())
@settings(max_examples=40, deadline=None)
def test_sharded_equals_single_stream_for_all_shard_counts(rows):
    reference = run_query(rows, shards=1)
    for shards in (2, 4, 8):
        assert run_query(rows, shards) == reference


# -- sketch aggregates (ISSUE 9): t-digest medians/quantiles and HLL -------
#
# At property-test scale the digests hold only unit centroids and the HLL
# stays in exact sparse mode, so the merged sketch answers are *bit for
# bit* the single-stream answers for every shard count — determinism of
# the seeded hashing and of centroid merging is exactly what's on trial.

SKETCH_QUERY = (
    "SELECT G, median(X) AS med, count(DISTINCT X) AS d, "
    "quantile_25(X) AS q1, quantile_75(X) AS q3, quantile_95(Y) AS p95 "
    "FROM t GROUP BY G"
)


def _exact_group_truth(rows):
    from repro.relational.aggregates import (
        agg_count_distinct,
        agg_median,
        agg_quantile,
    )

    order = []
    groups = {}
    for g, x, y in rows:
        if g not in groups:
            groups[g] = ([], [])
            order.append(g)
        groups[g][0].append(x)
        groups[g][1].append(y)
    out = []
    for g in order:
        xs, ys = groups[g]
        out.append(
            (
                g,
                agg_median(xs),
                agg_count_distinct(xs),
                agg_quantile(xs, 0.25),
                agg_quantile(xs, 0.75),
                agg_quantile(ys, 0.95),
            )
        )
    return out


@given(rows_strategy())
@settings(max_examples=40, deadline=None)
def test_sketch_aggregates_shard_invariant_and_exact(rows):
    truth = _exact_group_truth(rows)
    for shards in (1, 2, 4, 8):
        got = run_query(rows, shards, SKETCH_QUERY)
        assert len(got) == len(truth)
        for got_row, want_row in zip(got, truth):
            assert got_row[0] == want_row[0]
            assert got_row[2] == want_row[2]  # HLL sparse mode: exact int
            for position in (1, 3, 4, 5):  # unit centroids: exact values
                assert equivalent(got_row[position], want_row[position])


@given(rows_strategy())
@settings(max_examples=20, deadline=None)
def test_sketch_aggregates_identical_across_shard_counts(rows):
    reference = run_query(rows, 1, SKETCH_QUERY)
    for shards in (2, 4, 8):
        assert run_query(rows, shards, SKETCH_QUERY) == reference


@given(
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=60),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_sketch_partial_round_trip(values, seed):
    """partial_state() -> merge_partial() into a fresh sketch reproduces
    the source's contribution exactly (the COMPUTATIONS round-trip
    property, extended to the sketch family)."""
    from repro.incremental.sketches import (
        CountMinSketch,
        HyperLogLog,
        TDigest,
    )

    floats = [float(v) for v in values]
    for make in (
        lambda: TDigest(),
        lambda: HyperLogLog(seed=seed % 1000),
        lambda: CountMinSketch(width=64, depth=3, seed=seed % 1000),
    ):
        source = make()
        source.initialize(floats)
        target = make()
        target.initialize([])
        target.merge_partial(source.partial_state())
        assert equivalent(float(target.value), float(source.value))
