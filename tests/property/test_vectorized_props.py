"""Property-based equivalence: the vectorized engine vs. the row engine.

The vectorized operators exist purely as a faster evaluation strategy, so
for every generated relation, predicate, projection, and aggregation the
two engines must produce identical rows — across dtypes, NA-heavy
columns, and chunk sizes that straddle chunk boundaries (1, chunk - 1,
chunk, chunk + 1, 3*chunk).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.aggregates import AggregateSpec, GroupBy
from repro.relational.expressions import col
from repro.relational.operators import Project, Select
from repro.relational.relation import Relation
from repro.relational.schema import Schema, category, measure
from repro.relational.types import NA, DataType
from repro.relational.vectorized import (
    VecGroupBy,
    VecProject,
    VecScan,
    VecSelect,
    chunks_from_rows,
)

CHUNK = 4  # small on purpose so a handful of rows spans several chunks

SCHEMA = Schema(
    [
        category("G", DataType.STR),
        category("K", DataType.INT),
        measure("X"),
        measure("Y"),
        category("B", DataType.BOOL),
    ]
)

maybe_na = lambda strategy: st.one_of(st.just(NA), strategy)  # noqa: E731

row = st.tuples(
    st.sampled_from(["a", "b", "c"]),
    maybe_na(st.integers(min_value=-5, max_value=5)),
    maybe_na(st.floats(min_value=-100, max_value=100, allow_nan=False)),
    maybe_na(st.floats(min_value=-100, max_value=100, allow_nan=False)),
    maybe_na(st.booleans()),
)

rows_strategy = st.lists(row, min_size=0, max_size=13)

chunk_sizes = st.sampled_from([1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK])

predicates = st.sampled_from(
    [
        col("X") > 0,
        col("X") <= col("Y"),
        (col("K") >= -2) & (col("K") < 3),
        col("G").is_in(["a", "c"]) | col("B"),
        ~col("Y").is_na(),
        col("X").between(-50, 50),
    ]
)


@given(rows_strategy, chunk_sizes)
@settings(max_examples=120, deadline=None)
def test_chunking_round_trips_rows(rows, chunk_size):
    chunks = list(chunks_from_rows(SCHEMA, rows, chunk_size=chunk_size))
    rebuilt = [r for chunk in chunks for r in chunk.iter_rows()]
    assert rebuilt == rows
    assert all(chunk.length <= chunk_size for chunk in chunks)


@given(rows_strategy, chunk_sizes, predicates)
@settings(max_examples=150, deadline=None)
def test_select_matches_row_engine(rows, chunk_size, predicate):
    rel = Relation("t", SCHEMA, rows)
    vec = VecSelect(VecScan(rel, chunk_size=chunk_size), predicate)
    assert vec.rows() == list(Select(rel, predicate))


@given(rows_strategy, chunk_sizes)
@settings(max_examples=120, deadline=None)
def test_project_matches_row_engine(rows, chunk_size):
    rel = Relation("t", SCHEMA, rows)
    items = ["G", ("x2", col("X") * 2), ("xy", col("X") + col("Y")), "B"]
    vec = VecProject(VecScan(rel, chunk_size=chunk_size), items)
    row_op = Project(rel, items)
    assert vec.schema.names == row_op.schema.names
    assert vec.rows() == list(row_op)


@given(rows_strategy, chunk_sizes, st.sampled_from([["G"], ["G", "K"], []]))
@settings(max_examples=120, deadline=None)
def test_groupby_matches_row_engine(rows, chunk_size, keys):
    rel = Relation("t", SCHEMA, rows)
    specs = [
        AggregateSpec("count", None, "n"),
        AggregateSpec("count", "X", "nx"),
        AggregateSpec("sum", "X", "sx"),
        AggregateSpec("mean", "Y", "my"),
        AggregateSpec("min", "X", "mn"),
        AggregateSpec("max", "Y", "mx"),
    ]
    vec = VecGroupBy(VecScan(rel, chunk_size=chunk_size), keys, specs)
    assert vec.rows() == list(GroupBy(rel, keys, specs))


@given(rows_strategy, chunk_sizes, predicates)
@settings(max_examples=100, deadline=None)
def test_full_pipeline_matches_row_engine(rows, chunk_size, predicate):
    """Scan -> Select -> Project chains agree end to end."""
    rel = Relation("t", SCHEMA, rows)
    items = ["G", "X", ("shifted", col("Y") - 1)]
    vec = VecProject(
        VecSelect(VecScan(rel, chunk_size=chunk_size), predicate), items
    )
    assert vec.rows() == list(Project(Select(rel, predicate), items))


@pytest.mark.parametrize("n_rows", [0, 1, CHUNK, CHUNK - 1, CHUNK + 1, 3 * CHUNK])
def test_boundary_row_counts(n_rows):
    """Row counts sitting exactly on chunk boundaries round-trip cleanly."""
    rows = [("a", i, float(i), float(-i), bool(i % 2)) for i in range(n_rows)]
    rel = Relation("t", SCHEMA, rows)
    vec = VecSelect(VecScan(rel, chunk_size=CHUNK), col("X") >= 0)
    assert vec.rows() == list(Select(rel, col("X") >= 0))
