"""Property-based tests for storage-layer invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.types import NA, DataType
from repro.storage import compression as comp
from repro.storage.btree import BPlusTree
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.records import RecordCodec
from repro.storage.transposed import TransposedFile

ints_with_na = st.lists(
    st.one_of(st.integers(min_value=-(2**31), max_value=2**31), st.just(NA)),
    min_size=1,
    max_size=200,
)


@given(ints_with_na)
@settings(max_examples=100, deadline=None)
def test_rle_bytes_roundtrip(values):
    buf = comp.rle_encode_bytes(values, DataType.INT)
    assert comp.rle_decode_bytes(buf, DataType.INT) == values


@given(st.lists(st.one_of(st.text(max_size=8), st.just(NA)), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_rle_string_roundtrip(values):
    buf = comp.rle_encode_bytes(values, DataType.STR)
    assert comp.rle_decode_bytes(buf, DataType.STR) == values


@given(ints_with_na)
@settings(max_examples=100, deadline=None)
def test_dict_roundtrip(values):
    dictionary, codes = comp.dict_encode(values)
    assert comp.dict_decode(dictionary, codes) == values


@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_delta_roundtrip(values):
    assert comp.delta_decode(comp.delta_encode(values)) == values


@given(
    st.lists(
        st.tuples(
            st.one_of(st.integers(min_value=-(2**40), max_value=2**40), st.just(NA)),
            st.one_of(
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.just(NA),
            ),
            st.one_of(st.text(max_size=20), st.just(NA)),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_record_codec_roundtrip(rows):
    codec = RecordCodec([DataType.INT, DataType.FLOAT, DataType.STR])
    for row in rows:
        decoded, _ = codec.decode(codec.encode(row))
        assert decoded == row


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=150,
    )
)
@settings(max_examples=100, deadline=None)
def test_btree_matches_dict_model(operations):
    tree = BPlusTree(order=4)
    model: dict[int, list[int]] = {}
    counter = 0
    for op, key in operations:
        if op == "insert":
            counter += 1
            tree.insert(key, counter)
            model.setdefault(key, []).append(counter)
        else:
            removed = tree.delete(key)
            expected = len(model.pop(key, []))
            assert removed == expected
    for key, values in model.items():
        assert tree.search(key) == values
    assert [k for k, _ in tree.items()] == sorted(
        k for k, vs in model.items() for _ in vs
    )
    assert len(tree) == sum(len(vs) for vs in model.values())


@given(
    st.lists(
        st.one_of(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.just(NA),
        ),
        min_size=1,
        max_size=300,
    ),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_transposed_file_column_roundtrip(values, pool_pages):
    disk = SimulatedDisk(block_size=128)
    pool = BufferPool(disk, capacity=pool_pages)
    tf = TransposedFile(pool, [DataType.FLOAT])
    for v in values:
        tf.append_row((v,))
    assert list(tf.scan_column(0)) == values
    # Point reads agree with the scan at sampled positions.
    for row in range(0, len(values), max(1, len(values) // 7)):
        assert tf.get_value(row, 0) == values[row]
