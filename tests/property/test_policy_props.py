"""Property-based tests for consistency-policy guarantees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.relational.types import DataType
from repro.summary.policies import PeriodicPolicy, TolerantPolicy

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


def make_session(values, policy):
    schema = Schema([measure("x", DataType.FLOAT)])
    relation = Relation("v", schema, [(v,) for v in values])
    from repro.views.view import ConcreteView

    return AnalystSession(
        ManagementDatabase(), ConcreteView("v", relation), policy=policy
    )


@given(
    st.lists(finite, min_size=3, max_size=25),
    st.lists(st.tuples(st.integers(0, 24), finite), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_tolerant_staleness_is_bounded(start, updates, bound):
    """A TOLERANT(k) answer never lags the view by more than k updates:

    either pending_updates <= k, or the served value is freshly exact."""
    session = make_session(start, TolerantPolicy(max_staleness=bound))
    session.compute("mean", "x")
    for index, value in updates:
        session.update_cells("x", [(index % len(start), value)])
        served = session.compute("mean", "x")
        entry = session.view.summary.peek("mean", "x")
        assert entry.pending_updates <= bound
        if entry.pending_updates == 0:
            column = session.view.relation.column("x")
            assert served == pytest.approx(sum(column) / len(column))


@given(
    st.lists(finite, min_size=3, max_size=25),
    st.lists(st.tuples(st.integers(0, 24), finite), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_periodic_incremental_functions_always_exact(start, updates, period):
    """Incrementally maintainable functions stay exact under PERIODIC —

    only expensive regenerating rules batch their refreshes."""
    session = make_session(start, PeriodicPolicy(period=period))
    session.compute("mean", "x")
    for index, value in updates:
        session.update_cells("x", [(index % len(start), value)])
    column = session.view.relation.column("x")
    assert session.compute("mean", "x") == pytest.approx(sum(column) / len(column))
