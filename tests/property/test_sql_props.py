"""Property-based tests for the SQL surface and result encoders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ReproError
from repro.relational.sql import parse
from repro.relational.types import NA
from repro.summary.entries import decode_result, encode_result


@given(st.text(max_size=120))
@settings(max_examples=200, deadline=None)
def test_parser_never_crashes_ungracefully(text):
    """Arbitrary garbage either parses or raises a library error — never

    an uncontrolled exception (the 'errors should never pass silently'
    contract of the query surface)."""
    try:
        parse(text)
    except ReproError:
        pass


identifier = st.from_regex(r"[A-Za-z_][A-Za-z_0-9]{0,10}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "JOIN",
        "ON", "AND", "OR", "NOT", "IN", "BETWEEN", "AS", "DESC", "ASC",
        "DISTINCT", "IS", "NA", "NULL", "HAVING", "COUNT", "SUM", "AVG",
        "MEAN", "MIN", "MAX", "MEDIAN", "STD", "VAR", "WEIGHTED_AVG",
    }
)


@given(
    st.lists(identifier, min_size=1, max_size=4, unique=True),
    identifier,
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=100, deadline=None)
def test_wellformed_selects_parse(columns, table, limit):
    text = f"SELECT {', '.join(columns)} FROM {table} LIMIT {limit}"
    query = parse(text)
    assert query.table == table
    assert [item.name for item in query.select] == columns
    assert query.limit == limit


result_value = st.one_of(
    st.just(NA),
    st.integers(min_value=-(2**50), max_value=2**50),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.lists(
        st.one_of(st.floats(allow_nan=False, allow_infinity=False, width=32), st.just(NA)),
        max_size=30,
    ),
)


@given(result_value)
@settings(max_examples=200, deadline=None)
def test_summary_result_encoding_roundtrip(value):
    decoded = decode_result(encode_result(value))
    if isinstance(value, list):
        assert decoded == value
    elif value is NA:
        assert decoded is NA
    else:
        assert decoded == value
