"""Accuracy-bound suite for the sketch & model family (ISSUE 9).

Each sketch ships a *documented* accuracy contract
(:data:`~repro.incremental.sketches.EPSILON_TDIGEST`,
:data:`~repro.incremental.sketches.EPSILON_HLL`); this suite measures the
contracts against ground truth — sorted-order ranks for the t-digest,
exact distinct counts for HyperLogLog, a chi-square uniformity test for
reservoir sampling, and the numpy-free closed-form normal equations for
the incremental regression — including under insert-then-delete
round-trips and NA-heavy columns.
"""

import bisect
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StatisticsError
from repro.incremental.sketches import (
    EPSILON_HLL,
    EPSILON_TDIGEST,
    HyperLogLog,
    ReservoirSample,
    TDigest,
)
from repro.relational.types import NA, is_na
from repro.stats.models import IncrementalLinearRegression, solve_linear

QUANTILES = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def rank_error(sorted_values, estimate, q):
    """|empirical rank of estimate − q|, the t-digest accuracy metric."""
    n = len(sorted_values)
    lo = bisect.bisect_left(sorted_values, estimate) / n
    hi = bisect.bisect_right(sorted_values, estimate) / n
    if lo <= q <= hi:
        return 0.0
    return min(abs(lo - q), abs(hi - q))


# -- t-digest ----------------------------------------------------------------


class TestTDigestRankError:
    def _check(self, values):
        digest = TDigest()
        digest.absorb(values)
        ordered = sorted(values)
        for q in QUANTILES:
            err = rank_error(ordered, digest.quantile(q), q)
            assert err <= EPSILON_TDIGEST, (q, err)

    def test_uniform(self):
        rng = random.Random(101)
        self._check([rng.uniform(0, 1) for _ in range(20000)])

    def test_heavy_tail(self):
        rng = random.Random(102)
        self._check([rng.lognormvariate(0, 2.0) for _ in range(20000)])

    def test_discrete_clusters(self):
        rng = random.Random(103)
        self._check([float(rng.randint(0, 5)) for _ in range(20000)])

    def test_survives_delete_storm(self):
        """Rank error holds against the *surviving* data after deletes."""
        rng = random.Random(104)
        values = [rng.gauss(0, 10) for _ in range(8000)]
        burst = [rng.gauss(50, 1) for _ in range(2000)]
        digest = TDigest()
        digest.absorb(values)
        for v in burst:
            digest.on_insert(v)
        for v in burst:
            digest.on_delete(v)
        ordered = sorted(values)
        # Deletions against merged centroids are approximate; the digest
        # tracks how many were inexact, and the documented bound still
        # holds with the extra slack they imply.
        slack = digest.approx_deletes / max(1.0, digest.count)
        for q in QUANTILES:
            err = rank_error(ordered, digest.quantile(q), q)
            assert err <= EPSILON_TDIGEST + slack, (q, err, slack)


@given(
    st.lists(
        st.one_of(
            st.floats(-1e3, 1e3, allow_nan=False), st.just(NA)
        ),
        min_size=1,
        max_size=60,
    ),
    st.lists(st.floats(-1e3, 1e3, allow_nan=False), max_size=25),
)
@settings(max_examples=80, deadline=None)
def test_tdigest_round_trip_na_heavy(base, burst):
    """insert-then-delete returns the median to the base answer exactly
    at unit-centroid scale, NAs skipped throughout."""
    digest = TDigest()
    digest.initialize(base)
    reference = TDigest()
    reference.initialize(base)
    for v in burst:
        digest.on_insert(v)
    for v in reversed(burst):
        digest.on_delete(v)
    survivors = [v for v in base if not is_na(v)]
    if not survivors:
        assert is_na(digest.value)
        return
    assert digest.value == pytest.approx(reference.value, rel=1e-9)
    assert digest.value == pytest.approx(statistics.median(survivors))


# -- HyperLogLog -------------------------------------------------------------


class TestHLLRelativeError:
    def test_sparse_mode_exact(self):
        sketch = HyperLogLog()
        sketch.absorb([float(i % 500) for i in range(5000)])
        assert sketch.value == 500

    @pytest.mark.parametrize("cardinality", [5000, 20000, 100000])
    def test_dense_mode_within_epsilon(self, cardinality):
        sketch = HyperLogLog(seed=7)
        sketch.absorb(float(i) for i in range(cardinality))
        error = abs(sketch.value - cardinality) / cardinality
        assert error <= EPSILON_HLL, (cardinality, sketch.value, error)

    def test_merge_preserves_bound(self):
        halves = []
        for offset in (0, 50000):
            part = HyperLogLog(seed=7)
            part.absorb(float(offset + i) for i in range(50000))
            halves.append(part)
        halves[0].merge_partial(halves[1].partial_state())
        error = abs(halves[0].value - 100000) / 100000
        assert error <= EPSILON_HLL


@given(
    st.lists(
        st.one_of(st.integers(0, 100).map(float), st.just(NA)),
        min_size=1,
        max_size=60,
    ),
    st.lists(st.integers(0, 100).map(float), max_size=25),
)
@settings(max_examples=80, deadline=None)
def test_hll_sparse_round_trip_na_heavy(base, burst):
    sketch = HyperLogLog()
    sketch.initialize(base)
    for v in burst:
        sketch.on_insert(v)
    for v in reversed(burst):
        sketch.on_delete(v)
    assert sketch.value == len({v for v in base if not is_na(v)})


# -- reservoir sampling ------------------------------------------------------


def test_reservoir_chi_square_uniform():
    """Inclusion frequency over many seeded runs is uniform across the
    stream (chi-square, 9 dof, p ≈ 0.001 critical value 27.88)."""
    population, k, trials, buckets = 2000, 64, 150, 10
    counts = [0] * buckets
    width = population // buckets
    for trial in range(trials):
        sample = ReservoirSample(k=k, seed=trial)
        sample.initialize(float(i) for i in range(population))
        for value in sample.value:
            counts[int(value) // width] += 1
    expected = trials * k / buckets
    chi2 = sum((c - expected) ** 2 / expected for c in counts)
    assert chi2 < 27.88, (chi2, counts)


@given(
    st.lists(
        st.one_of(st.floats(-100, 100, allow_nan=False), st.just(NA)),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_reservoir_sample_is_subset_na_skipped(values):
    sample = ReservoirSample(k=8, seed=1)
    sample.initialize(values)
    survivors = [v for v in values if not is_na(v)]
    assert len(sample.value) == min(8, len(survivors))
    assert set(sample.value) <= set(survivors)


# -- incremental regression --------------------------------------------------


def closed_form(rows):
    used = [r for r in rows if not any(is_na(v) for v in r)]
    d = len(rows[0])
    gram = [[0.0] * d for _ in range(d)]
    moment = [0.0] * d
    for row in used:
        z = [1.0] + [float(v) for v in row[1:]]
        for i in range(d):
            for j in range(d):
                gram[i][j] += z[i] * z[j]
            moment[i] += z[i] * float(row[0])
    return solve_linear(gram, moment)


row_strategy = st.tuples(
    st.one_of(st.floats(-50, 50, allow_nan=False), st.just(NA)),
    st.one_of(st.floats(-50, 50, allow_nan=False), st.just(NA)),
    st.one_of(st.floats(-50, 50, allow_nan=False), st.just(NA)),
)


@given(
    st.lists(row_strategy, min_size=4, max_size=40),
    st.lists(
        st.tuples(
            st.floats(-50, 50, allow_nan=False),
            st.floats(-50, 50, allow_nan=False),
            st.floats(-50, 50, allow_nan=False),
        ),
        max_size=15,
    ),
)
@settings(max_examples=100, deadline=None)
def test_regression_round_trip_matches_closed_form(base, burst):
    model = IncrementalLinearRegression(k=2)
    model.initialize(base)
    for row in burst:
        model.on_insert(row)
    for row in reversed(burst):
        model.on_delete(row)
    try:
        reference = closed_form(base)
    except StatisticsError:
        with pytest.raises(StatisticsError):
            model.coefficients()
        return
    try:
        coefs = model.coefficients()
    except StatisticsError:
        # Too few complete rows is legitimate; the closed form has no
        # dof guard.  Near-singular burst residue must not slip through.
        assert model.n_used <= model.k + 1
        return
    assert coefs == pytest.approx(reference, rel=1e-6, abs=1e-6)
