"""Property-based tests for system-level invariants: cache consistency

under arbitrary update/undo interleavings, history reversibility, and
relational algebra equivalences."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.relational.expressions import col
from repro.relational.operators import HashJoin, Select, SortMergeJoin
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.relational.types import NA, DataType, is_na
from repro.views.view import ConcreteView

finite = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)


def make_session(values):
    schema = Schema([measure("x", DataType.FLOAT)])
    relation = Relation("v", schema, [(v,) for v in values])
    view = ConcreteView("v", relation)
    return AnalystSession(ManagementDatabase(), view, analyst="p")


action = st.one_of(
    st.tuples(st.just("update"), st.integers(min_value=0, max_value=999), finite),
    st.tuples(st.just("invalidate"), st.integers(min_value=0, max_value=999), st.none()),
    st.tuples(st.just("undo"), st.none(), st.none()),
)


@given(
    st.lists(st.one_of(finite, st.just(NA)), min_size=2, max_size=40),
    st.lists(action, max_size=25),
)
@settings(max_examples=60, deadline=None)
def test_cache_never_drifts_from_batch(start, actions):
    """Whatever interleaving of updates, invalidations, and undos happens,

    cached mean/median/min/max must equal a fresh full recomputation."""
    session = make_session(start)
    for fn in ("mean", "median", "min", "max", "count"):
        session.compute(fn, "x")
    applied = 0
    for kind, index, value in actions:
        if kind == "update":
            session.update_cells("x", [(index % len(start), value)])
            applied += 1
        elif kind == "invalidate":
            session.mark_invalid("x", rows=[index % len(start)])
            applied += 1
        elif kind == "undo" and applied > 0:
            session.undo(1)
            applied -= 1
    column = session.view.relation.column("x")
    clean = [v for v in column if not is_na(v)]
    assert session.compute("count", "x") == len(clean)
    if clean:
        assert session.compute("mean", "x") == pytest.approx(
            statistics.fmean(clean), rel=1e-9, abs=1e-6
        )
        assert session.compute("median", "x") == pytest.approx(
            statistics.median(clean), abs=1e-9
        )
        assert session.compute("min", "x") == min(clean)
        assert session.compute("max", "x") == max(clean)
    else:
        assert is_na(session.compute("mean", "x"))


@given(
    st.lists(st.one_of(finite, st.just(NA)), min_size=1, max_size=30),
    st.lists(st.tuples(st.integers(min_value=0, max_value=29), finite), min_size=1, max_size=15),
)
@settings(max_examples=60, deadline=None)
def test_full_undo_restores_pristine_state(start, updates):
    """Undoing everything returns the data to its original values."""
    session = make_session(start)
    for index, value in updates:
        session.update_cells("x", [(index % len(start), value)])
    session.undo(len(updates))
    restored = [row[0] for row in session.view.relation]
    for original, now in zip(start, restored):
        if is_na(original):
            assert is_na(now)
        else:
            assert now == original
    # The log is empty but the version high-water mark stays: undone
    # versions are never reused for later operations.
    assert session.view.history.operations() == []
    assert session.view.version == len(updates)


@given(
    st.lists(st.tuples(st.integers(0, 8), finite), max_size=30),
    st.lists(st.tuples(st.integers(0, 8), finite), max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_join_algorithms_agree(left_rows, right_rows):
    left = Relation(
        "l",
        Schema([measure("k", DataType.INT), measure("a", DataType.FLOAT)]),
        left_rows,
    )
    right = Relation(
        "r",
        Schema([measure("k2", DataType.INT), measure("b", DataType.FLOAT)]),
        right_rows,
    )
    hash_result = sorted(HashJoin(left, right, ["k"], ["k2"]).rows())
    merge_result = sorted(SortMergeJoin(left, right, ["k"], ["k2"]).rows())
    assert hash_result == merge_result


@given(st.lists(st.one_of(finite, st.just(NA)), max_size=40), finite)
@settings(max_examples=60, deadline=None)
def test_select_partition(values, threshold):
    """select(p) and select(not p) partition the non-NA-comparable rows."""
    relation = Relation(
        "r", Schema([measure("x", DataType.FLOAT)]), [(v,) for v in values]
    )
    predicate = col("x") > threshold
    matching = Select(relation, predicate).rows()
    complement = Select(relation, ~predicate).rows()
    assert len(matching) + len(complement) == len(values)
    assert all(row[0] > threshold for row in matching)
