"""Property-based tests: incremental forms always equal batch recomputation.

This is the core invariant of the paper's architecture — a Summary Database
maintained by finite differencing must never drift from what a full rescan
would produce.
"""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.incremental.aggregates import (
    IncrementalMean,
    IncrementalMinMax,
    IncrementalSum,
    IncrementalVariance,
)
from repro.incremental.differencing import derive_incremental
from repro.incremental.frequency import IncrementalFrequency
from repro.incremental.order_stats import MedianWindow
from repro.relational.types import NA, is_na

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
value_or_na = st.one_of(finite, st.just(NA))


def ops_strategy():
    """A starting column plus a sequence of (index, new value) updates."""
    return st.tuples(
        st.lists(value_or_na, min_size=1, max_size=60),
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=59), value_or_na),
            max_size=40,
        ),
    )


def apply_ops(computation, start, ops):
    work = list(start)
    computation.initialize(work)
    for index, new in ops:
        index %= len(work)
        old = work[index]
        work[index] = new
        computation.on_update(old, new)
    return work


def cleaned(values):
    return [v for v in values if not is_na(v)]


@given(ops_strategy())
@settings(max_examples=150, deadline=None)
def test_mean_equals_batch(data):
    start, ops = data
    work = apply_ops(IncrementalMean(), start, ops)
    computation = IncrementalMean()
    computation.initialize([])  # reuse instance pattern is fine
    final = apply_ops(computation, start, ops)
    clean = cleaned(final)
    if not clean:
        assert is_na(computation.value)
    else:
        assert computation.value == pytest.approx(statistics.fmean(clean), rel=1e-9, abs=1e-6)


@given(ops_strategy())
@settings(max_examples=150, deadline=None)
def test_sum_equals_batch(data):
    start, ops = data
    computation = IncrementalSum()
    final = apply_ops(computation, start, ops)
    clean = cleaned(final)
    if not clean:
        assert is_na(computation.value)
    else:
        assert computation.value == pytest.approx(sum(clean), rel=1e-9, abs=1e-6)


@given(ops_strategy())
@settings(max_examples=100, deadline=None)
def test_variance_equals_batch(data):
    start, ops = data
    computation = IncrementalVariance()
    final = apply_ops(computation, start, ops)
    clean = cleaned(final)
    if len(clean) < 2:
        assert is_na(computation.value)
    else:
        expected = statistics.variance(clean)
        # Welford downdating leaves roundoff residue relative to the largest
        # magnitude ever processed (values later removed included).
        seen = [abs(v) for v in start if not is_na(v)]
        seen += [abs(v) for _, v in ops if not is_na(v)]
        scale = max(seen) if seen else 1.0
        assert computation.value == pytest.approx(
            expected, rel=1e-7, abs=max(1e-4, 1e-9 * scale * scale)
        )


@given(ops_strategy())
@settings(max_examples=150, deadline=None)
def test_minmax_equals_batch(data):
    start, ops = data
    computation = IncrementalMinMax()
    final = apply_ops(computation, start, ops)
    clean = cleaned(final)
    if not clean:
        assert is_na(computation.min) and is_na(computation.max)
    else:
        assert computation.min == min(clean)
        assert computation.max == max(clean)


@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=60),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=59), st.integers(min_value=0, max_value=9)
        ),
        max_size=40,
    ),
)
@settings(max_examples=150, deadline=None)
def test_frequency_equals_batch(start, ops):
    from collections import Counter

    computation = IncrementalFrequency()
    final = apply_ops(computation, start, ops)
    counts = Counter(final)
    assert computation.unique_count == len(counts)
    assert computation.frequency_of(5) == counts.get(5, 0)
    if counts:
        assert computation.frequency_of(computation.mode) == max(counts.values())


@given(ops_strategy())
@settings(max_examples=75, deadline=None)
def test_median_window_equals_batch(data):
    start, ops = data
    work = list(start)
    window = MedianWindow(lambda: work, window_size=16)
    window.value  # initialize
    for index, new in ops:
        index %= len(work)
        old = work[index]
        work[index] = new
        window.on_update(old, new)
    clean = cleaned(work)
    if not clean:
        assert is_na(window.value)
    else:
        assert window.value == pytest.approx(statistics.median(clean), abs=1e-9)


@given(ops_strategy())
@settings(max_examples=75, deadline=None)
def test_algebraic_std_equals_batch(data):
    start, ops = data
    computation = derive_incremental("std")
    final = apply_ops(computation, start, ops)
    clean = cleaned(final)
    if len(clean) < 2:
        # Either NA or numerically zero-ish when n=1 slips through.
        value = computation.value
        assert is_na(value) or abs(value) < 1e-6
    else:
        expected = statistics.stdev(clean)
        # Cancellation error in the sumsq identity is relative to the
        # largest magnitude the computation ever processed, including
        # values later replaced.
        seen = [abs(v) for v in start if not is_na(v)]
        seen += [abs(v) for _, v in ops if not is_na(v)]
        scale = max(seen) if seen else 1.0
        value = computation.value
        if expected < 1e-6 * scale:
            # The algebraic sumsq identity cancels catastrophically when
            # the spread is tiny relative to the magnitude; it may report
            # NA (negative residue) or a small number.  This is exactly why
            # the hand-built Welford form exists (IncrementalVariance).
            assert is_na(value) or abs(value) <= 1e-3 * scale
        else:
            assert value == pytest.approx(expected, rel=1e-5, abs=1e-3)
