"""Tests for histogram construction."""

import pytest

from repro.core.errors import StatisticsError
from repro.relational.types import NA
from repro.stats.histogram import (
    Histogram,
    build_histogram,
    freedman_diaconis_bins,
    sturges_bins,
)


class TestBinRules:
    def test_sturges(self):
        assert sturges_bins(1) == 1
        assert sturges_bins(1024) == 11

    def test_fd_positive(self):
        values = [float(i) for i in range(100)]
        assert freedman_diaconis_bins(values) >= 1

    def test_fd_degenerate_falls_back(self):
        assert freedman_diaconis_bins([5.0] * 50) == sturges_bins(50)
        assert freedman_diaconis_bins([1.0]) == 1


class TestBuild:
    def test_counts_sum(self):
        values = [float(i) for i in range(100)]
        h = build_histogram(values, bins=10)
        assert h.total == 100
        assert h.counts == (10,) * 10

    def test_na_skipped(self):
        h = build_histogram([1.0, NA, 2.0], bins=2)
        assert h.total == 2

    def test_supplied_range(self):
        """Cached min/max from the Summary Database (SS3.1)."""
        values = [1.0, 2.0, 3.0]
        h = build_histogram(values, bins=4, lo=0.0, hi=4.0)
        assert h.edges[0] == 0.0 and h.edges[-1] == 4.0

    def test_values_outside_supplied_range_skipped(self):
        h = build_histogram([1.0, 50.0], bins=2, lo=0.0, hi=10.0)
        assert h.total == 1

    def test_constant_column(self):
        h = build_histogram([7.0] * 10)
        assert h.total == 10

    def test_empty_rejected(self):
        with pytest.raises(StatisticsError):
            build_histogram([NA])

    def test_bad_args(self):
        with pytest.raises(StatisticsError):
            build_histogram([1.0], bins=0)
        with pytest.raises(StatisticsError):
            build_histogram([1.0], lo=5.0, hi=1.0)
        with pytest.raises(StatisticsError):
            build_histogram([1.0], rule="magic")

    def test_fd_rule(self):
        values = [float(i % 37) for i in range(500)]
        h = build_histogram(values, rule="fd")
        assert h.total == 500


class TestHistogramObject:
    def test_bucket_of(self):
        h = Histogram(edges=(0.0, 1.0, 2.0), counts=(3, 4))
        assert h.bucket_of(0.5) == 0
        assert h.bucket_of(1.5) == 1
        assert h.bucket_of(2.0) == 1  # top edge closed
        assert h.bucket_of(-1.0) is None

    def test_render(self):
        h = Histogram(edges=(0.0, 1.0, 2.0), counts=(3, 1))
        text = h.render(width=10)
        assert "##########" in text
        assert text.count("\n") == 1
