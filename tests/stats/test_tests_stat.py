"""Tests for the hypothesis tests, cross-checked against scipy."""

import random

import numpy as np
import pytest
import scipy.stats as ss

from repro.core.errors import StatisticsError
from repro.stats.crosstab import CrossTab, crosstab
from repro.stats.tests_stat import (
    chi_squared_gof,
    chi_squared_independence,
    ks_test,
    ks_test_2sample,
    normal_cdf,
    two_sample_t,
    uniform_cdf,
)


class TestChiSquared:
    def test_independence_matches_scipy(self):
        obs = np.array([[30.0, 20.0, 10.0], [20.0, 30.0, 40.0]])
        table = CrossTab(["a", "b"], ["x", "y", "z"], obs)
        mine = chi_squared_independence(table)
        stat, p, dof, _ = ss.chi2_contingency(obs, correction=False)
        assert mine.statistic == pytest.approx(stat)
        assert mine.p_value == pytest.approx(p)
        assert mine.dof == dof

    def test_independent_data_not_significant(self):
        rng = random.Random(0)
        pairs = [(rng.randrange(2), rng.randrange(3)) for _ in range(2000)]
        result = chi_squared_independence(crosstab(pairs=pairs))
        assert not result.significant(0.001)

    def test_dependent_data_significant(self):
        """The paper's question: does longevity depend on race?  Here a

        planted dependence must be detected."""
        rng = random.Random(1)
        pairs = []
        for _ in range(2000):
            group = rng.randrange(2)
            outcome = rng.random() < (0.3 if group == 0 else 0.6)
            pairs.append((group, int(outcome)))
        result = chi_squared_independence(crosstab(pairs=pairs))
        assert result.significant(1e-6)

    def test_needs_2x2(self):
        table = CrossTab(["a"], ["x", "y"], np.array([[1.0, 2.0]]))
        with pytest.raises(StatisticsError):
            chi_squared_independence(table)

    def test_gof_matches_scipy(self):
        observed = [18, 22, 19, 25, 16]
        expected = [20.0] * 5
        mine = chi_squared_gof(observed, expected)
        stat, p = ss.chisquare(observed, expected)
        assert mine.statistic == pytest.approx(stat)
        assert mine.p_value == pytest.approx(p)

    def test_gof_validation(self):
        with pytest.raises(StatisticsError):
            chi_squared_gof([1, 2], [1.0])
        with pytest.raises(StatisticsError):
            chi_squared_gof([1], [0.0])
        with pytest.raises(StatisticsError):
            chi_squared_gof([1, 2], [1.0, 2.0], estimated_params=5)


class TestKS:
    def test_one_sample_matches_scipy(self):
        rng = random.Random(2)
        values = [rng.gauss(0, 1) for _ in range(400)]
        mine = ks_test(values, normal_cdf(0, 1))
        reference = ss.kstest(values, "norm")
        assert mine.statistic == pytest.approx(reference.statistic)
        assert mine.p_value == pytest.approx(reference.pvalue, abs=0.02)

    def test_detects_wrong_distribution(self):
        rng = random.Random(3)
        values = [rng.uniform(0, 1) for _ in range(500)]
        result = ks_test(values, normal_cdf(0, 1))
        assert result.significant(1e-6)

    def test_uniform_cdf_fits_uniform(self):
        rng = random.Random(4)
        values = [rng.uniform(2, 5) for _ in range(500)]
        result = ks_test(values, uniform_cdf(2, 5))
        assert not result.significant(0.001)

    def test_two_sample(self):
        rng = random.Random(5)
        a = [rng.gauss(0, 1) for _ in range(300)]
        b = [rng.gauss(0, 1) for _ in range(300)]
        c = [rng.gauss(3, 1) for _ in range(300)]
        assert not ks_test_2sample(a, b).significant(0.001)
        assert ks_test_2sample(a, c).significant(1e-9)

    def test_empty_rejected(self):
        with pytest.raises(StatisticsError):
            ks_test([], normal_cdf())
        with pytest.raises(StatisticsError):
            ks_test_2sample([], [1.0])

    def test_cdf_validation(self):
        with pytest.raises(StatisticsError):
            normal_cdf(0, 0)
        with pytest.raises(StatisticsError):
            uniform_cdf(5, 2)


class TestTTest:
    def test_matches_scipy(self):
        rng = random.Random(6)
        a = [rng.gauss(0, 1) for _ in range(100)]
        b = [rng.gauss(0.5, 2) for _ in range(80)]
        mine = two_sample_t(a, b)
        reference = ss.ttest_ind(a, b, equal_var=False)
        assert mine.statistic == pytest.approx(reference.statistic)
        assert mine.p_value == pytest.approx(reference.pvalue, rel=1e-6)

    def test_validation(self):
        with pytest.raises(StatisticsError):
            two_sample_t([1.0], [1.0, 2.0])
        with pytest.raises(StatisticsError):
            two_sample_t([1.0, 1.0], [2.0, 2.0])

    def test_result_str(self):
        result = two_sample_t([1.0, 2.0, 3.0], [4.0, 5.0, 6.5])
        assert "welch_t" in str(result)
