"""Tests for correlation measures, cross-checked against scipy."""

import random

import pytest
import scipy.stats as ss

from repro.core.errors import StatisticsError
from repro.relational.types import NA, is_na
from repro.stats.correlation import covariance, pearson, spearman


class TestPearson:
    def test_matches_scipy(self):
        rng = random.Random(0)
        a = [rng.random() for _ in range(200)]
        b = [x * 2 + rng.gauss(0, 0.2) for x in a]
        assert pearson(a, b) == pytest.approx(ss.pearsonr(a, b).statistic)

    def test_perfect(self):
        a = [1.0, 2.0, 3.0]
        assert pearson(a, [2.0, 4.0, 6.0]) == pytest.approx(1.0)
        assert pearson(a, [3.0, 2.0, 1.0]) == pytest.approx(-1.0)

    def test_na_pairs_dropped(self):
        a = [1.0, 2.0, NA, 3.0]
        b = [2.0, 4.0, 5.0, 6.0]
        assert pearson(a, b) == pytest.approx(1.0)

    def test_degenerate_na(self):
        assert is_na(pearson([1.0], [2.0]))
        assert is_na(pearson([1.0, 1.0], [2.0, 3.0]))  # zero variance

    def test_length_mismatch(self):
        with pytest.raises(StatisticsError):
            pearson([1.0], [1.0, 2.0])


class TestSpearman:
    def test_matches_scipy(self):
        rng = random.Random(1)
        a = [rng.random() for _ in range(150)]
        b = [x ** 3 + rng.gauss(0, 0.01) for x in a]
        assert spearman(a, b) == pytest.approx(ss.spearmanr(a, b).statistic)

    def test_monotone_is_one(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [1.0, 10.0, 100.0, 1000.0]
        assert spearman(a, b) == pytest.approx(1.0)

    def test_ties_match_scipy(self):
        a = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        b = [1.0, 2.0, 3.0, 4.0, 4.0, 5.0]
        assert spearman(a, b) == pytest.approx(ss.spearmanr(a, b).statistic)


class TestCovariance:
    def test_matches_numpy(self):
        import numpy as np

        rng = random.Random(2)
        a = [rng.random() for _ in range(100)]
        b = [rng.random() for _ in range(100)]
        assert covariance(a, b) == pytest.approx(float(np.cov(a, b)[0, 1]))

    def test_ddof_zero(self):
        assert covariance([1.0, 2.0], [1.0, 2.0], ddof=0) == pytest.approx(0.25)

    def test_degenerate(self):
        assert is_na(covariance([1.0], [1.0]))
