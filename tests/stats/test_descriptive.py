"""Tests for descriptive statistics."""

import numpy as np
import pytest

from repro.core.errors import StatisticsError
from repro.relational.types import NA, is_na
from repro.stats import descriptive as d

DATA = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0]
WITH_NA = [4.0, NA, 8.0, 15.0, NA, 16.0, 23.0, 42.0]


class TestBasics:
    def test_clean(self):
        assert d.clean(WITH_NA) == DATA

    def test_min_max(self):
        assert d.vmin(WITH_NA) == 4.0
        assert d.vmax(WITH_NA) == 42.0
        assert is_na(d.vmin([]))
        assert is_na(d.vmax([NA, NA]))

    def test_sum_mean(self):
        assert d.vsum(WITH_NA) == sum(DATA)
        assert d.mean(WITH_NA) == pytest.approx(np.mean(DATA))
        assert is_na(d.mean([]))

    def test_variance_std(self):
        assert d.variance(DATA) == pytest.approx(np.var(DATA, ddof=1))
        assert d.std(DATA) == pytest.approx(np.std(DATA, ddof=1))
        assert d.variance(DATA, ddof=0) == pytest.approx(np.var(DATA))
        assert is_na(d.variance([1.0]))

    def test_value_range(self):
        assert d.value_range(WITH_NA) == (4.0, 42.0)
        assert d.value_range([]) == (NA, NA)


class TestQuantiles:
    @pytest.mark.parametrize("q", [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0])
    def test_matches_numpy(self, q):
        assert d.quantile(DATA, q) == pytest.approx(float(np.quantile(DATA, q)))

    def test_median(self):
        assert d.median([3, 1, 2]) == 2
        assert d.median([1, 2, 3, 4]) == 2.5
        assert is_na(d.median([NA]))

    def test_quartiles_iqr(self):
        q1, med, q3 = d.quartiles(DATA)
        assert med == d.median(DATA)
        assert d.iqr(DATA) == pytest.approx(q3 - q1)

    def test_invalid_q(self):
        with pytest.raises(StatisticsError):
            d.quantile(DATA, 1.5)

    def test_empty_na(self):
        assert is_na(d.quantile([], 0.5))


class TestTrimmedMean:
    def test_basic(self):
        values = list(range(101))
        # Trim to [5th, 95th] percentile: removes 0-4 and 96-100.
        got = d.trimmed_mean(values, 0.05, 0.95)
        assert got == pytest.approx(np.mean(list(range(5, 96))))

    def test_with_cached_bounds(self):
        """The SS3.1 scenario: bounds come from the Summary Database."""
        values = list(range(101))
        lo = d.quantile(values, 0.05)
        hi = d.quantile(values, 0.95)
        assert d.trimmed_mean(values, lo_value=lo, hi_value=hi) == d.trimmed_mean(values)

    def test_empty(self):
        assert is_na(d.trimmed_mean([]))


class TestCategoricalStats:
    def test_mode(self):
        assert d.mode([1, 2, 2, 3]) == 2
        assert is_na(d.mode([NA]))

    def test_unique_count(self):
        assert d.unique_count([1, 1, 2, NA]) == 2

    def test_na_count(self):
        assert d.na_count(WITH_NA) == 2

    def test_mad(self):
        assert d.mad([1, 1, 2, 2, 4, 6, 9]) == 1
        assert is_na(d.mad([]))


class TestSummarize:
    def test_block_fields(self):
        block = d.summarize(WITH_NA)
        assert block["count"] == 6
        assert block["na_count"] == 2
        assert block["min"] == 4.0
        assert block["max"] == 42.0
        assert block["median"] == d.median(DATA)
        assert block["unique_count"] == 6

    def test_all_na(self):
        block = d.summarize([NA, NA])
        assert block["count"] == 0
        assert is_na(block["mean"])
