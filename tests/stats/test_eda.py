"""Tests for the cache-aware exploratory analyzer."""

import pytest

from repro.core.errors import StatisticsError
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.relational.types import is_na
from repro.stats.eda import ExploratoryAnalyzer
from repro.views.view import ConcreteView
from repro.workloads.census import generate_microdata


@pytest.fixture()
def eda():
    relation = generate_microdata(2000, seed=44, bad_value_rate=0.01)
    session = AnalystSession(ManagementDatabase(), ConcreteView("v", relation))
    return ExploratoryAnalyzer(session)


class TestDistributionSummary:
    def test_fields_present(self, eda):
        block = eda.distribution_summary("INCOME")
        assert set(block) == {"min", "max", "mean", "std", "median", "q1", "q3", "unique"}
        assert block["min"] <= block["q1"] <= block["median"] <= block["q3"] <= block["max"]

    def test_everything_cached(self, eda):
        eda.distribution_summary("AGE")
        scanned = eda.session.stats.rows_scanned
        eda.distribution_summary("AGE")
        assert eda.session.stats.rows_scanned == scanned

    def test_overview(self, eda):
        blocks = eda.overview(["AGE", "INCOME"])
        assert set(blocks) == {"AGE", "INCOME"}


class TestChecksAndOutliers:
    def test_check_range_finds_planted_bad_values(self, eda):
        result = eda.check_range("AGE", 0, 120)
        assert result.suspicious_count > 0

    def test_suggest_outliers_uses_cached_stats(self, eda):
        eda.session.compute("mean", "INCOME")
        eda.session.compute("std", "INCOME")
        scanned = eda.session.stats.rows_scanned
        sweep = eda.suggest_outliers("INCOME", k=6.0)
        # One pass for the sweep itself, none for mean/std.
        assert eda.session.stats.rows_scanned == scanned
        assert sweep.outside_count >= 0

    def test_suggest_outliers_empty_column_rejected(self, eda):
        session = eda.session
        session.mark_invalid("HOURS_WORKED", rows=list(range(len(session.view))))
        with pytest.raises(StatisticsError):
            eda.suggest_outliers("HOURS_WORKED")


class TestHistogramAndTrimmedMean:
    def test_histogram_uses_cached_range(self, eda):
        eda.session.compute("min", "AGE")
        eda.session.compute("max", "AGE")
        scanned = eda.session.stats.rows_scanned
        histogram = eda.histogram("AGE", bins=8)
        assert histogram.bins == 8
        assert eda.session.stats.rows_scanned == scanned  # min/max from cache

    def test_trimmed_mean_matches_direct(self, eda):
        from repro.stats.descriptive import trimmed_mean

        got = eda.trimmed_mean("INCOME", 0.05, 0.95)
        want = trimmed_mean(eda.session.view.relation.column("INCOME"), 0.05, 0.95)
        assert got == pytest.approx(want)
