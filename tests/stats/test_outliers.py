"""Tests for data checking: range checks, sigma rule, invalidation."""

import pytest

from repro.core.errors import StatisticsError
from repro.relational.types import NA, is_na
from repro.stats.outliers import (
    mark_invalid,
    pair_relationship_check,
    range_check,
    sigma_rule,
)


class TestRangeCheck:
    def test_finds_out_of_range(self):
        """The paper's example: a person's age recorded as 1,000."""
        ages = [25, 40, 1000, 33, -5]
        result = range_check(ages, 0, 120)
        assert result.suspicious == (2, 4)
        assert result.suspicious_count == 2
        assert result.checked == 5

    def test_na_not_suspicious(self):
        result = range_check([25, NA, 30], 0, 120)
        assert result.suspicious == ()
        assert result.na_count == 1
        assert result.checked == 2

    def test_boundaries_inclusive(self):
        result = range_check([0, 120], 0, 120)
        assert result.suspicious == ()

    def test_invalid_range(self):
        with pytest.raises(StatisticsError):
            range_check([1], 10, 0)


class TestSigmaRule:
    def test_counts_outside(self):
        values = [0.0] * 98 + [100.0, -100.0]
        result = sigma_rule(values, 3.0)
        assert result.outside_count == 2
        assert result.outside_unique == 2
        assert set(result.indices) == {98, 99}

    def test_cached_mean_std_used(self):
        """SS3.1: the analyst passes cached M and SD, skipping a pass."""
        values = [1.0, 2.0, 3.0]
        result = sigma_rule(values, 2.0, mean=0.0, std=1.0)
        assert result.mean == 0.0 and result.std == 1.0
        assert result.outside_count == 1  # only 3.0 is beyond 0 +- 2

    def test_unique_vs_total(self):
        values = [0.0] * 50 + [99.0, 99.0]
        result = sigma_rule(values, 3.0)
        assert result.outside_count == 2
        assert result.outside_unique == 1

    def test_validation(self):
        with pytest.raises(StatisticsError):
            sigma_rule([1.0], 0.0)
        with pytest.raises(StatisticsError):
            sigma_rule([NA], 2.0)


class TestMarkInvalid:
    def test_marks_na(self):
        out = mark_invalid([1, 2, 3], [1])
        assert out == [1, NA, 3]

    def test_original_untouched(self):
        values = [1, 2]
        mark_invalid(values, [0])
        assert values == [1, 2]

    def test_bad_index(self):
        with pytest.raises(StatisticsError):
            mark_invalid([1], [5])


class TestPairRelationship:
    def test_finds_violations(self):
        """SS2.2: known relationships between pairs of values."""
        ages = [30, 10, 50]
        years_worked = [10, 20, 5]  # a 10-year-old with 20 years worked
        bad = pair_relationship_check(
            ages, years_worked, lambda age, worked: worked <= max(0, age - 14)
        )
        assert bad == [1]

    def test_na_skipped(self):
        bad = pair_relationship_check([NA, 1], [1, 1], lambda a, b: a >= b)
        assert bad == []

    def test_length_mismatch(self):
        with pytest.raises(StatisticsError):
            pair_relationship_check([1], [1, 2], lambda a, b: True)
