"""Tests for OLS regression and residuals."""

import random

import pytest

from repro.core.errors import StatisticsError
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.relational.types import NA, is_na
from repro.stats.regression import fit_ols, residual_computer, residuals


def linear_relation(n=200, noise=0.0, seed=0):
    rng = random.Random(seed)
    schema = Schema([measure("x1"), measure("x2"), measure("y")])
    rows = []
    for _ in range(n):
        x1 = rng.uniform(0, 10)
        x2 = rng.uniform(-5, 5)
        y = 2.0 + 3.0 * x1 - 1.5 * x2 + rng.gauss(0, noise)
        rows.append((x1, x2, y))
    return Relation("r", schema, rows)


class TestFit:
    def test_exact_recovery(self):
        model = fit_ols(linear_relation(), "y", ["x1", "x2"])
        assert model.coefficients[0] == pytest.approx(2.0, abs=1e-9)
        assert model.coefficients[1] == pytest.approx(3.0, abs=1e-9)
        assert model.coefficients[2] == pytest.approx(-1.5, abs=1e-9)
        assert model.r_squared == pytest.approx(1.0)

    def test_noisy_fit(self):
        model = fit_ols(linear_relation(noise=1.0, seed=1), "y", ["x1", "x2"])
        assert model.coefficients[1] == pytest.approx(3.0, abs=0.2)
        assert 0.9 < model.r_squared < 1.0
        assert model.residual_std == pytest.approx(1.0, abs=0.2)

    def test_na_rows_skipped(self):
        rel = linear_relation(n=50)
        rel.insert((NA, 1.0, 2.0), validate=False)
        model = fit_ols(rel, "y", ["x1", "x2"])
        assert model.n_used == 50

    def test_too_few_rows_rejected(self):
        schema = Schema([measure("x"), measure("y")])
        rel = Relation("r", schema, [(1.0, 2.0), (2.0, 3.0)])
        with pytest.raises(StatisticsError, match="complete rows"):
            fit_ols(rel, "y", ["x"])

    def test_rank_deficient_rejected(self):
        schema = Schema([measure("x"), measure("x2"), measure("y")])
        rows = [(float(i), 2.0 * i, float(i)) for i in range(10)]
        rel = Relation("r", schema, rows)
        with pytest.raises(StatisticsError, match="rank"):
            fit_ols(rel, "y", ["x", "x2"])

    def test_needs_predictors(self):
        with pytest.raises(StatisticsError):
            fit_ols(linear_relation(), "y", [])

    def test_predict_and_str(self):
        model = fit_ols(linear_relation(), "y", ["x1", "x2"])
        assert model.predict_row([1.0, 1.0]) == pytest.approx(3.5)
        assert "R^2" in str(model)


class TestResiduals:
    def test_residuals_sum_to_zero(self):
        rel = linear_relation(noise=2.0, seed=3)
        model = fit_ols(rel, "y", ["x1", "x2"])
        res = residuals(rel, model)
        assert sum(res) == pytest.approx(0.0, abs=1e-6)

    def test_na_rows_get_na_residual(self):
        rel = linear_relation(n=20)
        rel.insert((NA, 1.0, 2.0), validate=False)
        model = fit_ols(rel, "y", ["x1", "x2"])
        res = residuals(rel, model)
        assert is_na(res[-1])
        assert len(res) == 21

    def test_residual_computer_refits(self):
        """SS3.2: updating one value regenerates the vector because the

        model itself changes."""
        rel = linear_relation(n=50)
        compute = residual_computer("y", ["x1", "x2"])
        before = compute(rel)
        rel.set_value(0, "y", 9_999.0)
        after = compute(rel)
        # Every residual changed, not just row 0's.
        changed = sum(1 for b, a in zip(before[1:], after[1:]) if abs(b - a) > 1e-9)
        assert changed > 40
