"""Tests for sampling."""

import random

import pytest

from repro.core.errors import SamplingError
from repro.relational.types import NA
from repro.stats.sampling import (
    estimate_mean,
    estimate_proportion,
    reservoir_sample,
    sample_column,
    sample_indices,
    sample_relation,
    systematic_sample,
)
from repro.workloads.census import generate_microdata


class TestSampleIndices:
    def test_size_and_range(self):
        indices = sample_indices(1000, 0.1, seed=1)
        assert len(indices) == 100
        assert all(0 <= i < 1000 for i in indices)
        assert indices == sorted(indices)

    def test_deterministic(self):
        assert sample_indices(100, 0.2, seed=5) == sample_indices(100, 0.2, seed=5)
        assert sample_indices(100, 0.2, seed=5) != sample_indices(100, 0.2, seed=6)

    def test_full_fraction(self):
        assert sample_indices(10, 1.0) == list(range(10))

    def test_at_least_one(self):
        assert len(sample_indices(1000, 0.0001)) == 1

    def test_validation(self):
        with pytest.raises(SamplingError):
            sample_indices(10, 0.0)
        with pytest.raises(SamplingError):
            sample_indices(10, 1.5)
        with pytest.raises(SamplingError):
            sample_indices(-1, 0.5)

    def test_empty(self):
        assert sample_indices(0, 0.5) == []


class TestSampleRelationColumn:
    def test_relation_sample(self):
        rel = generate_microdata(500, seed=1)
        sample = sample_relation(rel, 0.1, seed=2)
        assert len(sample) == 50
        assert sample.schema == rel.schema

    def test_column_sample(self):
        values = list(range(100))
        got = sample_column(values, 0.2, seed=3)
        assert len(got) == 20
        assert all(v in values for v in got)


class TestReservoir:
    def test_size(self):
        got = reservoir_sample(iter(range(10_000)), 50, seed=4)
        assert len(got) == 50

    def test_short_stream(self):
        assert sorted(reservoir_sample(iter(range(5)), 10)) == list(range(5))

    def test_roughly_uniform(self):
        hits = [0] * 10
        for seed in range(300):
            for v in reservoir_sample(iter(range(10)), 3, seed=seed):
                hits[v] += 1
        assert max(hits) < 2.0 * min(hits)

    def test_validation(self):
        with pytest.raises(SamplingError):
            reservoir_sample(iter([]), 0)


class TestSystematic:
    def test_every_kth(self):
        assert systematic_sample(list(range(10)), 3) == [0, 3, 6, 9]
        assert systematic_sample(list(range(10)), 3, offset=1) == [1, 4, 7]

    def test_validation(self):
        with pytest.raises(SamplingError):
            systematic_sample([1], 0)
        with pytest.raises(SamplingError):
            systematic_sample([1], 2, offset=2)


class TestEstimates:
    def test_mean_estimate_covers_truth(self):
        rng = random.Random(7)
        population = [rng.gauss(50, 10) for _ in range(100_000)]
        sample = sample_column(population, 0.01, seed=8)
        estimate = estimate_mean(sample)
        lo, hi = estimate.confidence_interval(z=3.0)
        true_mean = sum(population) / len(population)
        assert lo < true_mean < hi

    def test_mean_estimate_na_skipped(self):
        est = estimate_mean([1.0, NA, 3.0])
        assert est.estimate == 2.0 and est.sample_size == 2

    def test_single_value_infinite_se(self):
        assert estimate_mean([5.0]).standard_error == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(SamplingError):
            estimate_mean([NA])

    def test_proportion(self):
        est = estimate_proportion([1, 2, 3, 4], lambda v: v > 2)
        assert est.estimate == 0.5
        assert est.standard_error > 0
