"""Tests for incremental model fits as first-class summary entries.

ISSUE 9: an OLS fit registered under ``("ols_model", (y, x1, ...))``
with a live :class:`IncrementalLinearRegression` maintainer must stay
warm under cell updates (row-wise replay through the propagator), go
stale on anything it cannot replay, and never serve a silently wrong
fit.
"""

import random

import pytest

from repro.core.errors import StatisticsError
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.relational.types import NA
from repro.stats.models import IncrementalLinearRegression, solve_linear
from repro.stats.regression import fit_ols
from repro.summary.policies import InvalidatePolicy
from repro.views.view import ConcreteView


def linear_rows(n=60, noise=0.5, seed=3):
    rng = random.Random(seed)
    rows = []
    for _ in range(n):
        x1 = rng.uniform(0, 10)
        x2 = rng.uniform(-5, 5)
        y = 1.5 + 2.0 * x1 - 0.75 * x2 + rng.gauss(0, noise)
        rows.append((y, x1, x2))
    return rows


def closed_form(rows):
    """Reference fit via the raw (uncentered) normal equations."""
    used = [r for r in rows if not any(v is NA for v in r)]
    k = len(used[0]) - 1
    d = k + 1
    gram = [[0.0] * d for _ in range(d)]
    moment = [0.0] * d
    for row in used:
        z = [1.0] + [float(v) for v in row[1:]]
        for i in range(d):
            for j in range(d):
                gram[i][j] += z[i] * z[j]
            moment[i] += z[i] * float(row[0])
    return solve_linear(gram, moment)


class TestIncrementalRegression:
    def test_matches_closed_form(self):
        rows = linear_rows()
        model = IncrementalLinearRegression(k=2)
        model.initialize(rows)
        reference = closed_form(rows)
        assert model.coefficients() == pytest.approx(reference, rel=1e-9)

    def test_mutations_equal_fresh_fit(self):
        rows = linear_rows(n=40, seed=7)
        model = IncrementalLinearRegression(k=2)
        model.initialize(rows)
        model.on_insert((5.0, 2.0, 1.0))
        model.on_delete(rows[3])
        model.on_update(rows[10], (rows[10][0] + 1.0, *rows[10][1:]))
        survivors = [r for i, r in enumerate(rows) if i not in (3, 10)]
        survivors += [(5.0, 2.0, 1.0), (rows[10][0] + 1.0, *rows[10][1:])]
        fresh = IncrementalLinearRegression(k=2)
        fresh.initialize(survivors)
        assert model.coefficients() == pytest.approx(
            fresh.coefficients(), rel=1e-8
        )

    def test_na_rows_skipped_and_update_to_na_removes(self):
        rows = linear_rows(n=30, seed=9)
        model = IncrementalLinearRegression(k=2)
        model.initialize(rows + [(NA, 1.0, 2.0)])
        assert model.n_used == 30
        model.on_update(rows[0], (rows[0][0], NA, rows[0][2]))
        assert model.n_used == 29

    def test_merge_partial_equals_whole(self):
        rows = linear_rows(n=50, seed=11)
        whole = IncrementalLinearRegression(k=2)
        whole.initialize(rows)
        left = IncrementalLinearRegression(k=2)
        left.initialize(rows[:23])
        right = IncrementalLinearRegression(k=2)
        right.initialize(rows[23:])
        left.merge_partial(right.partial_state())
        assert left.value == pytest.approx(whole.value, rel=1e-9)

    def test_merge_rejects_mismatched_k(self):
        a = IncrementalLinearRegression(k=2)
        b = IncrementalLinearRegression(k=3)
        with pytest.raises(StatisticsError, match="merge"):
            a.merge_partial(b.partial_state())

    def test_state_round_trip(self):
        rows = linear_rows(n=25, seed=13)
        model = IncrementalLinearRegression(k=2)
        model.initialize(rows)
        clone = IncrementalLinearRegression.from_state(model.to_state())
        assert clone.value == pytest.approx(model.value, rel=1e-12)

    def test_fit_ols_equivalence(self):
        rows = linear_rows(n=80, seed=17)
        schema = Schema([measure("y"), measure("x1"), measure("x2")])
        relation = Relation("r", schema, rows)
        via_relation = fit_ols(relation, "y", ["x1", "x2"])
        direct = IncrementalLinearRegression(k=2)
        direct.initialize(rows)
        assert list(via_relation.coefficients) == pytest.approx(
            direct.coefficients(), rel=1e-12
        )


def model_session(policy=None, rows=None):
    rows = rows if rows is not None else linear_rows()
    schema = Schema([measure("y"), measure("x1"), measure("x2")])
    relation = Relation("r", schema, rows)
    view = ConcreteView("study", relation)
    return AnalystSession(
        ManagementDatabase(), view, analyst="bates", policy=policy
    )


def refit_reference(session):
    return fit_ols(session.view.relation, "y", ["x1", "x2"])


class TestSessionFitModel:
    def test_miss_then_hit(self, monkeypatch=None):
        session = model_session()
        first = session.fit_model("y", ["x1", "x2"])
        scanned = session.stats.rows_scanned
        second = session.fit_model("y", ["x1", "x2"])
        assert session.stats.rows_scanned == scanned  # hit: no rescan
        assert list(first.coefficients) == list(second.coefficients)
        entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
        assert entry is not None
        assert entry.kind == "model"
        assert entry.maintainer is not None

    def test_cell_update_keeps_model_warm(self):
        session = model_session()
        session.fit_model("y", ["x1", "x2"])
        entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
        # Update a predictor (secondary attribute) and the response
        # (primary attribute): both propagation branches must replay
        # row-wise instead of invalidating.
        report = session.update_cells("x1", [(4, 9.25), (7, 0.5)])
        assert report.incremental_updates >= 1
        assert not entry.stale
        report = session.update_cells("y", [(2, 42.0)])
        assert report.incremental_updates >= 1
        assert not entry.stale
        scanned = session.stats.rows_scanned
        warm = session.fit_model("y", ["x1", "x2"])
        assert session.stats.rows_scanned == scanned  # still a cache hit
        reference = refit_reference(session)
        assert list(warm.coefficients) == pytest.approx(
            list(reference.coefficients), rel=1e-8
        )
        assert warm.n_used == reference.n_used

    def test_update_to_na_keeps_model_warm_and_exact(self):
        session = model_session()
        before = session.fit_model("y", ["x1", "x2"])
        session.update_cells("x2", [(5, NA)])
        entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
        assert not entry.stale
        warm = session.fit_model("y", ["x1", "x2"])
        assert warm.n_used == before.n_used - 1
        reference = refit_reference(session)
        assert list(warm.coefficients) == pytest.approx(
            list(reference.coefficients), rel=1e-8
        )

    def test_predicate_update_keeps_model_warm(self):
        from repro.relational.expressions import col

        session = model_session()
        session.fit_model("y", ["x1", "x2"])
        session.update(col("x1") > 5.0, {"x2": 0.0})
        entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
        assert not entry.stale
        warm = session.fit_model("y", ["x1", "x2"])
        reference = refit_reference(session)
        assert list(warm.coefficients) == pytest.approx(
            list(reference.coefficients), rel=1e-8
        )

    def test_stale_hit_refits(self):
        session = model_session()
        session.fit_model("y", ["x1", "x2"])
        entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
        session.view.summary.mark_stale(entry)
        refit = session.fit_model("y", ["x1", "x2"])
        fresh_entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
        assert not fresh_entry.stale
        assert fresh_entry.maintainer is not None
        reference = refit_reference(session)
        assert list(refit.coefficients) == pytest.approx(
            list(reference.coefficients), rel=1e-10
        )

    def test_invalidate_policy_does_not_keep_warm(self):
        session = model_session(policy=InvalidatePolicy())
        session.fit_model("y", ["x1", "x2"])
        session.update_cells("x1", [(4, 9.25)])
        entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
        assert entry.stale

    def test_rank_collapse_goes_stale_never_wrong(self):
        """Updates that make the design collinear must not leave a live
        maintainer serving a stale or impossible fit."""
        rows = [(float(i), float(i), float(i % 3)) for i in range(8)]
        session = model_session(rows=rows)
        session.fit_model("y", ["x1", "x2"])
        for row in range(8):
            session.update_cells("x2", [(row, 2.0 * rows[row][1])])
        entry = session.view.summary.peek("ols_model", ("y", "x1", "x2"))
        assert entry.stale
        assert entry.maintainer is None
        with pytest.raises(StatisticsError, match="rank"):
            session.fit_model("y", ["x1", "x2"])
