"""Tests for cross tabulations."""

import numpy as np
import pytest

from repro.core.errors import StatisticsError
from repro.relational.types import NA
from repro.stats.crosstab import CrossTab, crosstab
from repro.workloads.census import figure1_dataset


class TestBuild:
    def test_from_pairs(self):
        ct = crosstab(pairs=[("a", "x"), ("a", "y"), ("b", "x"), ("a", "x")])
        assert ct.row_labels == ["a", "b"]
        assert ct.col_labels == ["x", "y"]
        assert ct.table[0, 0] == 2

    def test_weighted(self):
        ct = crosstab(pairs=[("a", "x"), ("b", "x")], weights=[10, 5])
        assert ct.table[0, 0] == 10
        assert ct.grand_total == 15

    def test_na_pairs_skipped(self):
        ct = crosstab(pairs=[("a", "x"), (NA, "x"), ("a", NA)])
        assert ct.grand_total == 1

    def test_from_relation_weighted(self):
        """The paper's SS2.2 question needs a POPULATION-weighted cross-tab."""
        ct = crosstab(
            relation=figure1_dataset(),
            row_attr="RACE",
            col_attr="AGE_GROUP",
            weight_attr="POPULATION",
        )
        assert ct.row_name == "RACE"
        assert ct.table[ct.row_labels.index("W"), ct.col_labels.index(1)] == (
            12_300_347 + 15_821_497
        )

    def test_weight_length_mismatch(self):
        with pytest.raises(StatisticsError):
            crosstab(pairs=[("a", "b")], weights=[1, 2])

    def test_needs_input(self):
        with pytest.raises(StatisticsError):
            crosstab()
        with pytest.raises(StatisticsError):
            crosstab(relation=figure1_dataset())


class TestMargins:
    def test_totals(self):
        ct = CrossTab(["a", "b"], ["x", "y"], np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert list(ct.row_totals) == [3.0, 7.0]
        assert list(ct.col_totals) == [4.0, 6.0]
        assert ct.grand_total == 10.0

    def test_expected_independence(self):
        ct = CrossTab(["a", "b"], ["x", "y"], np.array([[10.0, 10.0], [10.0, 10.0]]))
        assert (ct.expected() == 10.0).all()

    def test_expected_empty_rejected(self):
        ct = CrossTab(["a"], ["x"], np.zeros((1, 1)))
        with pytest.raises(StatisticsError):
            ct.expected()

    def test_shape_validated(self):
        with pytest.raises(StatisticsError):
            CrossTab(["a"], ["x", "y"], np.zeros((2, 2)))


class TestPresentation:
    def test_to_relation(self):
        ct = crosstab(pairs=[("a", "x"), ("b", "y")])
        rel = ct.to_relation()
        assert len(rel) == 4  # 2x2 with zero cells included
        assert rel.schema.names == ["rows", "cols", "count"]

    def test_render(self):
        ct = crosstab(pairs=[("a", "x"), ("b", "y")])
        text = ct.render()
        assert "TOTAL" in text and "a" in text
