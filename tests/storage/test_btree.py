"""Tests for the B+-tree."""

import random

import pytest

from repro.core.errors import IndexError_
from repro.storage.btree import BPlusTree


class TestBasics:
    def test_insert_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        assert tree.search(5) == ["a"]
        assert tree.search(6) == []

    def test_duplicates_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "x")
        tree.insert(1, "y")
        assert tree.search(1) == ["x", "y"]
        assert len(tree) == 2

    def test_contains(self):
        tree = BPlusTree()
        tree.insert("k", 1)
        assert "k" in tree
        assert "missing" not in tree

    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)

    def test_height_grows(self):
        tree = BPlusTree(order=4)
        assert tree.height == 1
        for i in range(100):
            tree.insert(i, i)
        assert tree.height >= 3


class TestScans:
    def setup_method(self):
        self.tree = BPlusTree(order=5)
        keys = list(range(200))
        random.Random(7).shuffle(keys)
        for k in keys:
            self.tree.insert(k, k * 10)

    def test_items_sorted(self):
        keys = [k for k, _ in self.tree.items()]
        assert keys == sorted(keys) == list(range(200))

    def test_range_inclusive(self):
        got = [k for k, _ in self.tree.range_scan(10, 20)]
        assert got == list(range(10, 21))

    def test_range_exclusive_hi(self):
        got = [k for k, _ in self.tree.range_scan(10, 20, inclusive_hi=False)]
        assert got == list(range(10, 20))

    def test_range_open_lo(self):
        got = [k for k, _ in self.tree.range_scan(hi=5)]
        assert got == [0, 1, 2, 3, 4, 5]

    def test_keys_iterator(self):
        assert list(self.tree.keys()) == list(range(200))

    def test_prefix_scan_tuples(self):
        tree = BPlusTree(order=4)
        tree.insert(("salary", "min"), 1)
        tree.insert(("salary", "max"), 2)
        tree.insert(("age", "min"), 3)
        got = [k for k, _ in tree.prefix_scan(("salary",))]
        assert got == [("salary", "max"), ("salary", "min")]


class TestDelete:
    def test_delete_value(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.search(1) == ["b"]

    def test_delete_all_values(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1) == 2
        assert tree.search(1) == []
        assert len(tree) == 0

    def test_delete_missing(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert tree.delete(2) == 0
        assert tree.delete(1, "zzz") == 0

    def test_delete_then_scan_consistent(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(i, i)
        for i in range(0, 50, 2):
            tree.delete(i)
        assert [k for k, _ in tree.items()] == list(range(1, 50, 2))


class TestInvariants:
    @pytest.mark.parametrize("order", [3, 4, 7, 32])
    def test_random_inserts_keep_invariants(self, order):
        tree = BPlusTree(order=order)
        rng = random.Random(order)
        for _ in range(500):
            tree.insert(rng.randrange(100), rng.random())
        tree.check_invariants()

    def test_sequential_inserts_keep_invariants(self):
        tree = BPlusTree(order=4)
        for i in range(300):
            tree.insert(i, i)
        tree.check_invariants()

    def test_reverse_inserts_keep_invariants(self):
        tree = BPlusTree(order=4)
        for i in reversed(range(300)):
            tree.insert(i, i)
        tree.check_invariants()

    def test_matches_dict_reference(self):
        tree = BPlusTree(order=6)
        reference: dict = {}
        rng = random.Random(11)
        for _ in range(2000):
            k = rng.randrange(200)
            v = rng.randrange(10**6)
            tree.insert(k, v)
            reference.setdefault(k, []).append(v)
        for k, values in reference.items():
            assert tree.search(k) == values
        assert len(tree) == sum(len(v) for v in reference.values())
