"""Tests for the simulated disk and its I/O accounting."""

import pytest

from repro.core.errors import DiskError
from repro.storage.disk import DiskCostModel, IOStats, SimulatedDisk


class TestAllocation:
    def test_allocate_returns_distinct_blocks(self):
        disk = SimulatedDisk()
        blocks = [disk.allocate() for _ in range(10)]
        assert len(set(blocks)) == 10

    def test_allocated_blocks_counts(self):
        disk = SimulatedDisk()
        disk.allocate()
        disk.allocate()
        assert disk.allocated_blocks == 2

    def test_capacity_enforced(self):
        disk = SimulatedDisk(capacity_blocks=2)
        disk.allocate()
        disk.allocate()
        with pytest.raises(DiskError, match="disk full"):
            disk.allocate()

    def test_free_allows_reuse(self):
        disk = SimulatedDisk(capacity_blocks=1)
        block = disk.allocate()
        disk.free(block)
        assert disk.allocate() == block

    def test_free_unallocated_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(DiskError, match="not allocated"):
            disk.free(99)

    def test_invalid_block_size_rejected(self):
        with pytest.raises(DiskError):
            SimulatedDisk(block_size=0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(DiskError):
            SimulatedDisk(capacity_blocks=0)

    def test_allocate_many(self):
        disk = SimulatedDisk()
        blocks = disk.allocate_many(5)
        assert len(blocks) == 5


class TestReadWrite:
    def test_write_then_read_roundtrip(self):
        disk = SimulatedDisk(block_size=64)
        block = disk.allocate()
        disk.write_block(block, b"hello")
        data = disk.read_block(block)
        assert data[:5] == b"hello"
        assert len(data) == 64

    def test_fresh_block_is_zeroed(self):
        disk = SimulatedDisk(block_size=16)
        block = disk.allocate()
        assert disk.read_block(block) == bytes(16)

    def test_oversized_write_rejected(self):
        disk = SimulatedDisk(block_size=8)
        block = disk.allocate()
        with pytest.raises(DiskError, match="exceeds block size"):
            disk.write_block(block, b"123456789")

    def test_read_unallocated_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(DiskError, match="not allocated"):
            disk.read_block(0)

    def test_short_write_zero_pads(self):
        disk = SimulatedDisk(block_size=8)
        block = disk.allocate()
        disk.write_block(block, b"ab")
        assert disk.read_block(block) == b"ab" + bytes(6)


class TestAccounting:
    def test_reads_and_writes_counted(self):
        disk = SimulatedDisk()
        a = disk.allocate()
        disk.write_block(a, b"x")
        disk.read_block(a)
        disk.read_block(a)
        assert disk.stats.block_writes == 1
        assert disk.stats.block_reads == 2

    def test_sequential_vs_random(self):
        disk = SimulatedDisk()
        blocks = [disk.allocate() for _ in range(3)]
        disk.read_block(blocks[0])  # random (first access)
        disk.read_block(blocks[1])  # sequential
        disk.read_block(blocks[2])  # sequential
        disk.read_block(blocks[0])  # random (backwards)
        assert disk.stats.sequential_reads == 2
        assert disk.stats.random_reads == 2
        assert disk.stats.seeks == 2

    def test_cost_model_time(self):
        model = DiskCostModel(seek_ms=10.0, transfer_ms_per_block=2.0)
        stats = IOStats(block_reads=3, block_writes=1, seeks=2)
        assert model.time_ms(stats) == 2 * 10.0 + 4 * 2.0

    def test_elapsed_uses_cost_model(self):
        disk = SimulatedDisk(cost_model=DiskCostModel(seek_ms=5.0, transfer_ms_per_block=1.0))
        block = disk.allocate()
        disk.read_block(block)  # 1 seek + 1 transfer
        assert disk.elapsed_ms() == 6.0

    def test_reset_stats(self):
        disk = SimulatedDisk()
        block = disk.allocate()
        disk.read_block(block)
        disk.reset_stats()
        assert disk.stats.total_blocks == 0
        assert disk.stats.seeks == 0

    def test_snapshot_and_delta(self):
        disk = SimulatedDisk()
        block = disk.allocate()
        disk.read_block(block)
        before = disk.stats.snapshot()
        disk.read_block(block)
        disk.read_block(block)
        delta = disk.stats.delta_since(before)
        assert delta.block_reads == 2
        # Snapshot itself unchanged.
        assert before.block_reads == 1
