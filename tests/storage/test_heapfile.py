"""Tests for slotted pages and heap files."""

import pytest

from repro.core.errors import PageError
from repro.relational.types import NA, DataType
from repro.storage import heapfile as hf
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool


def make_heap(block_size=512, pool_pages=16, types=(DataType.INT, DataType.FLOAT)):
    disk = SimulatedDisk(block_size=block_size)
    pool = BufferPool(disk, capacity=pool_pages)
    return disk, pool, hf.HeapFile(pool, list(types))


class TestPageLayout:
    def test_insert_and_read(self):
        page = bytearray(256)
        hf.init_page(page)
        slot = hf.page_insert(page, b"hello")
        assert hf.page_read(page, slot) == b"hello"

    def test_multiple_slots(self):
        page = bytearray(256)
        hf.init_page(page)
        slots = [hf.page_insert(page, f"r{i}".encode()) for i in range(5)]
        assert slots == list(range(5))
        assert [p for _, p in hf.page_payloads(page)] == [f"r{i}".encode() for i in range(5)]

    def test_full_page_rejects(self):
        page = bytearray(64)
        hf.init_page(page)
        hf.page_insert(page, b"x" * 40)
        with pytest.raises(PageError, match="does not fit"):
            hf.page_insert(page, b"y" * 40)

    def test_delete_tombstones(self):
        page = bytearray(256)
        hf.init_page(page)
        hf.page_insert(page, b"a")
        hf.page_insert(page, b"b")
        hf.page_delete(page, 0)
        with pytest.raises(PageError, match="deleted"):
            hf.page_read(page, 0)
        assert [s for s, _ in hf.page_payloads(page)] == [1]

    def test_double_delete_rejected(self):
        page = bytearray(256)
        hf.init_page(page)
        hf.page_insert(page, b"a")
        hf.page_delete(page, 0)
        with pytest.raises(PageError, match="already deleted"):
            hf.page_delete(page, 0)

    def test_bad_slot_rejected(self):
        page = bytearray(256)
        hf.init_page(page)
        with pytest.raises(PageError, match="out of range"):
            hf.page_read(page, 0)

    def test_update_in_place_shorter(self):
        page = bytearray(256)
        hf.init_page(page)
        hf.page_insert(page, b"long payload")
        assert hf.page_update(page, 0, b"short")
        assert hf.page_read(page, 0) == b"short"

    def test_update_longer_uses_free_space(self):
        page = bytearray(256)
        hf.init_page(page)
        hf.page_insert(page, b"ab")
        assert hf.page_update(page, 0, b"much longer payload")
        assert hf.page_read(page, 0) == b"much longer payload"

    def test_update_fails_when_full(self):
        page = bytearray(64)
        hf.init_page(page)
        hf.page_insert(page, b"x" * 40)
        assert not hf.page_update(page, 0, b"y" * 60)


class TestHeapFile:
    def test_insert_get(self):
        _, _, heap = make_heap()
        rid = heap.insert((1, 2.5))
        assert heap.get(rid) == (1, 2.5)

    def test_spans_pages(self):
        _, _, heap = make_heap(block_size=128)
        rids = heap.insert_many([(i, float(i)) for i in range(100)])
        assert heap.page_count > 1
        assert len(heap) == 100
        assert heap.get(rids[73]) == (73, 73.0)

    def test_scan_order(self):
        _, _, heap = make_heap()
        heap.insert_many([(i, float(i)) for i in range(50)])
        values = [row for _, row in heap.scan()]
        assert values == [(i, float(i)) for i in range(50)]

    def test_delete_skipped_by_scan(self):
        _, _, heap = make_heap()
        rids = heap.insert_many([(i, float(i)) for i in range(10)])
        heap.delete(rids[4])
        assert len(heap) == 9
        assert (4, 4.0) not in [row for _, row in heap.scan()]

    def test_update_in_place(self):
        _, _, heap = make_heap()
        rid = heap.insert((1, 1.0))
        new_rid = heap.update(rid, (2, 2.0))
        assert new_rid == rid
        assert heap.get(rid) == (2, 2.0)

    def test_update_with_relocation(self):
        disk = SimulatedDisk(block_size=256)
        pool = BufferPool(disk, capacity=16)
        heap = hf.HeapFile(pool, [DataType.STR])
        rid = heap.insert(("a",))
        # Fill the page so a grow-update cannot stay.
        while True:
            before = heap.page_count
            heap.insert(("filler",))
            if heap.page_count > before:
                break
        new_rid = heap.update(rid, ("a" * 60,))
        assert heap.get(new_rid) == ("a" * 60,)
        assert len(heap) > 0

    def test_na_roundtrip(self):
        _, _, heap = make_heap()
        rid = heap.insert((NA, NA))
        assert heap.get(rid) == (NA, NA)

    def test_scan_column_reads_all_pages(self):
        """The row-store weakness of SS2.6: one column still scans all."""
        disk, pool, heap = make_heap(block_size=128, pool_pages=4)
        heap.insert_many([(i, float(i)) for i in range(200)])
        pool.clear()
        disk.reset_stats()
        column = list(heap.scan_column(0))
        assert column == list(range(200))
        assert disk.stats.block_reads == heap.page_count

    def test_point_read_touches_one_page(self):
        disk, pool, heap = make_heap(block_size=128, pool_pages=4)
        rids = heap.insert_many([(i, float(i)) for i in range(200)])
        pool.clear()
        disk.reset_stats()
        heap.get(rids[150])
        assert disk.stats.block_reads == 1
