"""Tests for record serialization."""

import pytest

from repro.core.errors import RecordError
from repro.relational.types import NA, DataType
from repro.storage.records import RID, RecordCodec

TYPES = [DataType.INT, DataType.FLOAT, DataType.STR, DataType.BOOL, DataType.CATEGORY]


class TestRoundtrip:
    def test_all_types(self):
        codec = RecordCodec(TYPES)
        row = (42, 3.5, "hello", True, 7)
        values, consumed = codec.decode(codec.encode(row))
        assert values == row
        assert consumed == len(codec.encode(row))

    def test_na_fields(self):
        codec = RecordCodec(TYPES)
        row = (NA, NA, NA, NA, NA)
        values, _ = codec.decode(codec.encode(row))
        assert all(v is NA for v in values)

    def test_mixed_na(self):
        codec = RecordCodec(TYPES)
        row = (1, NA, "x", NA, 3)
        values, _ = codec.decode(codec.encode(row))
        assert values == (1, NA, "x", NA, 3)

    def test_empty_string(self):
        codec = RecordCodec([DataType.STR])
        values, _ = codec.decode(codec.encode(("",)))
        assert values == ("",)

    def test_unicode_string(self):
        codec = RecordCodec([DataType.STR])
        values, _ = codec.decode(codec.encode(("héllo wörld",)))
        assert values == ("héllo wörld",)

    def test_negative_numbers(self):
        codec = RecordCodec([DataType.INT, DataType.FLOAT])
        values, _ = codec.decode(codec.encode((-5, -2.5)))
        assert values == (-5, -2.5)

    def test_multiple_records_in_buffer(self):
        codec = RecordCodec([DataType.INT])
        buf = codec.encode((1,)) + codec.encode((2,))
        first, consumed = codec.decode(buf)
        second, _ = codec.decode(buf, offset=consumed)
        assert first == (1,) and second == (2,)


class TestErrors:
    def test_wrong_arity(self):
        codec = RecordCodec([DataType.INT])
        with pytest.raises(RecordError, match="fields"):
            codec.encode((1, 2))

    def test_uncodable_value(self):
        codec = RecordCodec([DataType.INT])
        with pytest.raises(RecordError, match="cannot encode"):
            codec.encode(("not an int",))

    def test_truncated_buffer(self):
        codec = RecordCodec([DataType.INT])
        buf = codec.encode((1,))
        with pytest.raises(RecordError):
            codec.decode(buf[:3])

    def test_oversized_string(self):
        codec = RecordCodec([DataType.STR])
        with pytest.raises(RecordError, match="exceeds"):
            codec.encode(("x" * 70000,))


class TestRID:
    def test_equality_and_hash(self):
        assert RID(1, 2) == RID(1, 2)
        assert RID(1, 2) != RID(1, 3)
        assert len({RID(1, 2), RID(1, 2), RID(2, 2)}) == 2

    def test_ordering(self):
        assert RID(1, 5) < RID(2, 0)
        assert RID(1, 1) < RID(1, 2)

    def test_repr(self):
        assert repr(RID(3, 4)) == "RID(3, 4)"


class TestSizing:
    def test_max_size_upper_bounds_encoding(self):
        codec = RecordCodec(TYPES)
        encoded = codec.encode((2**62, 1.0, "x" * 64, False, -1))
        assert len(encoded) <= codec.max_size(max_str_len=64)
