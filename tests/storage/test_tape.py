"""Tests for the simulated tape archive."""

import pytest

from repro.core.errors import TapeError
from repro.storage.tape import TapeArchive, TapeCostModel


class TestWrite:
    def test_write_splits_into_blocks(self):
        tape = TapeArchive(block_size=100)
        blocks = tape.write_dataset("a", b"x" * 250)
        assert blocks == 3
        assert tape.total_blocks == 3

    def test_duplicate_name_rejected(self):
        tape = TapeArchive()
        tape.write_dataset("a", b"x")
        with pytest.raises(TapeError, match="append-only"):
            tape.write_dataset("a", b"y")

    def test_empty_dataset_rejected(self):
        tape = TapeArchive()
        with pytest.raises(TapeError, match="empty"):
            tape.write_dataset("a", b"")

    def test_preblocked_chunks(self):
        tape = TapeArchive(block_size=10)
        tape.write_dataset("a", [b"12345", b"67890"])
        assert tape.dataset_blocks("a") == 2

    def test_oversized_chunk_rejected(self):
        tape = TapeArchive(block_size=4)
        with pytest.raises(TapeError, match="exceeds"):
            tape.write_dataset("a", [b"12345"])

    def test_dataset_names_in_order(self):
        tape = TapeArchive()
        tape.write_dataset("b", b"x")
        tape.write_dataset("a", b"y")
        assert tape.dataset_names == ["b", "a"]


class TestRead:
    def test_roundtrip(self):
        tape = TapeArchive(block_size=8)
        payload = b"hello tape world"
        tape.write_dataset("d", payload)
        data = tape.read_dataset_bytes("d")
        assert data[: len(payload)] == payload

    def test_missing_dataset_rejected(self):
        tape = TapeArchive()
        with pytest.raises(TapeError, match="no dataset"):
            list(tape.read_dataset("nope"))

    def test_read_streams_preceding_blocks(self):
        tape = TapeArchive(block_size=10)
        tape.write_dataset("first", b"x" * 50)  # 5 blocks
        tape.write_dataset("second", b"y" * 10)  # 1 block
        tape.read_dataset_bytes("second")
        # Streamed over the 5 preceding blocks plus its own 1.
        assert tape.stats.blocks_streamed == 6

    def test_first_dataset_cheaper_than_last(self):
        tape = TapeArchive(block_size=10)
        tape.write_dataset("a", b"x" * 100)
        tape.write_dataset("b", b"y" * 100)
        tape.read_dataset_bytes("a")
        cost_a = tape.stats.blocks_streamed
        tape.reset_stats()
        tape.read_dataset_bytes("b")
        cost_b = tape.stats.blocks_streamed
        assert cost_b > cost_a

    def test_mount_counted_once_until_unmount(self):
        tape = TapeArchive()
        tape.write_dataset("a", b"x")
        tape.read_dataset_bytes("a")
        tape.read_dataset_bytes("a")
        assert tape.stats.mounts == 1
        tape.unmount()
        tape.read_dataset_bytes("a")
        assert tape.stats.mounts == 2

    def test_has_dataset(self):
        tape = TapeArchive()
        tape.write_dataset("a", b"x")
        assert tape.has_dataset("a")
        assert not tape.has_dataset("b")


class TestCostModel:
    def test_time_dominated_by_mount(self):
        model = TapeCostModel(mount_ms=1000.0, stream_ms_per_block=1.0, rewind_ms=0.0)
        tape = TapeArchive(block_size=10, cost_model=model)
        tape.write_dataset("a", b"x" * 30)
        tape.read_dataset_bytes("a")
        assert tape.elapsed_ms() == pytest.approx(1000.0 + 3.0)

    def test_invalid_block_size(self):
        with pytest.raises(TapeError):
            TapeArchive(block_size=0)
