"""Tests for transposed (column) files."""

import pytest

from repro.core.errors import PageError, StorageError
from repro.relational.types import NA, DataType
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool
from repro.storage.transposed import TransposedFile


def make_tf(types, block_size=256, pool_pages=64, compress=None):
    disk = SimulatedDisk(block_size=block_size)
    pool = BufferPool(disk, capacity=pool_pages)
    return disk, pool, TransposedFile(pool, types, compress=compress)


class TestBasics:
    def test_append_and_scan(self):
        _, _, tf = make_tf([DataType.INT, DataType.FLOAT])
        tf.append_rows([(i, i * 0.5) for i in range(100)])
        assert list(tf.scan_column(0)) == list(range(100))
        assert list(tf.scan_column(1)) == [i * 0.5 for i in range(100)]

    def test_row_reconstruction(self):
        _, _, tf = make_tf([DataType.INT, DataType.STR])
        tf.append_rows([(i, f"s{i}") for i in range(50)])
        assert tf.get_row(37) == (37, "s37")
        assert list(tf.scan_rows())[10] == (10, "s10")

    def test_arity_checked(self):
        _, _, tf = make_tf([DataType.INT, DataType.INT])
        with pytest.raises(StorageError, match="fields"):
            tf.append_row((1,))

    def test_na_values(self):
        _, _, tf = make_tf([DataType.FLOAT])
        tf.append_rows([(1.0,), (NA,), (3.0,)])
        assert list(tf.scan_column(0)) == [1.0, NA, 3.0]

    def test_point_update(self):
        _, _, tf = make_tf([DataType.INT])
        tf.append_rows([(i,) for i in range(300)])
        tf.set_value(250, 0, -1)
        assert tf.get_value(250, 0) == -1
        assert list(tf.scan_column(0))[250] == -1

    def test_update_then_append_consistent(self):
        _, _, tf = make_tf([DataType.INT])
        tf.append_rows([(i,) for i in range(10)])
        tf.set_value(9, 0, 99)  # update in the open page
        tf.append_row((10,))
        assert list(tf.scan_column(0)) == list(range(9)) + [99, 10]

    def test_out_of_range_row(self):
        _, _, tf = make_tf([DataType.INT])
        tf.append_row((1,))
        with pytest.raises(PageError, match="out of range"):
            tf.get_value(5, 0)


class TestIOPattern:
    def test_column_scan_reads_only_that_column(self):
        """The SS2.6 claim: q-of-m column scans touch q/m of the pages."""
        disk, pool, tf = make_tf([DataType.INT] * 4, block_size=128, pool_pages=2)
        tf.append_rows([(i, i, i, i) for i in range(500)])
        pool.clear()
        disk.reset_stats()
        list(tf.scan_column(2))
        one_column = disk.stats.block_reads
        assert one_column == tf.column_page_count(2)
        pool.clear()
        disk.reset_stats()
        list(tf.scan_rows())
        all_columns = disk.stats.block_reads
        assert all_columns >= 4 * one_column - 3

    def test_informational_query_touches_every_column(self):
        disk, pool, tf = make_tf([DataType.INT] * 6, block_size=128, pool_pages=2)
        tf.append_rows([tuple(range(6)) for _ in range(300)])
        pool.clear()
        disk.reset_stats()
        tf.get_row(299)
        assert disk.stats.block_reads == 6  # one page per column


class TestCompression:
    def test_rle_roundtrip(self):
        _, _, tf = make_tf([DataType.CATEGORY], compress="rle")
        values = [i // 50 for i in range(1000)]
        for v in values:
            tf.append_row((v,))
        assert list(tf.scan_column(0)) == values

    def test_rle_fewer_pages_on_runs(self):
        _, _, plain = make_tf([DataType.CATEGORY], block_size=128)
        _, _, rle = make_tf([DataType.CATEGORY], block_size=128, compress="rle")
        values = [i // 100 for i in range(2000)]
        for v in values:
            plain.append_row((v,))
            rle.append_row((v,))
        assert rle.column_page_count(0) < plain.column_page_count(0)

    def test_rle_update_roundtrip(self):
        _, _, tf = make_tf([DataType.CATEGORY], compress="rle")
        for i in range(100):
            tf.append_row((i // 10,))
        tf.set_value(55, 0, 42)
        got = list(tf.scan_column(0))
        assert got[55] == 42
        assert got[54] == 5 and got[56] == 5

    def test_rle_random_data_roundtrip(self):
        import random

        rng = random.Random(5)
        _, _, tf = make_tf([DataType.INT], compress="rle")
        values = [rng.randrange(1000) for _ in range(500)]
        for v in values:
            tf.append_row((v,))
        assert list(tf.scan_column(0)) == values

    def test_unknown_compression_rejected(self):
        with pytest.raises(StorageError, match="unsupported compression"):
            make_tf([DataType.INT], compress="lz4")


class TestChainIntegrity:
    """A truncated page chain must fail loudly, not stop the chunk stream.

    Before the fix, ``scan_column_chunks`` raised ``StopIteration`` inside
    the generator when a column's chain ran dry, which PEP 479 converts to
    an opaque ``RuntimeError`` in the consuming pipeline.
    """

    def test_truncated_chain_raises_storage_error(self):
        _, _, tf = make_tf([DataType.INT, DataType.FLOAT], block_size=128)
        for i in range(200):
            tf.append_row((i, float(i)))
        tf._columns[0].pages.pop()  # doctor: drop the column's last page
        with pytest.raises(StorageError, match="column 0"):
            for _ in tf.scan_column_chunks([0, 1], chunk_size=64):
                pass

    def test_error_names_the_shortfall(self):
        _, _, tf = make_tf([DataType.INT], block_size=128)
        for i in range(200):
            tf.append_row((i,))
        tf._columns[0].pages.pop()
        with pytest.raises(StorageError, match="missing"):
            list(tf.scan_column_chunks([0], chunk_size=50))

    def test_intact_chain_never_raises(self):
        _, _, tf = make_tf([DataType.INT], block_size=128)
        values = list(range(150))
        for v in values:
            tf.append_row((v,))
        flat = [v for chunk in tf.scan_column_chunks([0], 64) for v in chunk[0]]
        assert flat == values
