"""Sharded transposed files: routing, merged scans, and chain integrity."""

import pytest

from repro.core.errors import StorageError
from repro.relational.types import NA, DataType
from repro.storage.sharded import ShardedTransposedFile, ShardRouter


def rows_fixture(n=25):
    return [(float(i), i, f"g{i % 3}") for i in range(n)]


def make_sharded(rows, shards=4, **kwargs):
    storage = ShardedTransposedFile(
        [DataType.FLOAT, DataType.INT, DataType.STR], shards=shards, **kwargs
    )
    storage.append_rows(rows)
    return storage


class TestShardRouter:
    def test_round_robin_assignment(self):
        router = ShardRouter(4)
        assert [router.shard_of(r) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_local_global_round_trip(self):
        router = ShardRouter(3)
        for r in range(30):
            shard = router.shard_of(r)
            local = router.local_row(r)
            assert router.global_row(shard, local) == r

    def test_split_groups_rows_by_owner_in_local_numbering(self):
        router = ShardRouter(4)
        by_shard = router.split(range(10))
        assert by_shard == {
            0: [0, 1, 2],  # global 0, 4, 8
            1: [0, 1, 2],  # global 1, 5, 9
            2: [0, 1],  # global 2, 6
            3: [0, 1],  # global 3, 7
        }

    def test_single_shard_is_identity(self):
        router = ShardRouter(1)
        assert router.shard_of(7) == 0
        assert router.local_row(7) == 7

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(StorageError):
            ShardRouter(0)


class TestShardedTransposedFile:
    def test_append_distributes_round_robin(self):
        storage = make_sharded(rows_fixture(10), shards=4)
        assert [storage.shard_row_count(s) for s in range(4)] == [3, 3, 2, 2]
        assert len(storage) == 10

    def test_get_value_routes_to_owner(self):
        rows = rows_fixture(13)
        storage = make_sharded(rows, shards=4)
        for r, row in enumerate(rows):
            for c in range(3):
                assert storage.get_value(r, c) == row[c]

    def test_scan_column_preserves_global_order(self):
        rows = rows_fixture(17)
        storage = make_sharded(rows, shards=4)
        assert list(storage.scan_column(1)) == [row[1] for row in rows]

    def test_scan_rows_round_trip(self):
        rows = rows_fixture(9)
        storage = make_sharded(rows, shards=3)
        assert [tuple(r) for r in storage.scan_rows()] == rows

    def test_scan_column_chunks_match_plain_scan(self):
        rows = rows_fixture(23)
        storage = make_sharded(rows, shards=4)
        chunks = list(storage.scan_column_chunks([0, 2], chunk_size=7))
        cols = list(zip(*rows))
        got0, got2 = [], []
        for piece in chunks:
            got0.extend(piece[0])
            got2.extend(piece[1])
        assert got0 == list(cols[0])
        assert got2 == list(cols[2])

    def test_set_value_bumps_only_owner_version(self):
        storage = make_sharded(rows_fixture(8), shards=4)
        before = [storage.shard_version(s) for s in range(4)]
        storage.set_value(5, 0, -1.0)  # row 5 -> shard 1
        after = [storage.shard_version(s) for s in range(4)]
        assert after[1] == before[1] + 1
        assert [a for i, a in enumerate(after) if i != 1] == [
            b for i, b in enumerate(before) if i != 1
        ]
        assert storage.get_value(5, 0) == -1.0

    def test_na_round_trips(self):
        storage = make_sharded([(NA, 1, "a"), (2.0, NA, "b")], shards=2)
        assert storage.get_value(0, 0) is NA
        assert storage.get_value(1, 1) is NA

    def test_truncated_shard_chain_raises_storage_error(self):
        storage = make_sharded(rows_fixture(12), shards=3)
        # Doctor shard 1: drop its last page for column 0 so the merged
        # scan runs dry before the advertised row count.
        storage.shard_file(1)._columns[0].pages.pop()
        with pytest.raises(StorageError):
            list(storage.scan_column(0))

    def test_truncated_chain_raises_in_chunked_scan(self):
        storage = make_sharded(rows_fixture(12), shards=3)
        storage.shard_file(2)._columns[1].pages.pop()
        with pytest.raises(StorageError):
            list(storage.scan_column_chunks([1], chunk_size=4))
