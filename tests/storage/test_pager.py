"""Tests for the buffer pool and replacement policies."""

import pytest

from repro.core.errors import BufferPoolError
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import BufferPool, make_policy


def make_pool(capacity=3, block_size=64):
    disk = SimulatedDisk(block_size=block_size)
    return disk, BufferPool(disk, capacity=capacity, policy="lru")


class TestBasics:
    def test_new_page_is_pinned_and_dirty(self):
        _, pool = make_pool()
        block, data = pool.new_page()
        assert pool.pin_count(block) == 1
        data[0] = 42
        pool.unpin(block)
        pool.flush_all()

    def test_fetch_miss_reads_disk(self):
        disk, pool = make_pool()
        block, _ = pool.new_page()
        pool.unpin(block, dirty=True)
        pool.clear()
        disk.reset_stats()
        pool.fetch_page(block)
        assert disk.stats.block_reads == 1
        assert pool.stats.misses == 1

    def test_fetch_hit_avoids_disk(self):
        disk, pool = make_pool()
        block, _ = pool.new_page()
        pool.unpin(block)
        disk.reset_stats()
        pool.fetch_page(block)
        pool.unpin(block)
        assert disk.stats.block_reads == 0
        assert pool.stats.hits == 1

    def test_dirty_data_survives_eviction(self):
        disk, pool = make_pool(capacity=1)
        block, data = pool.new_page()
        data[:3] = b"abc"
        pool.unpin(block, dirty=True)
        other, _ = pool.new_page()  # evicts block
        pool.unpin(other)
        page = pool.fetch_page(block)
        assert bytes(page[:3]) == b"abc"

    def test_unpin_not_resident_rejected(self):
        _, pool = make_pool()
        with pytest.raises(BufferPoolError, match="not resident"):
            pool.unpin(123)

    def test_over_unpin_rejected(self):
        _, pool = make_pool()
        block, _ = pool.new_page()
        pool.unpin(block)
        with pytest.raises(BufferPoolError, match="not pinned"):
            pool.unpin(block)

    def test_all_pinned_rejects_new_page(self):
        _, pool = make_pool(capacity=2)
        pool.new_page()
        pool.new_page()
        with pytest.raises(BufferPoolError, match="pinned"):
            pool.new_page()

    def test_clear_with_pins_rejected(self):
        _, pool = make_pool()
        pool.new_page()
        with pytest.raises(BufferPoolError, match="pinned"):
            pool.clear()

    def test_capacity_must_be_positive(self):
        disk = SimulatedDisk()
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity=0)

    def test_hit_ratio(self):
        _, pool = make_pool()
        block, _ = pool.new_page()
        pool.unpin(block)
        pool.fetch_page(block)
        pool.unpin(block)
        pool.fetch_page(block)
        pool.unpin(block)
        assert pool.stats.hit_ratio == 1.0


class TestPolicies:
    def _fill(self, pool, n):
        blocks = []
        for _ in range(n):
            block, _ = pool.new_page()
            pool.unpin(block, dirty=True)
            blocks.append(block)
        return blocks

    def test_lru_evicts_least_recent(self):
        disk = SimulatedDisk(block_size=32)
        pool = BufferPool(disk, capacity=2, policy="lru")
        a, b = self._fill(pool, 2)
        pool.fetch_page(a)
        pool.unpin(a)  # a is now most recent
        c, _ = pool.new_page()  # must evict b
        pool.unpin(c)
        assert pool.is_resident(a)
        assert not pool.is_resident(b)

    def test_mru_evicts_most_recent(self):
        disk = SimulatedDisk(block_size=32)
        pool = BufferPool(disk, capacity=2, policy="mru")
        a, b = self._fill(pool, 2)
        pool.fetch_page(a)
        pool.unpin(a)  # a most recent
        c, _ = pool.new_page()  # must evict a
        pool.unpin(c)
        assert not pool.is_resident(a)
        assert pool.is_resident(b)

    def test_fifo_ignores_access(self):
        disk = SimulatedDisk(block_size=32)
        pool = BufferPool(disk, capacity=2, policy="fifo")
        a, b = self._fill(pool, 2)
        pool.fetch_page(a)
        pool.unpin(a)  # access does not rescue a under FIFO
        c, _ = pool.new_page()
        pool.unpin(c)
        assert not pool.is_resident(a)

    def test_clock_gives_second_chance(self):
        disk = SimulatedDisk(block_size=32)
        pool = BufferPool(disk, capacity=2, policy="clock")
        a, b = self._fill(pool, 2)
        # Both ref bits set; first eviction clears bits then evicts one.
        c, _ = pool.new_page()
        pool.unpin(c)
        assert pool.stats.evictions == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(BufferPoolError, match="unknown replacement"):
            make_policy("optimal")

    def test_pinned_pages_never_evicted(self):
        disk = SimulatedDisk(block_size=32)
        pool = BufferPool(disk, capacity=2, policy="lru")
        a, _ = pool.new_page()  # keep pinned
        b, _ = pool.new_page()
        pool.unpin(b, dirty=True)
        c, _ = pool.new_page()  # must evict b, not pinned a
        pool.unpin(c)
        assert pool.is_resident(a)
        assert not pool.is_resident(b)

    def test_mru_beats_lru_on_sequential_flood(self):
        """The paper's SS2.4 point: general-purpose memory management is

        wrong for repeated full-column scans slightly over pool size."""

        def run(policy):
            disk = SimulatedDisk(block_size=32)
            pool = BufferPool(disk, capacity=8, policy=policy)
            blocks = []
            for _ in range(10):  # file slightly larger than the pool
                block, _ = pool.new_page()
                pool.unpin(block, dirty=True)
                blocks.append(block)
            pool.stats.reset()
            for _ in range(5):  # repeated sequential scans
                for block in blocks:
                    pool.fetch_page(block)
                    pool.unpin(block)
            return pool.stats.hit_ratio

        assert run("mru") > run("lru")


class TestFlush:
    def test_flush_page_writes_dirty(self):
        disk, pool = make_pool()
        block, data = pool.new_page()
        data[:2] = b"zz"
        pool.unpin(block, dirty=True)
        disk.reset_stats()
        pool.flush_page(block)
        assert disk.stats.block_writes == 1
        # Second flush is a no-op (clean now).
        pool.flush_page(block)
        assert disk.stats.block_writes == 1

    def test_flush_all(self):
        disk, pool = make_pool(capacity=4)
        for _ in range(3):
            block, _ = pool.new_page()
            pool.unpin(block, dirty=True)
        disk.reset_stats()
        pool.flush_all()
        assert disk.stats.block_writes == 3
