"""Tests for RLE / dictionary / delta compression."""

import pytest

from repro.core.errors import StorageError
from repro.relational.types import NA, DataType
from repro.storage import compression as comp


class TestRLE:
    def test_runs_basic(self):
        assert comp.rle_runs([1, 1, 2, 2, 2, 3]) == [(1, 2), (2, 3), (3, 1)]

    def test_runs_with_na(self):
        runs = comp.rle_runs([NA, NA, 1])
        assert runs[0] == (NA, 2) and runs[1] == (1, 1)

    def test_expand_inverse(self):
        values = [1, 1, 2, 3, 3, 3]
        assert comp.rle_expand(comp.rle_runs(values)) == values

    def test_expand_rejects_bad_run(self):
        with pytest.raises(StorageError):
            comp.rle_expand([(1, 0)])

    def test_bytes_roundtrip_int(self):
        values = [5] * 100 + [7] * 50 + [NA] * 3
        buf = comp.rle_encode_bytes(values, DataType.INT)
        assert comp.rle_decode_bytes(buf, DataType.INT) == values

    def test_bytes_roundtrip_str(self):
        values = ["a", "a", "b", "b", "b"]
        buf = comp.rle_encode_bytes(values, DataType.STR)
        assert comp.rle_decode_bytes(buf, DataType.STR) == values

    def test_bytes_roundtrip_float(self):
        values = [1.5, 1.5, 2.5]
        buf = comp.rle_encode_bytes(values, DataType.FLOAT)
        assert comp.rle_decode_bytes(buf, DataType.FLOAT) == values

    def test_compression_wins_on_runs(self):
        sorted_col = [i // 100 for i in range(10_000)]
        report = comp.compare_rle(sorted_col, DataType.INT)
        assert report.ratio > 10

    def test_compression_loses_on_random(self):
        import random

        rng = random.Random(0)
        random_col = [rng.randrange(10**9) for _ in range(1000)]
        report = comp.compare_rle(random_col, DataType.INT)
        assert report.ratio < 1.0  # run headers cost space

    def test_column_beats_row_serialization(self):
        """The paper's SS2.6 asymmetry: RLE down a column beats RLE across

        rows because rows interleave attribute types and values."""
        rows = [("M", i // 200, 30_000 + (i % 7)) for i in range(1000)]
        sex_col = [r[0] for r in rows]
        age_col = [r[1] for r in rows]
        col_ratio = (
            comp.compare_rle(sex_col, DataType.STR).ratio
            + comp.compare_rle(age_col, DataType.INT).ratio
        ) / 2
        row_stream = comp.row_serialized(rows, [DataType.STR, DataType.INT, DataType.INT])
        # Encode the interleaved stream as generic values via runs counting.
        row_runs = len(comp.rle_runs(row_stream))
        assert col_ratio > 1.5
        assert row_runs > len(comp.rle_runs(sex_col)) + len(comp.rle_runs(age_col))


class TestDictionary:
    def test_roundtrip(self):
        values = ["a", "b", "a", "c", "b", NA, "a"]
        dictionary, codes = comp.dict_encode(values)
        assert comp.dict_decode(dictionary, codes) == values

    def test_dictionary_size(self):
        values = ["x"] * 100
        dictionary, codes = comp.dict_encode(values)
        assert len(dictionary) == 1
        assert comp.dict_encoded_size(dictionary, codes, DataType.STR) < comp.raw_size(
            values, DataType.STR
        )

    def test_bad_code_rejected(self):
        with pytest.raises(StorageError):
            comp.dict_decode(["a"], [0, 5])

    def test_code_width_grows(self):
        assert comp._code_width(10) == 1
        assert comp._code_width(300) == 2
        assert comp._code_width(70_000) == 4


class TestDelta:
    def test_roundtrip(self):
        values = [100, 105, 103, 110, 110]
        assert comp.delta_decode(comp.delta_encode(values)) == values

    def test_sorted_data_small_deltas(self):
        values = list(range(1000, 2000))
        deltas = comp.delta_encode(values)
        assert comp.delta_encoded_size(deltas) < comp.raw_size(values, DataType.INT) / 4

    def test_na_rejected(self):
        with pytest.raises(StorageError):
            comp.delta_encode([1, NA, 3])

    def test_float_rejected(self):
        with pytest.raises(StorageError):
            comp.delta_encode([1.5, 2.5])
