"""Tests for the WiSS-style storage manager facade."""

import pytest

from repro.core.errors import CatalogError
from repro.relational.types import DataType
from repro.storage.wiss import StorageManager


class TestFactories:
    def test_create_and_fetch_heap(self):
        sm = StorageManager()
        heap = sm.create_heap_file("h", [DataType.INT])
        assert sm.file("h") is heap

    def test_create_and_fetch_transposed(self):
        sm = StorageManager()
        tf = sm.create_transposed_file("t", [DataType.INT], compress="rle")
        assert sm.file("t") is tf

    def test_duplicate_file_name_rejected(self):
        sm = StorageManager()
        sm.create_heap_file("x", [DataType.INT])
        with pytest.raises(CatalogError, match="already exists"):
            sm.create_transposed_file("x", [DataType.INT])

    def test_missing_file_rejected(self):
        sm = StorageManager()
        with pytest.raises(CatalogError, match="no file"):
            sm.file("nope")

    def test_indexes(self):
        sm = StorageManager()
        index = sm.create_index("idx")
        index.insert(1, "a")
        assert sm.index("idx").search(1) == ["a"]
        with pytest.raises(CatalogError):
            sm.create_index("idx")
        with pytest.raises(CatalogError):
            sm.index("other")

    def test_file_names(self):
        sm = StorageManager()
        sm.create_heap_file("b", [DataType.INT])
        sm.create_heap_file("a", [DataType.INT])
        assert sm.file_names == ["a", "b"]


class TestAccounting:
    def test_report_reflects_activity(self):
        sm = StorageManager(pool_pages=2, block_size=128)
        heap = sm.create_heap_file("h", [DataType.INT])
        heap.insert_many([(i,) for i in range(200)])
        sm.flush()
        report = sm.report()
        assert report.io.block_writes > 0
        assert report.model_time_ms > 0
        assert "reads=" in str(report)

    def test_reset_stats(self):
        sm = StorageManager(block_size=128)
        heap = sm.create_heap_file("h", [DataType.INT])
        heap.insert((1,))
        sm.reset_stats()
        report = sm.report()
        assert report.io.total_blocks == 0
        assert report.buffer.accesses == 0
