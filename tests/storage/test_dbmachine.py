"""Tests for the SS4.3 database machine cost models."""

import pytest

from repro.core.errors import StorageError
from repro.storage.dbmachine import (
    AssociativeDisk,
    ConventionalSearchModel,
    FilteringProcessor,
    compare_materializing_scan,
    compare_summary_search,
)


class TestConventional:
    def test_search_cost(self):
        model = ConventionalSearchModel(seek_ms=10, transfer_ms_per_page=1, host_cpu_ms_per_page=0)
        assert model.search_time_ms(3) == 33.0

    def test_scan_cost(self):
        model = ConventionalSearchModel(seek_ms=10, transfer_ms_per_page=1, host_cpu_ms_per_page=1)
        assert model.scan_time_ms(100) == 10 + 200
        assert model.scan_time_ms(0) == 0.0

    def test_validation(self):
        with pytest.raises(StorageError):
            ConventionalSearchModel().search_time_ms(-1)


class TestAssociativeDisk:
    def test_revolutions(self):
        disk = AssociativeDisk(revolution_ms=10, pages_per_cylinder=40, result_transfer_ms=0)
        assert disk.search_time_ms(40) == 10
        assert disk.search_time_ms(41) == 20
        assert disk.search_time_ms(0) == 0.0

    def test_result_transfer_added(self):
        disk = AssociativeDisk(revolution_ms=10, pages_per_cylinder=40, result_transfer_ms=2)
        assert disk.search_time_ms(10, result_pages=3) == 16

    def test_cost_independent_of_matches(self):
        disk = AssociativeDisk()
        assert disk.search_time_ms(100, 1) == disk.search_time_ms(100, 1)


class TestFilteringProcessor:
    def test_selectivity_scales_host_work(self):
        proc = FilteringProcessor(transfer_ms_per_page=1, seek_ms=0, host_cpu_ms_per_result_page=10)
        full = proc.scan_time_ms(100, selectivity=1.0)
        selective = proc.scan_time_ms(100, selectivity=0.01)
        assert full == 100 + 1000
        assert selective == 100 + 10

    def test_validation(self):
        with pytest.raises(StorageError):
            FilteringProcessor().scan_time_ms(10, selectivity=2.0)
        with pytest.raises(StorageError):
            FilteringProcessor().scan_time_ms(-1)


class TestComparisons:
    def test_summary_search_scenario(self):
        # Small summary DB: one revolution beats three random probes.
        comparison = compare_summary_search(summary_pages=30)
        assert comparison.machine_ms < comparison.conventional_ms
        assert comparison.machine_advantage > 1

    def test_btree_competitive_on_huge_summary(self):
        """The honest finding: with the paper's own B-tree index, the

        conventional path stays flat while associative search grows with
        the database — the machine only wins while the area is small."""
        small = compare_summary_search(summary_pages=30)
        huge = compare_summary_search(summary_pages=40_000)
        assert small.machine_advantage > 1
        assert huge.machine_advantage < 1

    def test_materializing_scan_scenario(self):
        comparison = compare_materializing_scan(view_pages=1_000, selectivity=0.05)
        assert comparison.machine_ms < comparison.conventional_ms

    def test_unselective_scan_is_a_wash(self):
        comparison = compare_materializing_scan(view_pages=1_000, selectivity=1.0)
        assert comparison.machine_advantage == pytest.approx(1.0, abs=0.05)
