"""Tests for update rules and the rule repository."""

import pytest

from repro.core.errors import RuleError
from repro.incremental.differencing import Delta
from repro.metadata.functions import FunctionRegistry
from repro.metadata.rules import (
    IncrementalRule,
    InvalidateRule,
    RegenerateRule,
    RuleKind,
    RuleRepository,
)
from repro.summary.entries import SummaryEntry, SummaryKey


def make_entry(function="mean", attr="X", result=None):
    return SummaryEntry(key=SummaryKey(function, (attr,)), result=result)


@pytest.fixture()
def registry():
    return FunctionRegistry()


class TestIncrementalRule:
    def test_applies_delta(self, registry):
        work = [1.0, 2.0, 3.0]
        fn = registry.get("mean")
        entry = make_entry(result=2.0)
        entry.maintainer = fn.make_maintainer(lambda: work)
        rule = IncrementalRule(fn)
        work[0] = 7.0
        outcome = rule.apply(entry, Delta(updates=[(1.0, 7.0)]), lambda: work)
        assert outcome.incremental_changes == 1
        assert entry.result == pytest.approx(4.0)
        assert not entry.stale

    def test_builds_maintainer_lazily(self, registry):
        work = [1.0, 2.0, 3.0]
        fn = registry.get("mean")
        entry = make_entry(result=None)
        rule = IncrementalRule(fn)
        outcome = rule.apply(entry, Delta(updates=[(1.0, 1.0)]), lambda: work)
        # No prior maintainer: the rule initialized one from current data.
        assert outcome.recomputed
        assert entry.maintainer is not None
        assert entry.result == pytest.approx(2.0)

    def test_rejects_non_incremental_function(self, registry):
        with pytest.raises(RuleError, match="no incremental form"):
            IncrementalRule(registry.get("trimmed_mean"))


class TestRegenerateRule:
    def test_recomputes(self, registry):
        rule = RegenerateRule(registry.get("mean"))
        entry = make_entry(result=99.0)
        entry.stale = True
        outcome = rule.apply(entry, Delta(), lambda: [2.0, 4.0])
        assert outcome.recomputed
        assert entry.result == 3.0
        assert not entry.stale


class TestInvalidateRule:
    def test_marks_stale(self, registry):
        rule = InvalidateRule(registry.get("mean"))
        entry = make_entry(result=5.0)
        outcome = rule.apply(entry, Delta(updates=[(1.0, 2.0)]), lambda: [])
        assert outcome.marked_stale
        assert entry.stale
        assert entry.result == 5.0  # untouched until lazy recompute


class TestRepository:
    def test_defaults(self, registry):
        repo = RuleRepository(registry)
        assert repo.rule_for("mean").kind is RuleKind.INCREMENTAL
        assert repo.rule_for("median").kind is RuleKind.INCREMENTAL  # manual window
        assert repo.rule_for("trimmed_mean").kind is RuleKind.INVALIDATE

    def test_force_mode(self, registry):
        repo = RuleRepository(registry, force_mode=RuleKind.INVALIDATE)
        assert repo.rule_for("mean").kind is RuleKind.INVALIDATE

    def test_force_incremental_falls_back_to_regenerate(self, registry):
        repo = RuleRepository(registry, force_mode=RuleKind.INCREMENTAL)
        assert repo.rule_for("trimmed_mean").kind is RuleKind.REGENERATE

    def test_override_single_function(self, registry):
        repo = RuleRepository(registry)
        repo.set_rule("mean", RuleKind.REGENERATE)
        assert repo.rule_for("mean").kind is RuleKind.REGENERATE
        assert repo.rule_for("sum").kind is RuleKind.INCREMENTAL

    def test_override_validates_function(self, registry):
        repo = RuleRepository(registry)
        from repro.core.errors import FunctionError

        with pytest.raises(FunctionError):
            repo.set_rule("nonsense", RuleKind.INVALIDATE)

    def test_describe(self, registry):
        table = RuleRepository(registry).describe()
        assert table["mean"] == "incremental"
        assert table["mad"] == "invalidate"


class TestRepositoryDefaulting:
    """The paper's default wiring: incremental where a maintainer exists,
    the SS4.3 invalidation fallback otherwise — exhaustively, for every
    registered function."""

    def test_every_function_defaults_by_maintainer_presence(self, registry):
        repo = RuleRepository(registry)
        for name in registry.names():
            fn = registry.get(name)
            expected = (
                RuleKind.INCREMENTAL if fn.is_incremental else RuleKind.INVALIDATE
            )
            assert repo.rule_for(name).kind is expected, name

    def test_custom_function_with_maintainer_defaults_incremental(self, registry):
        from repro.incremental.aggregates import IncrementalSum
        from repro.metadata.functions import ResultKind, StatFunction

        def factory(provider):
            maintainer = IncrementalSum()
            maintainer.initialize(provider())
            return maintainer

        registry.register(
            StatFunction("double_sum", lambda v: 2 * sum(v), ResultKind.SCALAR, factory)
        )
        rule = RuleRepository(registry).rule_for("double_sum")
        assert rule.kind is RuleKind.INCREMENTAL
        assert isinstance(rule, IncrementalRule)

    def test_custom_function_without_maintainer_defaults_invalidate(self, registry):
        from repro.metadata.functions import ResultKind, StatFunction

        registry.register(
            StatFunction("opaque_stat", lambda v: 0.0, ResultKind.SCALAR, None)
        )
        rule = RuleRepository(registry).rule_for("opaque_stat")
        assert rule.kind is RuleKind.INVALIDATE
        assert isinstance(rule, InvalidateRule)

    def test_synthesized_quantiles_default_incremental(self, registry):
        repo = RuleRepository(registry)
        assert repo.rule_for("quantile_90").kind is RuleKind.INCREMENTAL

    def test_override_survives_describe(self, registry):
        repo = RuleRepository(registry)
        repo.set_rule("mean", RuleKind.INVALIDATE)
        assert repo.describe()["mean"] == "invalidate"
