"""Tests for the Management Database."""

import pytest

from repro.core.errors import MetadataError
from repro.metadata.management import ManagementDatabase
from repro.summary.policies import PrecisePolicy, TolerantPolicy
from repro.views.history import UpdateHistory
from repro.views.materialize import SourceNode, ViewDefinition


def defn(name="v"):
    return ViewDefinition(name, SourceNode("census"))


class TestViews:
    def test_register_and_lookup(self):
        mdb = ManagementDatabase()
        history = UpdateHistory("v")
        mdb.register_view(defn(), history)
        assert mdb.view_definition("v").canonical() == "source(census)"
        assert mdb.view_history("v") is history
        assert mdb.view_names() == ["v"]

    def test_duplicate_rejected(self):
        mdb = ManagementDatabase()
        mdb.register_view(defn(), UpdateHistory("v"))
        with pytest.raises(MetadataError, match="already"):
            mdb.register_view(defn(), UpdateHistory("v"))

    def test_drop(self):
        mdb = ManagementDatabase()
        mdb.register_view(defn(), UpdateHistory("v"))
        mdb.set_policy("alice", "v", PrecisePolicy())
        mdb.drop_view("v")
        assert mdb.view_names() == []
        with pytest.raises(MetadataError):
            mdb.view_definition("v")

    def test_missing_lookups(self):
        mdb = ManagementDatabase()
        with pytest.raises(MetadataError):
            mdb.view_definition("x")
        with pytest.raises(MetadataError):
            mdb.view_history("x")


class TestPolicies:
    def test_specific_policy_wins(self):
        mdb = ManagementDatabase()
        tolerant = TolerantPolicy(max_staleness=3)
        mdb.set_policy("alice", "v", tolerant)
        assert mdb.policy_for("alice", "v") is tolerant
        # Another analyst on the same view gets the default.
        assert mdb.policy_for("bob", "v") is not tolerant

    def test_default_policy(self):
        mdb = ManagementDatabase()
        assert mdb.policy_for("anyone", "anyview").name == "precise"
        custom = TolerantPolicy()
        mdb.set_default_policy(custom)
        assert mdb.policy_for("anyone", "anyview") is custom


class TestDescribe:
    def test_inventory(self):
        mdb = ManagementDatabase()
        mdb.register_view(defn(), UpdateHistory("v"))
        mdb.set_policy("alice", "v", PrecisePolicy())
        info = mdb.describe()
        assert "mean" in info["functions"]
        assert info["rules"]["mean"] == "incremental"
        assert info["views"] == ["v"]
        assert info["policies"] == {"alice/v": "precise"}

    def test_force_rule_mode(self):
        from repro.metadata.rules import RuleKind

        mdb = ManagementDatabase(force_rule_mode=RuleKind.INVALIDATE)
        assert mdb.rules.describe()["mean"] == "invalidate"
