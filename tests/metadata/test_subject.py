"""Tests for SUBJECT-style meta-data navigation."""

import pytest

from repro.core.errors import MetadataError
from repro.metadata.subject import ROOT, MetaGraph, NavigationSession


@pytest.fixture()
def graph():
    g = MetaGraph()
    g.add_topic("demographics")
    g.add_topic("economics")
    g.add_topic("age", parent="demographics")
    g.add_attribute("AGE", dataset="census_micro", parent="age")
    g.add_attribute("AGE_GROUP", dataset="census_summary", parent="age")
    g.add_attribute("SEX", dataset="census_micro", parent="demographics")
    g.add_attribute("INCOME", dataset="census_micro", parent="economics")
    return g


class TestGraph:
    def test_children_sorted(self, graph):
        assert graph.children(ROOT) == ["demographics", "economics"]
        assert graph.children("demographics") == ["SEX", "age"]

    def test_attributes_under(self, graph):
        assert graph.attributes_under("demographics") == ["AGE", "AGE_GROUP", "SEX"]
        assert graph.attributes_under("economics") == ["INCOME"]

    def test_dataset_of(self, graph):
        assert graph.dataset_of("AGE") == "census_micro"
        with pytest.raises(MetadataError):
            graph.dataset_of("demographics")

    def test_duplicate_node_rejected(self, graph):
        with pytest.raises(MetadataError, match="already exists"):
            graph.add_topic("demographics")

    def test_attribute_parent_must_be_topic(self, graph):
        with pytest.raises(MetadataError, match="not a topic"):
            graph.add_attribute("X", dataset="d", parent="AGE")

    def test_dag_links_allowed(self, graph):
        graph.link("economics", "AGE")  # age matters to economists too
        assert "AGE" in graph.attributes_under("economics")

    def test_cycles_rejected(self, graph):
        graph.add_topic("inner", parent="demographics")
        with pytest.raises(MetadataError, match="acyclic"):
            graph.link("inner", "demographics")

    def test_remove_node(self, graph):
        graph.remove_node("INCOME")
        assert graph.attributes_under("economics") == []
        with pytest.raises(MetadataError):
            graph.remove_node(ROOT)
        with pytest.raises(MetadataError):
            graph.remove_node("INCOME")


class TestNavigation:
    def test_descend_and_select(self, graph):
        session = NavigationSession(graph)
        session.descend("demographics")
        session.descend("age")
        added = session.select()
        assert set(added) == {"AGE", "AGE_GROUP"}
        assert session.path == [ROOT, "demographics", "age"]

    def test_wrong_descent_rejected(self, graph):
        session = NavigationSession(graph)
        with pytest.raises(MetadataError, match="not a child"):
            session.descend("age")  # two levels down

    def test_ascend(self, graph):
        session = NavigationSession(graph)
        session.descend("demographics")
        session.ascend()
        assert session.position == ROOT
        with pytest.raises(MetadataError):
            session.ascend()

    def test_select_specific(self, graph):
        session = NavigationSession(graph)
        session.descend("demographics")
        assert session.select("SEX") == ["SEX"]
        assert session.select("SEX") == []  # already selected

    def test_view_requests_grouped_by_dataset(self, graph):
        """SUBJECT 'can generate requests to the DBMS for the view

        described by his path' (SS2.3)."""
        session = NavigationSession(graph)
        session.descend("demographics")
        session.select()
        session.ascend()
        session.descend("economics")
        session.select()
        requests = session.view_requests()
        by_dataset = {r.dataset: r.attributes for r in requests}
        assert set(by_dataset) == {"census_micro", "census_summary"}
        assert set(by_dataset["census_micro"]) == {"AGE", "SEX", "INCOME"}
        assert by_dataset["census_summary"] == ("AGE_GROUP",)


class TestViewRequestToDefinition:
    def test_navigation_to_materialized_view(self, graph):
        """SUBJECT path -> ViewRequest -> ViewDefinition -> concrete view."""
        from repro.core.dbms import StatisticalDBMS
        from repro.workloads.census import generate_microdata

        session = NavigationSession(graph)
        session.descend("economics")
        session.select()
        request = session.view_requests()[0]
        definition = request.to_definition("econ_view")
        assert definition.sources() == {"census_micro"}

        dbms = StatisticalDBMS()
        dbms.load_raw(generate_microdata(200, seed=9))
        created = dbms.create_view(definition, analyst="navigator")
        assert created.view.schema.names == list(request.attributes)
        assert len(created.view) == 200
