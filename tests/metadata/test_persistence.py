"""Tests for Management Database persistence."""

import json

import pytest

from repro.core.errors import MetadataError
from repro.metadata.management import ManagementDatabase
from repro.metadata.persistence import (
    defnode_from_dict,
    defnode_to_dict,
    definition_from_dict,
    definition_to_dict,
    dump_management,
    expr_from_dict,
    expr_to_dict,
    history_from_dict,
    history_to_dict,
    load_management,
    management_from_dict,
    management_to_dict,
    policy_from_dict,
    policy_to_dict,
    value_from_jsonable,
    value_to_jsonable,
)
from repro.metadata.rules import RuleKind
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import col, func
from repro.relational.types import NA
from repro.summary.policies import PeriodicPolicy, PrecisePolicy, TolerantPolicy
from repro.views.history import CellChange, OpKind, UpdateHistory
from repro.views.materialize import (
    AggregateNode,
    JoinNode,
    ProjectNode,
    SelectNode,
    SourceNode,
    ViewDefinition,
)
from repro.workloads.census import age_group_codebook


class TestValues:
    def test_na_roundtrip(self):
        assert value_from_jsonable(value_to_jsonable(NA)) is NA

    def test_scalars_roundtrip(self):
        for v in (1, 2.5, "s", True, None):
            assert value_from_jsonable(value_to_jsonable(v)) == v

    def test_unpersistable_rejected(self):
        with pytest.raises(MetadataError):
            value_to_jsonable(object())


class TestExpressions:
    @pytest.mark.parametrize(
        "expr",
        [
            col("A") > 5,
            (col("A") + col("B") * 2) <= 10,
            (col("A") == "x") & ~(col("B") != 1),
            (col("A") > 0) | col("B").is_na(),
            col("A").is_in([1, 2, 3]),
            col("A").between(0, 100),
            func("log", col("A") + 1) > 2,
        ],
    )
    def test_roundtrip_via_canonical(self, expr):
        data = expr_to_dict(expr)
        json.dumps(data)  # must be JSON-able
        restored = expr_from_dict(data)
        assert restored.canonical() == expr.canonical()

    def test_restored_expression_evaluates(self):
        from repro.relational.schema import Schema, measure

        schema = Schema([measure("A"), measure("B")])
        expr = (col("A") * 2 + col("B")) > 10
        restored = expr_from_dict(expr_to_dict(expr))
        test = restored.bind(schema)
        assert test((5.0, 1.0)) and not test((1.0, 1.0))

    def test_unknown_node_rejected(self):
        with pytest.raises(MetadataError):
            expr_from_dict({"node": "mystery"})


class TestDefinitions:
    def test_full_tree_roundtrip(self):
        node = AggregateNode(
            JoinNode(
                SelectNode(SourceNode("census"), col("SEX") == "M"),
                ProjectNode(SourceNode("codes"), ("CATEGORY", "VALUE")),
                ("AGE_GROUP",),
                ("CATEGORY",),
            ),
            ("RACE",),
            (AggregateSpec("weighted_avg", "AVE_SALARY", "S", weight="POPULATION"),),
        )
        definition = ViewDefinition("v", node)
        data = definition_to_dict(definition)
        json.dumps(data)
        restored = definition_from_dict(data)
        assert restored.canonical() == definition.canonical()
        assert restored.name == "v"

    def test_unknown_node_rejected(self):
        with pytest.raises(MetadataError):
            defnode_from_dict({"node": "weird"})


class TestHistories:
    def test_roundtrip_with_na(self):
        history = UpdateHistory("v")
        history.record(
            OpKind.UPDATE, "x", [CellChange(0, 1.0, 2.0), CellChange(3, NA, 5.0)]
        )
        history.record(OpKind.INVALIDATE, "y", [CellChange(1, 9.0, NA)])
        data = history_to_dict(history)
        json.dumps(data)
        restored = history_from_dict(data)
        assert restored.version == 2
        ops = restored.operations()
        assert ops[0].changes[1].old is NA
        assert ops[1].changes[0].new is NA
        assert ops[1].kind is OpKind.INVALIDATE

    def test_restored_history_undoes(self):
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema, measure

        relation = Relation("r", Schema([measure("x")]), [(1.0,), (2.0,)])
        history = UpdateHistory("r")
        old = relation.set_value(0, "x", 9.0)
        history.record(OpKind.UPDATE, "x", [CellChange(0, old, 9.0)])
        restored = history_from_dict(history_to_dict(history))
        restored.undo_last(relation, 1)
        assert relation.row(0) == (1.0,)


class TestPolicies:
    @pytest.mark.parametrize(
        "policy,expect",
        [
            (PrecisePolicy(), {"name": "precise"}),
            (PeriodicPolicy(period=7), {"name": "periodic", "period": 7}),
            (TolerantPolicy(max_staleness=2), {"name": "tolerant", "max_staleness": 2}),
        ],
    )
    def test_roundtrip(self, policy, expect):
        data = policy_to_dict(policy)
        assert data == expect
        restored = policy_from_dict(data)
        assert restored.name == policy.name


class TestWholeManagementDatabase:
    def make_loaded(self):
        management = ManagementDatabase()
        management.rules.set_rule("median", RuleKind.INVALIDATE)
        management.codebooks.register(age_group_codebook())
        definition = ViewDefinition(
            "study", SelectNode(SourceNode("census"), col("AGE") > 10)
        )
        history = UpdateHistory("study")
        history.record(OpKind.UPDATE, "AGE", [CellChange(0, 5, 15)])
        management.register_view(definition, history)
        management.set_policy("alice", "study", TolerantPolicy(max_staleness=3))
        management.metagraph.add_topic("demographics")
        management.metagraph.add_attribute("AGE", "census", "demographics")
        return management

    def test_dict_roundtrip(self):
        original = self.make_loaded()
        data = management_to_dict(original)
        json.dumps(data)
        restored = management_from_dict(data)
        assert restored.rules.describe()["median"] == "invalidate"
        assert restored.codebooks.get("AGE_GROUP").decode(4) == "over 60"
        assert restored.view_definition("study").canonical() == (
            original.view_definition("study").canonical()
        )
        assert restored.view_history("study").version == 1
        assert restored.policy_for("alice", "study").max_staleness == 3
        assert restored.policy_for("bob", "study").name == "precise"
        assert restored.metagraph.attributes_under("demographics") == ["AGE"]

    def test_file_roundtrip(self, tmp_path):
        original = self.make_loaded()
        path = str(tmp_path / "management.json")
        dump_management(original, path)
        restored = load_management(path)
        assert restored.view_names() == ["study"]
        assert restored.describe()["rules"]["median"] == "invalidate"
