"""Tests for code books (Figure 2) and edition inconsistency detection."""

import pytest

from repro.core.errors import CodebookError
from repro.metadata.codebook import CodeBook, CodeBookRegistry, detect_inconsistencies
from repro.relational.operators import HashJoin
from repro.relational.types import NA
from repro.workloads.census import (
    age_group_codebook,
    age_group_codebook_1980,
    figure1_dataset,
)


class TestCodeBook:
    def test_decode_encode(self):
        book = age_group_codebook()
        assert book.decode(2) == "21 to 40"
        assert book.encode("over 60") == 4

    def test_unknown_code(self):
        with pytest.raises(CodebookError, match="not in code book"):
            age_group_codebook().decode(9)

    def test_unknown_label(self):
        with pytest.raises(CodebookError):
            age_group_codebook().encode("centenarians")

    def test_decode_na_rejected(self):
        with pytest.raises(CodebookError):
            age_group_codebook().decode(NA)

    def test_decode_column(self):
        got = age_group_codebook().decode_column([1, 1, 4])
        assert got == ["0 to 20", "0 to 20", "over 60"]

    def test_validation(self):
        with pytest.raises(CodebookError):
            CodeBook("x", {})
        with pytest.raises(CodebookError):
            CodeBook("x", {"a": "b"})  # type: ignore[dict-item]
        with pytest.raises(CodebookError):
            CodeBook("x", {1: ""})
        with pytest.raises(CodebookError, match="duplicate labels"):
            CodeBook("x", {1: "same", 2: "same"})

    def test_len_repr(self):
        book = age_group_codebook()
        assert len(book) == 4
        assert "AGE_GROUP" in repr(book)


class TestRelationalDecode:
    def test_figure2_to_relation(self):
        rel = age_group_codebook().to_relation()
        assert rel.schema.names == ["CATEGORY", "VALUE"]
        assert len(rel) == 4

    def test_join_decodes_figure1(self):
        """SS2.4: 'simply being able to join the table in Figure 2 with

        the table in Figure 1 to decode AGE_GROUP values'."""
        census = figure1_dataset()
        codes = age_group_codebook().to_relation()
        joined = HashJoin(census, codes, ["AGE_GROUP"], ["CATEGORY"]).rows()
        assert len(joined) == 9
        value_index = len(census.schema) + 1
        decoded = {row[2]: row[value_index] for row in joined}
        assert decoded[1] == "0 to 20" and decoded[4] == "over 60"


class TestEditions:
    def test_detect_inconsistencies(self):
        conflicts = detect_inconsistencies(age_group_codebook(), age_group_codebook_1980())
        kinds = {(c.code, c.kind) for c in conflicts}
        assert (1, "relabeled") in kinds
        assert (5, "only_in_second") in kinds
        assert len(conflicts) == 5  # all four relabeled + one new

    def test_identical_editions_clean(self):
        assert detect_inconsistencies(age_group_codebook(), age_group_codebook("2")) == []

    def test_different_books_rejected(self):
        other = CodeBook("RACE", {1: "x"})
        with pytest.raises(CodebookError, match="different code books"):
            detect_inconsistencies(age_group_codebook(), other)


class TestRegistry:
    def test_register_and_get(self):
        reg = CodeBookRegistry()
        reg.register(age_group_codebook())
        reg.register(age_group_codebook_1980())
        assert reg.get("AGE_GROUP", "1970").decode(1) == "0 to 20"
        assert reg.get("AGE_GROUP").edition == "1980"  # latest
        assert reg.editions_of("AGE_GROUP") == ["1970", "1980"]
        assert reg.names() == ["AGE_GROUP"]

    def test_duplicate_edition_rejected(self):
        reg = CodeBookRegistry()
        reg.register(age_group_codebook())
        with pytest.raises(CodebookError, match="already registered"):
            reg.register(age_group_codebook())

    def test_missing(self):
        reg = CodeBookRegistry()
        with pytest.raises(CodebookError):
            reg.get("AGE_GROUP")
        reg.register(age_group_codebook())
        with pytest.raises(CodebookError):
            reg.get("AGE_GROUP", "1999")
