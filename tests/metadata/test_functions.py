"""Tests for the statistical function registry."""

import pytest

from repro.core.errors import FunctionError
from repro.metadata.functions import FunctionRegistry, ResultKind
from repro.relational.schema import category, measure
from repro.relational.types import NA, DataType

DATA = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0]


@pytest.fixture()
def registry():
    return FunctionRegistry()


class TestResolution:
    def test_known_functions_present(self, registry):
        for name in ("min", "max", "mean", "std", "median", "count", "mode"):
            assert name in registry
            assert registry.get(name).name == name

    def test_quantile_synthesis(self, registry):
        fn = registry.get("quantile_95")
        assert fn.result_kind is ResultKind.SCALAR
        values = list(range(101))
        assert fn.compute(values) == pytest.approx(95.0)

    def test_quantile_maintainer(self, registry):
        fn = registry.get("quantile_25")
        maintainer = fn.make_maintainer(lambda: DATA)
        import numpy as np

        assert maintainer.value == pytest.approx(float(np.quantile(DATA, 0.25)))

    def test_unknown_rejected(self, registry):
        with pytest.raises(FunctionError, match="unknown"):
            registry.get("kurtosis")
        assert "kurtosis" not in registry

    def test_register_custom(self, registry):
        from repro.metadata.functions import StatFunction

        registry.register(
            StatFunction("always_seven", lambda values: 7.0, ResultKind.SCALAR)
        )
        assert registry.get("always_seven").compute([1]) == 7.0


class TestComputation:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("count", 6.0),
            ("sum", 108.0),
            ("min", 4.0),
            ("max", 42.0),
            ("mean", 18.0),
            ("unique_count", 6.0),
        ],
    )
    def test_compute(self, registry, name, expected):
        assert registry.get(name).compute(DATA) == pytest.approx(expected)

    def test_na_count(self, registry):
        assert registry.get("na_count").compute([1.0, NA, NA]) == 2.0

    def test_histogram_two_vectors(self, registry):
        edges, counts = registry.get("histogram").compute(DATA)
        assert len(edges) == len(counts) + 1
        assert sum(counts) == 6


class TestMaintainers:
    @pytest.mark.parametrize(
        "name", ["count", "sum", "mean", "var", "std", "min", "max", "median",
                  "mode", "unique_count", "na_count", "histogram"]
    )
    def test_maintainer_matches_compute(self, registry, name):
        fn = registry.get(name)
        assert fn.is_incremental
        maintainer = fn.make_maintainer(lambda: DATA)
        computed = fn.compute(DATA)
        maintained = maintainer.value
        if name == "histogram":
            assert sum(maintained[1]) == sum(computed[1])
        else:
            assert maintained == pytest.approx(computed)

    def test_non_incremental_functions(self, registry):
        for name in ("trimmed_mean", "iqr", "mad"):
            fn = registry.get(name)
            assert not fn.is_incremental
            with pytest.raises(FunctionError):
                fn.make_maintainer(lambda: DATA)

    def test_maintainer_tracks_updates(self, registry):
        fn = registry.get("mean")
        work = list(DATA)
        maintainer = fn.make_maintainer(lambda: work)
        maintainer.on_update(4.0, 10.0)
        work[0] = 10.0
        assert maintainer.value == pytest.approx(sum(work) / len(work))


class TestApplicability:
    def test_numeric_on_category_rejected(self, registry):
        """SS3.2: the median of AGE_GROUP makes no sense."""
        age_group = category("AGE_GROUP", DataType.CATEGORY)
        assert not registry.get("median").applicable_to(age_group)
        assert not registry.get("mean").applicable_to(age_group)

    def test_counts_fine_on_category(self, registry):
        age_group = category("AGE_GROUP", DataType.CATEGORY)
        assert registry.get("count").applicable_to(age_group)
        assert registry.get("mode").applicable_to(age_group)
        assert registry.get("unique_count").applicable_to(age_group)

    def test_measures_accept_everything(self, registry):
        salary = measure("SALARY", DataType.FLOAT)
        for name in registry.names():
            assert registry.get(name).applicable_to(salary)
