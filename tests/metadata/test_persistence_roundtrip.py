"""Round-trip regressions for the persistence codec the WAL depends on.

The durability layer serializes operations and histories with the same
functions as Management Database snapshots; these tests pin the edge cases
a crash-recovery cycle must survive: NA transitions in either direction,
empty histories, burned (undone) version numbers, and JSON transport.
"""

import json

import pytest

from repro.core.errors import MetadataError
from repro.metadata.persistence import (
    history_from_dict,
    history_to_dict,
    operation_from_dict,
    operation_to_dict,
    value_from_jsonable,
    value_to_jsonable,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import NA, DataType, is_na
from repro.views.history import CellChange, OpKind, UpdateHistory


def through_json(data):
    """Simulate the WAL/snapshot transport: a real JSON round trip."""
    return json.loads(json.dumps(data))


# -- cell values -------------------------------------------------------------


@pytest.mark.parametrize(
    "value", [0, -7, 3.25, -1e300, "", "text", True, False, None]
)
def test_plain_values_round_trip(value):
    assert value_from_jsonable(through_json(value_to_jsonable(value))) == value


def test_na_round_trips_explicitly():
    encoded = through_json(value_to_jsonable(NA))
    assert encoded == {"__na__": True}
    assert is_na(value_from_jsonable(encoded))


def test_unpersistable_values_are_rejected():
    with pytest.raises(MetadataError):
        value_to_jsonable(object())


# -- operations --------------------------------------------------------------


def test_operation_with_na_transitions_round_trips():
    operation = UpdateHistory("v").record(
        OpKind.INVALIDATE,
        "x",
        [
            CellChange(row=0, old=4.5, new=NA),  # value invalidated
            CellChange(row=3, old=NA, new=2.0),  # NA repaired
            CellChange(row=5, old=NA, new=NA),
        ],
        description="suspicious ages",
    )
    restored = operation_from_dict(through_json(operation_to_dict(operation)))
    assert restored.version == operation.version
    assert restored.kind is OpKind.INVALIDATE
    assert restored.attribute == "x"
    assert restored.description == "suspicious ages"
    assert restored.changes[0].old == 4.5 and is_na(restored.changes[0].new)
    assert is_na(restored.changes[1].old) and restored.changes[1].new == 2.0
    assert is_na(restored.changes[2].old) and is_na(restored.changes[2].new)


def test_operation_with_no_changes_round_trips():
    operation = UpdateHistory("v").record(OpKind.UPDATE, "x", [])
    restored = operation_from_dict(through_json(operation_to_dict(operation)))
    assert restored.changes == ()
    assert restored.cells_changed == 0


def test_operation_description_defaults_when_absent():
    data = operation_to_dict(UpdateHistory("v").record(OpKind.UPDATE, "x", []))
    del data["description"]
    assert operation_from_dict(data).description == ""


# -- histories ---------------------------------------------------------------


def test_empty_history_round_trips():
    history = UpdateHistory("fresh")
    restored = history_from_dict(through_json(history_to_dict(history)))
    assert restored.view_name == "fresh"
    assert len(restored) == 0
    assert restored.version == 0
    # The next recorded operation starts at v1, exactly as live.
    assert restored.record(OpKind.UPDATE, "x", []).version == 1


def test_history_with_burned_versions_keeps_the_high_water_mark():
    """Undo burns versions; the snapshot must not hand them out again."""
    schema = Schema([Attribute("x", DataType.FLOAT)])
    relation = Relation("v", schema, [[1.0], [2.0]])
    history = UpdateHistory("v")
    for version in (1, 2, 3):
        old = relation.set_value(0, "x", float(version * 10))
        history.record(
            OpKind.UPDATE, "x", [CellChange(0, old, float(version * 10))]
        )
    history.undo_last(relation, 2)  # burns v2 and v3
    assert history.version == 3 and len(history) == 1

    restored = history_from_dict(through_json(history_to_dict(history)))
    assert len(restored) == 1
    assert restored.version == 3
    assert restored.record(OpKind.UPDATE, "x", []).version == 4


def test_empty_history_with_burned_versions_survives_management_snapshot():
    """The management-level restore must not drop an empty-but-burned history.

    After every operation is undone the history has len() == 0 — falsy —
    yet its high-water mark matters; a truthiness shortcut in
    ``management_from_dict`` used to replace it with a fresh version-0
    history, reissuing burned versions after recovery.
    """
    from repro.metadata.management import ManagementDatabase
    from repro.metadata.persistence import management_from_dict, management_to_dict
    from repro.views.materialize import SourceNode, ViewDefinition

    schema = Schema([Attribute("x", DataType.FLOAT)])
    relation = Relation("v", schema, [[1.0]])
    history = UpdateHistory("v")
    old = relation.set_value(0, "x", 9.0)
    history.record(OpKind.UPDATE, "x", [CellChange(0, old, 9.0)])
    history.undo_last(relation, 1)  # burns v1; history now empty
    management = ManagementDatabase()
    management.register_view(ViewDefinition("v", SourceNode("raw")), history)

    restored = management_from_dict(through_json(management_to_dict(management)))
    recovered_history = restored.view_history("v")
    assert len(recovered_history) == 0
    assert recovered_history.version == 1
    assert recovered_history.record(OpKind.UPDATE, "x", []).version == 2


def test_legacy_snapshot_without_next_version_still_loads():
    history = UpdateHistory("v")
    history.record(OpKind.UPDATE, "x", [CellChange(0, 1.0, 2.0)])
    data = history_to_dict(history)
    del data["next_version"]  # pre-durability snapshot shape
    restored = history_from_dict(data)
    assert restored.version == 1
    assert restored.record(OpKind.UPDATE, "x", []).version == 2


def test_history_operations_survive_na_and_order():
    history = UpdateHistory("v")
    history.record(OpKind.UPDATE, "a", [CellChange(0, NA, 5.0)])
    history.record(OpKind.INVALIDATE, "b", [CellChange(1, 7.0, NA)])
    restored = history_from_dict(through_json(history_to_dict(history)))
    kinds = [op.kind for op in restored.operations()]
    assert kinds == [OpKind.UPDATE, OpKind.INVALIDATE]
    assert restored.operations_since(1)[0].attribute == "b"


def test_restore_rejects_version_regressions():
    from repro.core.errors import HistoryError

    history = UpdateHistory("v")
    operation = history.record(OpKind.UPDATE, "x", [])
    with pytest.raises(HistoryError):
        history.restore(operation)  # v1 <= current high-water mark
