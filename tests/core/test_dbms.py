"""Tests for the StatisticalDBMS facade (Figure 3)."""

import pytest

from repro.core.accuracy import AccuracyLevel, AccuracyPreference
from repro.core.dbms import StatisticalDBMS
from repro.core.errors import ViewError
from repro.relational.expressions import col
from repro.views.materialize import ProjectNode, SelectNode, SourceNode, ViewDefinition
from repro.workloads.census import figure1_dataset, generate_microdata


@pytest.fixture()
def dbms():
    db = StatisticalDBMS()
    db.load_raw(figure1_dataset("census"))
    db.load_raw(generate_microdata(500, seed=5, name="micro"))
    return db


class TestViewLifecycle:
    def test_materialize_from_tape(self, dbms):
        created = dbms.create_view(ViewDefinition("v", SourceNode("census")))
        assert created.from_tape
        assert len(created.view) == 9
        assert dbms.views_materialized == 1

    def test_identical_request_reuses(self, dbms):
        dbms.create_view(ViewDefinition("v1", SourceNode("census")), analyst="a")
        tape_before = dbms.raw.tape.stats.blocks_streamed
        created = dbms.create_view(ViewDefinition("v2", SourceNode("census")), analyst="b")
        assert created.reused is not None and created.reused.kind == "identical"
        assert created.view.name == "v1"
        assert dbms.raw.tape.stats.blocks_streamed == tape_before  # no tape
        assert dbms.views_reused == 1

    def test_derivable_request_avoids_tape(self, dbms):
        dbms.create_view(ViewDefinition("base", SourceNode("micro")))
        tape_before = dbms.raw.tape.stats.blocks_streamed
        created = dbms.create_view(
            ViewDefinition(
                "elders", SelectNode(SourceNode("micro"), col("AGE") > 60)
            )
        )
        assert created.reused is not None and created.reused.kind == "derivable"
        assert not created.from_tape
        assert dbms.raw.tape.stats.blocks_streamed == tape_before
        assert all(row[4] > 60 for row in created.view.relation)

    def test_allow_duplicate_forces_tape(self, dbms):
        dbms.create_view(ViewDefinition("v1", SourceNode("census")))
        created = dbms.create_view(
            ViewDefinition("v2", SourceNode("census")), allow_duplicate=True
        )
        assert created.from_tape
        assert dbms.views_materialized == 2

    def test_duplicate_name_rejected(self, dbms):
        dbms.create_view(ViewDefinition("v", SourceNode("census")))
        with pytest.raises(ViewError, match="already in use"):
            dbms.create_view(
                ViewDefinition("v", SourceNode("micro")), allow_duplicate=True
            )

    def test_drop_view(self, dbms):
        dbms.create_view(ViewDefinition("v", SourceNode("census")))
        dbms.drop_view("v")
        assert "v" not in dbms.registry.names()
        assert dbms.management.view_names() == []

    def test_storage_mirrors(self):
        db = StatisticalDBMS(use_storage_mirrors=True)
        db.load_raw(figure1_dataset("census"))
        created = db.create_view(ViewDefinition("v", SourceNode("census")))
        assert created.view.storage is not None
        assert len(created.view.storage) == 9


class TestSessions:
    def test_session_computes(self, dbms):
        dbms.create_view(ViewDefinition("v", SourceNode("micro")))
        session = dbms.session("v", analyst="alice")
        assert session.compute("count", "INCOME") == 500

    def test_accuracy_preference_applied(self, dbms):
        pref = AccuracyPreference(AccuracyLevel.TOLERANT, parameter=3)
        dbms.create_view(
            ViewDefinition("v", SourceNode("micro")), analyst="alice", accuracy=pref
        )
        session = dbms.session("v", analyst="alice")
        assert session.policy.name == "tolerant"
        other = dbms.session("v", analyst="bob")
        assert other.policy.name == "precise"


class TestPublishing:
    def test_publish_and_adopt(self, dbms):
        dbms.create_view(ViewDefinition("v", SourceNode("micro")), analyst="alice")
        alice = dbms.session("v", analyst="alice")
        alice.mark_invalid("AGE", predicate=col("AGE") > 150)
        dbms.publish("v", publisher="alice")
        adopted = dbms.adopt_published("v", "v_bob", analyst="bob")
        from repro.relational.types import is_na

        bad_rows = [i for i, v in enumerate(adopted.relation.column("AGE")) if is_na(v)]
        assert bad_rows  # bob inherits alice's cleaning
        assert adopted.owner == "bob"
        # Bob's view is private: his changes do not reach alice's.
        adopted.set_value(0, "INCOME", -1.0)
        assert dbms.view("v").relation.column("INCOME")[0] != -1.0

    def test_describe(self, dbms):
        dbms.create_view(ViewDefinition("v", SourceNode("census")))
        info = dbms.describe()
        assert info["views"] == ["v"]
        assert info["views_materialized"] == 1
        assert "census" in info["raw_datasets"]


class TestAccuracyPreferences:
    def test_to_policy_mapping(self):
        from repro.core.accuracy import AccuracyPreference

        assert AccuracyPreference(AccuracyLevel.PRECISE).to_policy().name == "precise"
        assert AccuracyPreference(AccuracyLevel.LAZY).to_policy().name == "invalidate"
        periodic = AccuracyPreference(AccuracyLevel.PERIODIC, parameter=4).to_policy()
        assert periodic.period == 4
        tolerant = AccuracyPreference(AccuracyLevel.TOLERANT, parameter=2).to_policy()
        assert tolerant.max_staleness == 2

    def test_validation(self):
        from repro.core.errors import AccuracyError

        with pytest.raises(AccuracyError):
            AccuracyPreference(AccuracyLevel.PERIODIC, parameter=0).to_policy()
        with pytest.raises(AccuracyError):
            AccuracyPreference(AccuracyLevel.TOLERANT, parameter=-1).to_policy()
