"""Tests for analyst sessions: the cached compute/update/undo loop."""

import statistics

import pytest

from repro.core.errors import FunctionError
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.relational.expressions import col
from repro.relational.relation import Relation
from repro.relational.types import is_na
from repro.views.history import CellChange, OpKind
from repro.views.view import ConcreteView
from repro.workloads.census import generate_microdata


@pytest.fixture()
def session():
    management = ManagementDatabase()
    relation = generate_microdata(2000, seed=11, bad_value_rate=0.0)
    view = ConcreteView("income_study", relation)
    return AnalystSession(management, view, analyst="bates")


def true_column(session, attr):
    return [v for v in session.view.relation.column(attr) if not is_na(v)]


class TestCachedCompute:
    def test_miss_then_hit(self, session):
        first = session.compute("median", "INCOME")
        second = session.compute("median", "INCOME")
        assert first == second
        assert session.stats.queries == 2
        assert session.stats.cache_hits == 1
        assert session.cache_stats.hits == 1

    def test_hit_scans_no_rows(self, session):
        session.compute("mean", "INCOME")
        scanned = session.stats.rows_scanned
        session.compute("mean", "INCOME")
        assert session.stats.rows_scanned == scanned

    def test_values_correct(self, session):
        income = true_column(session, "INCOME")
        assert session.compute("mean", "INCOME") == pytest.approx(statistics.fmean(income))
        assert session.compute("median", "INCOME") == pytest.approx(statistics.median(income))
        assert session.compute("min", "AGE") == min(true_column(session, "AGE"))

    def test_quantiles(self, session):
        import numpy as np

        income = true_column(session, "INCOME")
        assert session.compute("quantile_95", "INCOME") == pytest.approx(
            float(np.quantile(income, 0.95))
        )

    def test_category_attribute_rejected(self, session):
        """SS3.2: summary values of encoded categories make no sense."""
        with pytest.raises(FunctionError, match="not meaningful"):
            session.compute("median", "RACE")
        # ... but counting them is fine, and force overrides.
        session.compute("unique_count", "RACE")
        session.compute("median", "RACE", force=True)

    def test_sampled_compute_uncached(self, session):
        full = session.compute("mean", "INCOME")
        sampled = session.compute("mean", "INCOME", sample=0.05, seed=3)
        assert session.stats.sampled_queries == 1
        assert abs(sampled - full) / full < 0.25  # rough but in the ballpark
        # Sampling never pollutes the cache.
        assert session.view.summary.lookup("mean", "INCOME").result == pytest.approx(full)

    def test_pair_functions_cached(self, session):
        first = session.compute_pair("pearson", "INCOME", "YEARS_EDUCATION")
        second = session.compute_pair("pearson", "INCOME", "YEARS_EDUCATION")
        assert first == second
        assert session.stats.cache_hits == 1
        assert first > 0.1  # education drives income in the generator

    def test_unknown_pair_function(self, session):
        with pytest.raises(FunctionError):
            session.compute_pair("mutual_information", "AGE", "INCOME")

    def test_summary_of_block(self, session):
        block = session.summary_of("INCOME")
        assert set(block) >= {"count", "min", "max", "mean", "std", "median"}
        # All cached now: repeating is free.
        scanned = session.stats.rows_scanned
        session.summary_of("INCOME")
        assert session.stats.rows_scanned == scanned


class TestUpdatePropagation:
    def test_incremental_exactness(self, session):
        session.compute("mean", "INCOME")
        session.compute("std", "INCOME")
        session.compute("median", "INCOME")
        session.update_cells("INCOME", [(10, 99999.0), (20, 1.0)])
        income = true_column(session, "INCOME")
        assert session.compute("mean", "INCOME") == pytest.approx(statistics.fmean(income))
        assert session.compute("std", "INCOME") == pytest.approx(statistics.stdev(income))
        assert session.compute("median", "INCOME") == pytest.approx(statistics.median(income))
        # All three answered without recomputation.
        assert session.cache_stats.recomputations == 0
        assert session.cache_stats.incremental_updates > 0

    def test_predicate_update(self, session):
        session.compute("max", "HOURS_WORKED")
        report = session.update(col("HOURS_WORKED") > 70, {"HOURS_WORKED": 70.0})
        assert report.entries_visited >= 1
        assert session.compute("max", "HOURS_WORKED") == 70.0

    def test_update_only_touches_affected_attribute(self, session):
        session.compute("mean", "INCOME")
        session.compute("mean", "AGE")
        report = session.update_cells("AGE", [(0, 55)])
        assert report.attributes == ["AGE"]
        assert report.entries_visited == 1

    def test_mark_invalid_flows_to_na_count(self, session):
        session.compute("na_count", "AGE")
        session.mark_invalid("AGE", predicate=col("AGE") > 80)
        expected = sum(1 for v in session.view.relation.column("AGE") if is_na(v))
        assert session.compute("na_count", "AGE") == expected
        assert expected > 0

    def test_pair_entries_invalidated_on_update(self, session):
        session.compute_pair("pearson", "INCOME", "YEARS_EDUCATION")
        session.update_cells("YEARS_EDUCATION", [(5, 20)])
        entry = session.view.summary.peek("pearson", ("INCOME", "YEARS_EDUCATION"))
        assert entry.stale
        value = session.compute_pair("pearson", "INCOME", "YEARS_EDUCATION")
        from repro.stats.correlation import pearson

        assert value == pytest.approx(
            pearson(
                session.view.relation.column("INCOME"),
                session.view.relation.column("YEARS_EDUCATION"),
            )
        )


class TestRowsFromHistoryMerge:
    """Regression: several operations in one update window may touch the
    same attribute; their row lists must merge instead of the later
    operation silently replacing the earlier one's rows."""

    def test_rows_merge_across_operations(self, session):
        history = session.view.history
        history.record(
            OpKind.UPDATE, "AGE", [CellChange(1, 30, 31), CellChange(2, 40, 41)]
        )
        history.record(
            OpKind.UPDATE, "AGE", [CellChange(2, 41, 42), CellChange(5, 50, 51)]
        )
        assert session._rows_from_history(2) == {"AGE": [1, 2, 5]}

    def test_merge_keeps_other_attributes(self, session):
        history = session.view.history
        history.record(OpKind.UPDATE, "AGE", [CellChange(0, 1, 2)])
        history.record(OpKind.UPDATE, "INCOME", [CellChange(3, 1.0, 2.0)])
        history.record(OpKind.UPDATE, "AGE", [CellChange(7, 1, 2)])
        assert session._rows_from_history(3) == {"AGE": [0, 7], "INCOME": [3]}


class TestMarkInvalidRows:
    """Regression: mark_invalid's changed rows come from the invalidation
    call itself, never from the history log's last entry (which is an
    unrelated operation — or absent — when the predicate matches no rows)."""

    def test_no_match_on_pristine_view(self, session):
        report = session.mark_invalid("AGE", predicate=col("AGE") > 10_000)
        assert report.attributes == ["AGE"]
        assert len(session.view.history) == 0

    def test_no_match_ignores_unrelated_history(self, session):
        from repro.incremental.derived import LocalDerivation

        session.view.add_derived_column(LocalDerivation("AGE_X2", col("AGE") * 2))
        session.update_cells("INCOME", [(0, 123.0)])
        session.mark_invalid("AGE", predicate=col("AGE") > 10_000)
        # A zero-match invalidation must not recompute derived cells using
        # the rows of the preceding (INCOME) operation.
        derivation = session.view.derived.derivation("AGE_X2")
        assert derivation.stats.cell_recomputes == 0


class TestUndo:
    def test_undo_restores_cache_exactly(self, session):
        before_mean = session.compute("mean", "INCOME")
        before_median = session.compute("median", "INCOME")
        session.update_cells("INCOME", [(3, 1.0), (4, 2.0)])
        session.update_cells("INCOME", [(5, 3.0)])
        session.undo(1)
        session.undo(1)
        assert session.compute("mean", "INCOME") == pytest.approx(before_mean)
        assert session.compute("median", "INCOME") == pytest.approx(before_median)
        # Versions are a monotonic high-water mark; undo empties the log
        # without reissuing the undone version numbers.
        assert session.view.history.operations() == []
        assert session.view.version == 2

    def test_undo_predicate_update(self, session):
        original = list(session.view.relation.column("HOURS_WORKED"))
        session.compute("mean", "HOURS_WORKED")
        session.update(col("HOURS_WORKED") > 50, {"HOURS_WORKED": 50.0})
        session.undo(1)
        assert session.view.relation.column("HOURS_WORKED") == original
        assert session.compute("mean", "HOURS_WORKED") == pytest.approx(
            statistics.fmean(true_column(session, "HOURS_WORKED"))
        )
