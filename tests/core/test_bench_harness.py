"""Tests for the benchmark harness's table rendering."""

import json

import pytest

from repro.bench.harness import (
    ExperimentTable,
    git_sha,
    speedup,
    write_json,
)


class TestExperimentTable:
    def test_render_shape(self):
        table = ExperimentTable("E0", "demo", ["name", "value"])
        table.add_row("alpha", 1.0)
        table.add_row("beta", 123456.0)
        text = table.render()
        assert "=== E0: demo ===" in text
        assert "alpha" in text and "beta" in text
        lines = text.strip().splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 3  # header/sep/rows align

    def test_arity_checked(self):
        table = ExperimentTable("E0", "demo", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_notes_rendered(self):
        table = ExperimentTable("E0", "demo", ["a"])
        table.add_row(1)
        table.note("something important")
        assert "note: something important" in table.render()

    def test_float_formatting(self):
        table = ExperimentTable("E0", "demo", ["v"])
        table.add_row(0.0)
        table.add_row(1234567.0)
        table.add_row(0.00001)
        table.add_row(3.14159)
        text = table.render()
        assert "1.23e+06" in text
        assert "3.142" in text
        assert "1e-05" in text

    def test_empty_table_renders(self):
        table = ExperimentTable("E0", "empty", ["col"])
        assert "E0" in table.render()


class TestSpeedup:
    def test_basic(self):
        assert speedup(10, 2) == 5.0

    def test_zero_denominator(self):
        assert speedup(10, 0) == float("inf")


class TestWriteJson:
    def make_table(self):
        table = ExperimentTable("E0", "demo", ["name", "value"])
        table.add_row("alpha", 1.0)
        return table

    def test_payload_shape(self, tmp_path):
        path = write_json(
            tmp_path / "BENCH_e0.json",
            [self.make_table()],
            metrics={"speedup": 2.0},
            params={"workers": 4, "concurrency": [2, 8]},
        )
        payload = json.loads(path.read_text())
        assert payload["metrics"] == {"speedup": 2.0}
        assert payload["params"] == {"workers": 4, "concurrency": [2, 8]}
        assert payload["tables"][0]["experiment"] == "E0"
        assert "git_sha" in payload

    def test_git_sha_recorded_in_this_checkout(self, tmp_path):
        # The repo under test is a git checkout, so the SHA must resolve.
        sha = git_sha()
        assert sha is not None and len(sha) == 40
        path = write_json(tmp_path / "b.json", [self.make_table()])
        assert json.loads(path.read_text())["git_sha"] == sha

    def test_params_default_empty(self, tmp_path):
        path = write_json(tmp_path / "b.json", [self.make_table()])
        payload = json.loads(path.read_text())
        assert payload["params"] == {}
        assert "spans" not in payload

    def test_spans_preserved(self, tmp_path):
        path = write_json(
            tmp_path / "b.json",
            [self.make_table()],
            spans={"counters": {"server.accept": 2}, "spans": []},
        )
        payload = json.loads(path.read_text())
        assert payload["spans"]["counters"]["server.accept"] == 2
