"""Tests for the benchmark harness's table rendering."""

import pytest

from repro.bench.harness import ExperimentTable, speedup


class TestExperimentTable:
    def test_render_shape(self):
        table = ExperimentTable("E0", "demo", ["name", "value"])
        table.add_row("alpha", 1.0)
        table.add_row("beta", 123456.0)
        text = table.render()
        assert "=== E0: demo ===" in text
        assert "alpha" in text and "beta" in text
        lines = text.strip().splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 3  # header/sep/rows align

    def test_arity_checked(self):
        table = ExperimentTable("E0", "demo", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            table.add_row(1)

    def test_notes_rendered(self):
        table = ExperimentTable("E0", "demo", ["a"])
        table.add_row(1)
        table.note("something important")
        assert "note: something important" in table.render()

    def test_float_formatting(self):
        table = ExperimentTable("E0", "demo", ["v"])
        table.add_row(0.0)
        table.add_row(1234567.0)
        table.add_row(0.00001)
        table.add_row(3.14159)
        text = table.render()
        assert "1.23e+06" in text
        assert "3.142" in text
        assert "1e-05" in text

    def test_empty_table_renders(self):
        table = ExperimentTable("E0", "empty", ["col"])
        assert "E0" in table.render()


class TestSpeedup:
    def test_basic(self):
        assert speedup(10, 2) == 5.0

    def test_zero_denominator(self):
        assert speedup(10, 0) == float("inf")
