"""Tests for the update-propagation pipeline."""

import pytest

from repro.core.propagation import UpdatePropagator
from repro.incremental.derived import GlobalDerivation, LocalDerivation, RefreshMode
from repro.incremental.differencing import Delta
from repro.metadata.management import ManagementDatabase
from repro.relational.expressions import col
from repro.relational.relation import Relation
from repro.relational.schema import Schema, measure
from repro.stats.regression import residual_computer
from repro.summary.policies import PrecisePolicy
from repro.views.view import ConcreteView


@pytest.fixture()
def setup():
    management = ManagementDatabase()
    schema = Schema([measure("x"), measure("y")])
    relation = Relation("v", schema, [(float(i), 2.0 * i + 1) for i in range(50)])
    view = ConcreteView("v", relation)
    propagator = UpdatePropagator(management, view, PrecisePolicy())
    return management, view, propagator


def seed_cache(management, view, function, attr):
    fn = management.functions.get(function)
    maintainer = (
        fn.make_maintainer(view.column_provider(attr)) if fn.is_incremental else None
    )
    return view.summary.insert(
        function,
        attr,
        fn.compute(view.column(attr)),
        maintainer=maintainer,
    )


def point_update(view, attr, row, new):
    old = view.set_value(row, attr, new)
    return Delta(updates=[(old, new)]), [row]


class TestRuleDispatch:
    def test_incremental_entries_updated(self, setup):
        management, view, propagator = setup
        seed_cache(management, view, "mean", "x")
        seed_cache(management, view, "sum", "x")
        delta, rows = point_update(view, "x", 0, 100.0)
        report = propagator.propagate("x", delta, rows)
        assert report.entries_visited == 2
        assert report.incremental_updates == 2
        assert view.summary.peek("mean", "x").result == pytest.approx(
            sum(view.column("x")) / 50
        )

    def test_invalidate_rule_marks_stale(self, setup):
        management, view, propagator = setup
        seed_cache(management, view, "trimmed_mean", "x")  # no incremental form
        delta, rows = point_update(view, "x", 1, -5.0)
        report = propagator.propagate("x", delta, rows)
        assert report.invalidations == 1
        assert view.summary.peek("trimmed_mean", "x").stale

    def test_unrelated_attribute_untouched(self, setup):
        management, view, propagator = setup
        seed_cache(management, view, "mean", "y")
        delta, rows = point_update(view, "x", 0, 42.0)
        report = propagator.propagate("x", delta, rows)
        assert report.entries_visited == 0
        assert not view.summary.peek("mean", "y").stale

    def test_multi_attribute_entries_invalidated(self, setup):
        management, view, propagator = setup
        view.summary.insert("pearson", ("x", "y"), 0.99)
        # Update via the secondary attribute too.
        delta, rows = point_update(view, "y", 0, 42.0)
        report = propagator.propagate("y", delta, rows)
        assert report.invalidations == 1
        assert view.summary.peek("pearson", ("x", "y")).stale


class TestDerivedCascade:
    def test_local_derivation_updated_and_its_cache_invalidated(self, setup):
        management, view, propagator = setup
        view.add_derived_column(LocalDerivation("double_x", col("x") * 2))
        seed_cache(management, view, "mean", "double_x")
        delta, rows = point_update(view, "x", 3, 100.0)
        report = propagator.propagate("x", delta, rows)
        assert report.derived_columns_touched == ["double_x"]
        assert view.column("double_x")[3] == 200.0
        assert view.summary.peek("mean", "double_x").stale

    def test_global_derivation_regenerated(self, setup):
        management, view, propagator = setup
        view.add_derived_column(
            GlobalDerivation(
                "resid", ["x", "y"], residual_computer("y", ["x"]), RefreshMode.EAGER
            )
        )
        delta, rows = point_update(view, "y", 5, 999.0)
        report = propagator.propagate("y", delta, rows)
        assert "resid" in report.derived_columns_touched
        assert abs(view.column("resid")[5]) > 100


class TestReports:
    def test_pages_touched_counted(self, setup):
        management, view, propagator = setup
        for fn in ("mean", "min", "max", "sum", "count"):
            seed_cache(management, view, fn, "x")
        delta, rows = point_update(view, "x", 0, 7.0)
        report = propagator.propagate("x", delta, rows)
        assert report.summary_pages_touched >= 1

    def test_propagate_all_merges(self, setup):
        management, view, propagator = setup
        seed_cache(management, view, "mean", "x")
        seed_cache(management, view, "mean", "y")
        dx, rx = point_update(view, "x", 0, 1.5)
        dy, ry = point_update(view, "y", 0, 2.5)
        report = propagator.propagate_all(
            {"x": dx, "y": dy}, {"x": rx, "y": ry}
        )
        assert sorted(report.attributes) == ["x", "y"]
        assert report.entries_visited == 2
