"""Tests for the interactive analyst shell (driven through onecmd)."""

import io

import pytest

from repro.core.dbms import StatisticalDBMS
from repro.core.shell import AnalystShell
from repro.io import write_csv
from repro.workloads.census import figure1_dataset


@pytest.fixture()
def shell(tmp_path):
    path = str(tmp_path / "census.csv")
    write_csv(figure1_dataset(), path)
    out = io.StringIO()
    sh = AnalystShell(StatisticalDBMS(), stdout=out)
    sh._csv_path = path  # type: ignore[attr-defined]
    sh._out = out  # type: ignore[attr-defined]
    return sh


def output_of(shell, command):
    shell._out.truncate(0)
    shell._out.seek(0)
    shell.onecmd(command)
    return shell._out.getvalue()


class TestLifecycle:
    def test_load_view_open(self, shell):
        out = output_of(shell, f"load {shell._csv_path} census")
        assert "loaded 9 rows" in out
        out = output_of(shell, "view study census")
        assert "materialized" in out
        out = output_of(shell, "open study")
        assert "9 rows" in out and "AVE_SALARY" in out
        out = output_of(shell, "views")
        assert "study" in out

    def test_duplicate_view_reused(self, shell):
        output_of(shell, f"load {shell._csv_path} census")
        output_of(shell, "view a census")
        out = output_of(shell, "view b census")
        assert "identical" in out

    def test_quit(self, shell):
        assert shell.onecmd("quit") is True
        assert shell.onecmd("EOF") is True


class TestAnalysis:
    def setup_shell(self, shell):
        output_of(shell, f"load {shell._csv_path} census")
        output_of(shell, "view study census")
        output_of(shell, "open study")

    def test_stat_and_cache(self, shell):
        self.setup_shell(shell)
        out = output_of(shell, "stat median AVE_SALARY")
        assert "median(AVE_SALARY) = 29402" in out
        output_of(shell, "stat median AVE_SALARY")
        out = output_of(shell, "cache")
        assert "hits=1" in out

    def test_sql(self, shell):
        self.setup_shell(shell)
        out = output_of(shell, "sql SELECT SEX, SUM(POPULATION) AS P FROM v GROUP BY SEX")
        assert "SEX" in out and "P" in out

    def test_estimate(self, shell):
        self.setup_shell(shell)
        output_of(shell, "stat sum AVE_SALARY")
        output_of(shell, "stat count AVE_SALARY")
        out = output_of(shell, "estimate mean AVE_SALARY")
        assert "exact" in out and "sum / count" in out

    def test_crosstab(self, shell):
        self.setup_shell(shell)
        out = output_of(shell, "crosstab SEX RACE POPULATION")
        assert "TOTAL" in out

    def test_summary(self, shell):
        self.setup_shell(shell)
        out = output_of(shell, "summary POPULATION")
        assert "median" in out and "max" in out

    def test_update_and_undo(self, shell):
        self.setup_shell(shell)
        output_of(shell, "stat mean AVE_SALARY")
        out = output_of(shell, "set AVE_SALARY 0 40000")
        assert "maintained incrementally" in out
        out = output_of(shell, "stat mean AVE_SALARY")
        changed = out
        output_of(shell, "undo")
        out = output_of(shell, "stat mean AVE_SALARY")
        assert out != changed

    def test_invalidate(self, shell):
        self.setup_shell(shell)
        output_of(shell, "invalidate AVE_SALARY 0")
        out = output_of(shell, "stat na_count AVE_SALARY")
        assert "= 1" in out

    def test_annotate_and_notes(self, shell):
        self.setup_shell(shell)
        output_of(shell, "annotate AVE_SALARY checked against the 1970 code book")
        out = output_of(shell, "notes AVE_SALARY")
        assert "1. checked against the 1970 code book" in out
        out = output_of(shell, "notes POPULATION")
        assert "no notes" in out
        assert "usage" in output_of(shell, "annotate AVE_SALARY")


class TestErrors:
    def test_commands_need_session(self, shell):
        out = output_of(shell, "stat mean X")
        assert "no open view" in out

    def test_library_errors_reported(self, shell):
        output_of(shell, f"load {shell._csv_path} census")
        output_of(shell, "view study census")
        output_of(shell, "open study")
        out = output_of(shell, "stat mean NO_SUCH_ATTR")
        assert "error:" in out
        # RACE imports as a string measure; numeric stats fail cleanly.
        out = output_of(shell, "stat median RACE")
        assert "error:" in out and "non-numeric" in out

    def test_bad_arguments_reported(self, shell):
        output_of(shell, f"load {shell._csv_path} census")
        output_of(shell, "view study census")
        output_of(shell, "open study")
        out = output_of(shell, "set AVE_SALARY notanumber 5")
        assert "bad arguments" in out

    def test_usage_messages(self, shell):
        assert "usage" in output_of(shell, "load")
        assert "usage" in output_of(shell, "view onlyname")
        assert "usage" in output_of(shell, "open")


class TestWorkspaceCommands:
    def _seeded_workspace(self, tmp_path):
        from repro.views.materialize import SourceNode, ViewDefinition
        from repro.workloads.census import figure1_dataset
        from repro.workspace.space import Workspace

        root = tmp_path / "ws"
        ws = Workspace(root)
        managed = ws.create(
            ViewDefinition("study", SourceNode("census_fig1")),
            figure1_dataset(),
            {"edition": "1980", "wave": 3},
        )
        managed.session("a").compute("mean", "AVE_SALARY")
        managed.checkpoint()
        ws.close_all()
        return root, managed.space_id

    def test_attach_find_checkpoint(self, shell, tmp_path):
        root, space_id = self._seeded_workspace(tmp_path)
        out = output_of(shell, f"workspace {root}")
        assert "1 views indexed" in out
        out = output_of(shell, "ws-find stat=mean")
        assert space_id in out and "study" in out
        out = output_of(shell, "ws-find edition=1980")
        assert space_id in out
        out = output_of(shell, "ws-find stat=median")
        assert "no matching views" in out
        # int-typed parameters match via the coerced retry
        out = output_of(shell, "ws-find wave=3")
        assert space_id in out
        assert "no matching views" in output_of(shell, "ws-find wave=4")
        out = output_of(shell, "ws-checkpoint-all")
        assert "checkpoint_all" in out

    def test_commands_need_workspace(self, shell):
        assert "no workspace attached" in output_of(shell, "ws-find stat=mean")
        assert "no workspace attached" in output_of(shell, "ws-checkpoint-all")
        assert "usage" in output_of(shell, "workspace")

    def test_bad_query_token(self, shell, tmp_path):
        root, _ = self._seeded_workspace(tmp_path)
        output_of(shell, f"workspace {root}")
        assert "usage" in output_of(shell, "ws-find notakeyvalue")

    def test_unknown_command_still_reported(self, shell):
        out = output_of(shell, "zz-unknown")
        assert "zz-unknown" in out
