"""Tests for analyst annotations (SS3.2's verbal descriptions)."""

import pytest

from repro.core.errors import SchemaError
from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.views.view import ConcreteView
from repro.workloads.census import figure1_dataset


@pytest.fixture()
def session():
    return AnalystSession(
        ManagementDatabase(), ConcreteView("v", figure1_dataset())
    )


class TestAnnotations:
    def test_append_and_read(self, session):
        session.annotate("AVE_SALARY", "range-checked 1982-02-01")
        session.annotate("AVE_SALARY", "two outliers under investigation")
        assert session.notes("AVE_SALARY") == [
            "range-checked 1982-02-01",
            "two outliers under investigation",
        ]

    def test_empty_by_default(self, session):
        assert session.notes("POPULATION") == []

    def test_unknown_attribute_rejected(self, session):
        with pytest.raises(SchemaError):
            session.annotate("NOPE", "x")

    def test_notes_survive_updates(self, session):
        session.annotate("AVE_SALARY", "analysis half done")
        session.compute("mean", "AVE_SALARY")
        session.update_cells("AVE_SALARY", [(0, 30_000)])
        # The statistic was maintained; the note was neither visited nor
        # invalidated.
        entry = session.view.summary.peek("__note__", "AVE_SALARY")
        assert not entry.stale
        assert session.notes("AVE_SALARY") == ["analysis half done"]

    def test_notes_survive_undo(self, session):
        session.annotate("POPULATION", "verified against codebook")
        session.update_cells("POPULATION", [(0, 1)])
        session.undo(1)
        assert session.notes("POPULATION") == ["verified against codebook"]

    def test_notes_encodable(self, session):
        from repro.summary.entries import decode_result, encode_result

        session.annotate("SEX", "categories complete")
        entry = session.view.summary.peek("__note__", "SEX")
        assert decode_result(encode_result(entry.result)) == ["categories complete"]


class TestUnregisteredFunctionEntries:
    def test_unknown_single_attr_entry_goes_stale_not_crash(self, session):
        """Entries cached outside the function registry invalidate cleanly."""
        session.view.summary.insert("custom_stat", "AVE_SALARY", 123.0)
        report = session.update_cells("AVE_SALARY", [(0, 40_000)])
        entry = session.view.summary.peek("custom_stat", "AVE_SALARY")
        assert entry.stale
        assert report.invalidations >= 1
