"""Tests for cached cross tabulations and the independence test wrapper."""

import pytest

from repro.core.session import AnalystSession
from repro.metadata.management import ManagementDatabase
from repro.views.view import ConcreteView
from repro.workloads.census import figure1_dataset, generate_microdata


@pytest.fixture()
def session():
    relation = generate_microdata(3000, seed=33, bad_value_rate=0.0)
    return AnalystSession(ManagementDatabase(), ConcreteView("v", relation))


class TestCachedCrosstab:
    def test_miss_then_hit_identical(self, session):
        first = session.compute_crosstab("SEX", "RACE")
        scanned = session.stats.rows_scanned
        second = session.compute_crosstab("SEX", "RACE")
        assert session.stats.rows_scanned == scanned  # served from cache
        assert session.stats.cache_hits == 1
        assert first.row_labels == second.row_labels
        assert first.col_labels == second.col_labels
        assert (first.table == second.table).all()

    def test_weighted_crosstab(self):
        relation = figure1_dataset()
        session = AnalystSession(ManagementDatabase(), ConcreteView("f1", relation))
        table = session.compute_crosstab("RACE", "AGE_GROUP", weight_attr="POPULATION")
        w_index = table.row_labels.index("W")
        one_index = table.col_labels.index("1")
        assert table.table[w_index, one_index] == 12_300_347 + 15_821_497

    def test_update_invalidates(self, session):
        before = session.compute_crosstab("SEX", "RACE")
        # Change one person's race: the cached table must refresh.
        old_race = session.view.relation.column("RACE")[0]
        new_race = 1 if old_race != 1 else 2
        session.update_cells("RACE", [(0, new_race)])
        after = session.compute_crosstab("SEX", "RACE")
        assert before.grand_total == after.grand_total
        assert (before.table != after.table).any()

    def test_update_to_unrelated_attribute_keeps_cache(self, session):
        session.compute_crosstab("SEX", "RACE")
        session.update_cells("INCOME", [(0, 1.0)])
        scanned = session.stats.rows_scanned
        session.compute_crosstab("SEX", "RACE")
        assert session.stats.rows_scanned == scanned

    def test_result_survives_encoding(self, session):
        """The cached tuple round-trips the varying-length encoder."""
        from repro.summary.entries import decode_result, encode_result

        session.compute_crosstab("SEX", "RACE")
        entry = session.view.summary.peek("crosstab", ("SEX", "RACE"))
        decoded = decode_result(encode_result(entry.result))
        assert decoded[0] == entry.result[0]
        assert decoded[2] == pytest.approx(entry.result[2])


class TestIndependence:
    def test_planted_dependence_detected(self):
        import random

        rng = random.Random(1)
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema, category
        from repro.relational.types import DataType

        schema = Schema(
            [category("G", DataType.CATEGORY), category("O", DataType.CATEGORY)]
        )
        rows = []
        for _ in range(3000):
            group = rng.randrange(2)
            outcome = int(rng.random() < (0.3 if group == 0 else 0.7))
            rows.append((group, outcome))
        session = AnalystSession(
            ManagementDatabase(), ConcreteView("dep", Relation("dep", schema, rows))
        )
        result = session.test_independence("G", "O")
        assert result.significant(1e-9)

    def test_repeat_uses_cache(self, session):
        session.test_independence("SEX", "REGION")
        scanned = session.stats.rows_scanned
        session.test_independence("SEX", "REGION")
        assert session.stats.rows_scanned == scanned
