"""Tests for CSV import/export."""

import pytest

from repro.core.errors import SchemaError
from repro.io import from_csv_text, read_csv, to_csv_text, write_csv
from repro.relational.schema import AttributeRole
from repro.relational.types import NA, DataType
from repro.workloads.census import figure1_dataset

CSV_TEXT = """SEX,AGE,INCOME,NOTE
M,34,51000.5,ok
F,29,,checked
M,NA,42000,
"""


class TestRead:
    def test_type_inference(self):
        rel = from_csv_text(CSV_TEXT)
        assert rel.schema.attribute("SEX").dtype is DataType.STR
        assert rel.schema.attribute("AGE").dtype is DataType.INT
        assert rel.schema.attribute("INCOME").dtype is DataType.FLOAT
        assert rel.schema.attribute("NOTE").dtype is DataType.STR

    def test_na_parsing(self):
        rel = from_csv_text(CSV_TEXT)
        assert rel.row(1)[2] is NA  # empty INCOME
        assert rel.row(2)[1] is NA  # literal NA
        assert rel.row(2)[3] is NA  # trailing empty

    def test_values(self):
        rel = from_csv_text(CSV_TEXT)
        assert rel.row(0) == ("M", 34, 51000.5, "ok")
        assert len(rel) == 3

    def test_category_attrs(self):
        rel = from_csv_text(CSV_TEXT, category_attrs=["SEX", "AGE"])
        assert rel.schema.attribute("SEX").role is AttributeRole.CATEGORY
        # Integral categories become CATEGORY dtype.
        assert rel.schema.attribute("AGE").dtype is DataType.CATEGORY

    def test_pinned_types(self):
        rel = from_csv_text(CSV_TEXT, types={"AGE": DataType.FLOAT})
        assert rel.schema.attribute("AGE").dtype is DataType.FLOAT
        assert rel.row(0)[1] == 34.0

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError, match="fields"):
            from_csv_text("a,b\n1,2\n3\n")

    def test_empty_file_rejected(self):
        with pytest.raises(SchemaError, match="header"):
            from_csv_text("")

    def test_header_only(self):
        rel = from_csv_text("a,b\n")
        assert len(rel) == 0
        assert rel.schema.names == ["a", "b"]

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.csv")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(CSV_TEXT)
        rel = read_csv(path, name="fromfile")
        assert rel.name == "fromfile" and len(rel) == 3


class TestWrite:
    def test_roundtrip_preserves_values(self):
        original = from_csv_text(CSV_TEXT)
        text = to_csv_text(original)
        back = from_csv_text(text)
        assert list(back) == list(original)

    def test_figure1_roundtrip(self):
        census = figure1_dataset()
        back = from_csv_text(
            to_csv_text(census), category_attrs=["SEX", "RACE", "AGE_GROUP"]
        )
        assert [tuple(r) for r in back] == [tuple(r) for r in census]

    def test_na_token(self):
        rel = from_csv_text(CSV_TEXT)
        text = to_csv_text(rel, na_token="?")
        assert ",?," in text or text.rstrip().endswith("?")

    def test_write_file(self, tmp_path):
        path = str(tmp_path / "out.csv")
        count = write_csv(figure1_dataset(), path)
        assert count == 9
        assert read_csv(path).row(0)[0] == "M"


class TestEndToEnd:
    def test_csv_to_analysis(self):
        """Imported data drops straight into the DBMS pipeline."""
        from repro.core.dbms import StatisticalDBMS
        from repro.views.materialize import SourceNode, ViewDefinition

        rel = from_csv_text(CSV_TEXT, name="survey")
        dbms = StatisticalDBMS()
        dbms.load_raw(rel)
        dbms.create_view(ViewDefinition("v", SourceNode("survey")))
        session = dbms.session("v")
        assert session.compute("count", "INCOME") == 2  # one NA skipped
        assert session.compute("mean", "INCOME") == pytest.approx(46500.25)
